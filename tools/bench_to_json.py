#!/usr/bin/env python3
"""Produce or validate the committed ``BENCH_*.json`` trajectory files.

The repo commits one trajectory file per benchmark family; this tool
writes and schema-checks all of them through one CLI, dispatching on
the document's ``bench`` field so each family registers exactly one
validator (no duplicated schema walking):

* ``fingerprint_ingest`` → ``BENCH_fingerprint.json``: per-stage ingest
  throughput (MB/s for normalise / hash / winnow / end-to-end) of the
  reference pipeline, the pure-Python kernel, and — when numpy is
  importable — the vectorised kernel, over the Wikipedia and manuals
  corpora.
* ``sharded_lookup`` → ``BENCH_shard.json``: the sharded + batched
  lookup tier versus the single-engine ``LookupServer`` — fleet
  throughput at 8 clients and uncontended per-check service latency
  (see ``repro.eval.shard_bench``).
* ``fleet`` → ``BENCH_fleet.json``: the open-loop fleet simulator —
  p50/p95/p99 service latency, open-loop lateness, and throughput for
  the same Zipf/flash-crowd schedule executed against the single and
  the sharded lookup tiers, with the fleet-wide reference-engine audit
  (zero uncovered disclosures) asserted before any number is reported
  (see ``repro.eval.fleet``).
* ``delta_check`` → ``BENCH_delta.json``: per-edit check latency of the
  delta-aware pipeline (EditBuffer splice + epoch-memoized verdict
  cache) versus a full recheck per edit, on a keystroke-churn edit
  workload, with fingerprint- and verdict-equivalence between the two
  paths proved at one and at four shards before anything is timed
  (see ``repro.eval.delta_bench``).
* ``wal`` → ``BENCH_wal.json``: durability cost — steady-state WAL
  journaling overhead of a ``DurableEngine`` versus a plain engine on
  a mixed observe/scan workload, plus crash-recovery time (records/s)
  before and after compaction, with the recovered engine proved
  equivalent to the plain engine before anything is timed (see
  ``repro.eval.wal_bench``). Note the overhead gate is a *maximum*:
  ``--gate-wal-overhead 1.15`` fails a file whose durable/plain ratio
  exceeds 15% overhead.

Re-running this tool after a perf-relevant PR and committing the
refreshed file makes the trajectory visible in git history.

Standard library only; the kernel's numpy path is reached through its
own guarded import, so the tool runs (and validates) with or without
numpy installed.

Usage::

    PYTHONPATH=src python tools/bench_to_json.py --out BENCH_fingerprint.json
    PYTHONPATH=src python tools/bench_to_json.py --smoke --out /tmp/b.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_fingerprint.json
    PYTHONPATH=src python tools/bench_to_json.py --validate /tmp/b.json \
        --gate-pure 1.8 --gate-numpy 3.0
    PYTHONPATH=src python tools/bench_to_json.py --bench sharded_lookup \
        --out BENCH_shard.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_shard.json \
        --gate-throughput 2.0 --gate-p95 1.0
    PYTHONPATH=src python tools/bench_to_json.py --bench fleet \
        --out BENCH_fleet.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_fleet.json \
        --gate-sessions 1000
    PYTHONPATH=src python tools/bench_to_json.py --bench delta_check \
        --out BENCH_delta.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_delta.json \
        --gate-delta 3.0
    PYTHONPATH=src python tools/bench_to_json.py --bench wal \
        --out BENCH_wal.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_wal.json \
        --gate-wal-overhead 1.15

``--smoke`` shrinks the corpora for CI; measurements are noisier there,
which is why CI gates sit at (or under) the floors the real-corpus
numbers clear comfortably. Validation checks the schema shape and,
with ``--gate-*``, that the relevant speedups clear their floors.
Equivalence (kernel fingerprints == reference fingerprints; sharded
batched decisions == single-engine decisions) is always asserted
before a file is written, so a trajectory entry can never come from a
wrong implementation.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.eval import delta_bench  # noqa: E402
from repro.eval import shard_bench  # noqa: E402
from repro.eval import wal_bench  # noqa: E402
from repro.eval import fleet as fleet_sim  # noqa: E402
from repro.eval.ingest_bench import (  # noqa: E402
    SCHEMA_VERSION as INGEST_SCHEMA_VERSION,
    available_paths,
    check_equivalence,
    corpus_texts,
    measure_corpus,
)
from repro.fingerprint import HAS_NUMPY  # noqa: E402
from repro.fingerprint.config import PAPER_CONFIG  # noqa: E402

#: Required numeric keys of each per-path ingest measurement block.
PATH_KEYS = (
    "bytes",
    "seconds",
    "total_mbps",
    "normalize_mbps",
    "hash_mbps",
    "winnow_mbps",
)

#: Required numeric keys of each lookup-tier latency/throughput summary.
SUMMARY_KEYS = (
    "requests",
    "seconds",
    "throughput_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
)

#: Gate values, keyed by flag name (pure/numpy/throughput/p95); 0 = off.
Gates = Dict[str, float]

#: Run-time knobs passed to every runner (currently just ``churn``).
RunOpts = Dict[str, float]


def _checker(problems: List[str]) -> Callable[[bool, str], None]:
    def need(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    return need


def build_corpora(smoke: bool, seed: int):
    from repro.datasets import ManualsCorpus, WikipediaCorpus

    if smoke:
        wikipedia = WikipediaCorpus.generate(
            n_extra_articles=2, n_revisions=6, seed=seed
        )
        manuals = ManualsCorpus.generate(seed=seed, scale=0.5)
    else:
        wikipedia = WikipediaCorpus.generate(
            n_extra_articles=12, n_revisions=100, seed=seed
        )
        manuals = ManualsCorpus.generate(seed=seed, scale=1.0)
    return {"wikipedia": wikipedia, "manuals": manuals}


def run_ingest(smoke: bool, seed: int, opts: RunOpts) -> dict:
    config = PAPER_CONFIG
    corpora = {}
    for name, corpus in build_corpora(smoke, seed).items():
        texts = corpus_texts(corpus)
        compared = check_equivalence(texts, config, sample=25)
        print(
            f"[{name}] equivalence ok on {compared} texts; measuring "
            f"{sum(len(t) for t in texts)} bytes over "
            f"{', '.join(available_paths(config))}",
            file=sys.stderr,
        )
        corpora[name] = measure_corpus(texts, config)
    return {
        "schema_version": INGEST_SCHEMA_VERSION,
        "bench": "fingerprint_ingest",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": HAS_NUMPY,
        "config": {
            "ngram_size": config.ngram_size,
            "window_size": config.window_size,
            "hash_bits": config.hash_bits,
        },
        "corpora": corpora,
    }


def validate_ingest(document: dict, gates: Gates) -> List[str]:
    """Problems with a ``fingerprint_ingest`` document (empty == valid)."""
    problems: List[str] = []
    need = _checker(problems)
    gate_pure = gates.get("pure", 0.0)
    gate_numpy = gates.get("numpy", 0.0)

    need(
        document.get("schema_version") == INGEST_SCHEMA_VERSION,
        "schema_version mismatch",
    )
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    need(isinstance(document.get("numpy"), bool), "numpy must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {"ngram_size", "window_size", "hash_bits"} <= set(config or {}),
        "config must carry ngram_size/window_size/hash_bits",
    )
    corpora = document.get("corpora")
    need(isinstance(corpora, dict) and corpora, "corpora must be a non-empty object")
    for name, corpus in (corpora or {}).items():
        paths = corpus.get("paths") if isinstance(corpus, dict) else None
        need(isinstance(paths, dict), f"{name}: paths must be an object")
        if not isinstance(paths, dict):
            continue
        need("reference" in paths, f"{name}: missing reference path")
        need("kernel_pure" in paths, f"{name}: missing kernel_pure path")
        for path_name, block in paths.items():
            for key in PATH_KEYS:
                value = block.get(key) if isinstance(block, dict) else None
                need(
                    isinstance(value, (int, float)) and value >= 0,
                    f"{name}.{path_name}.{key} must be a non-negative number",
                )
        speedup = corpus.get("speedup", {})
        if gate_pure:
            actual = speedup.get("kernel_pure", 0)
            need(
                actual >= gate_pure,
                f"{name}: kernel_pure speedup {actual} < gate {gate_pure}",
            )
        if gate_numpy and "kernel_numpy" in paths:
            actual = speedup.get("kernel_numpy", 0)
            need(
                actual >= gate_numpy,
                f"{name}: kernel_numpy speedup {actual} < gate {gate_numpy}",
            )
    return problems


def run_sharded(smoke: bool, seed: int, opts: RunOpts) -> dict:
    document = shard_bench.measure(smoke, seed)
    speedup = document["speedup"]
    print(
        f"[sharded_lookup] equivalence ok on "
        f"{document['equivalence_checked']} decisions; throughput "
        f"{speedup['throughput']:.2f}x, service p95 {speedup['p95']:.2f}x "
        f"vs single-engine",
        file=sys.stderr,
    )
    return document


def validate_sharded(document: dict, gates: Gates) -> List[str]:
    """Problems with a ``sharded_lookup`` document (empty == valid)."""
    problems: List[str] = []
    need = _checker(problems)

    need(
        document.get("schema_version") == shard_bench.SCHEMA_VERSION,
        "schema_version mismatch",
    )
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {
            "n_clients",
            "n_shards",
            "batch_size",
            "rounds",
            "ngram_size",
            "window_size",
            "hash_bits",
        }
        <= set(config or {}),
        "config must carry the deployment shape and fingerprint parameters",
    )
    workload = document.get("workload")
    need(
        isinstance(workload, dict)
        and isinstance(workload.get("total_requests"), int)
        and workload.get("total_requests", 0) > 0,
        "workload.total_requests must be a positive integer",
    )
    need(
        isinstance(document.get("equivalence_checked"), int)
        and document.get("equivalence_checked", 0) > 0,
        "equivalence_checked must be a positive integer",
    )
    service_latency = document.get("service_latency") or {}
    summaries: List[Tuple[str, object]] = [
        ("single", document.get("single")),
        ("sharded_batched", document.get("sharded_batched")),
        ("service_latency.single", service_latency.get("single")),
        (
            "service_latency.sharded_batched",
            service_latency.get("sharded_batched"),
        ),
    ]
    for name, block in summaries:
        need(isinstance(block, dict), f"{name} must be an object")
        if not isinstance(block, dict):
            continue
        for key in SUMMARY_KEYS:
            value = block.get(key)
            need(
                isinstance(value, (int, float)) and value >= 0,
                f"{name}.{key} must be a non-negative number",
            )
    speedup = document.get("speedup")
    need(
        isinstance(speedup, dict)
        and all(
            isinstance(speedup.get(key), (int, float))
            for key in ("throughput", "p95")
        ),
        "speedup must carry numeric throughput and p95 ratios",
    )
    if isinstance(speedup, dict):
        gate_throughput = gates.get("throughput", 0.0)
        if gate_throughput:
            actual = speedup.get("throughput", 0)
            need(
                isinstance(actual, (int, float)) and actual >= gate_throughput,
                f"throughput speedup {actual} < gate {gate_throughput}",
            )
        gate_p95 = gates.get("p95", 0.0)
        if gate_p95:
            actual = speedup.get("p95", 0)
            need(
                isinstance(actual, (int, float)) and actual >= gate_p95,
                f"service p95 ratio {actual} < gate {gate_p95}",
            )
    return problems


#: Required numeric keys of each fleet tier block.
FLEET_TIER_KEYS = (
    "sessions",
    "ops",
    "decisions",
    "blocked_ops",
    "declassify_noops",
    "seconds",
    "throughput_ops_s",
)

#: Required percentile keys of fleet latency/lateness series.
FLEET_SERIES_KEYS = ("p50", "p95", "p99", "max")


def run_fleet_bench(smoke: bool, seed: int, opts: RunOpts) -> dict:
    document = fleet_sim.measure(smoke, seed, churn=opts.get("churn", 0.0))
    for tier in ("single", "sharded"):
        block = document["tiers"][tier]
        print(
            f"[fleet] {tier}: audit ok "
            f"({block['audit']['leaked']} leaked, all covered); "
            f"{block['sessions']} sessions, {block['ops']} ops, "
            f"{block['throughput_ops_s']:.0f} ops/s, service p95 "
            f"{block['service_ms']['p95']:.1f} ms, lateness p95 "
            f"{block['lateness_ms']['p95']:.1f} ms",
            file=sys.stderr,
        )
    return document


def validate_fleet(document: dict, gates: Gates) -> List[str]:
    """Problems with a ``fleet`` document (empty == valid)."""
    problems: List[str] = []
    need = _checker(problems)

    need(
        document.get("schema_version") == fleet_sim.SCHEMA_VERSION,
        "schema_version mismatch",
    )
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {
            "sessions",
            "workers",
            "pace_ops_s",
            "n_shards",
            "arrival_rate",
            "zipf_exponent",
            "ngram_size",
            "window_size",
            "hash_bits",
        }
        <= set(config or {}),
        "config must carry the fleet shape and fingerprint parameters",
    )
    workload = document.get("workload")
    need(
        isinstance(workload, dict)
        and isinstance(workload.get("ops"), int)
        and workload.get("ops", 0) > 0
        and isinstance(workload.get("kinds"), dict)
        and isinstance(workload.get("schedule_digest"), str),
        "workload must carry ops, kinds, and schedule_digest",
    )
    need(
        document.get("audit_match") is True,
        "audit_match must be true (tiers disagreed)",
    )
    tiers = document.get("tiers")
    need(
        isinstance(tiers, dict) and {"single", "sharded"} <= set(tiers or {}),
        "tiers must carry single and sharded blocks",
    )
    gate_sessions = gates.get("sessions", 0.0)
    for name, block in (tiers or {}).items():
        need(isinstance(block, dict), f"tiers.{name} must be an object")
        if not isinstance(block, dict):
            continue
        for key in FLEET_TIER_KEYS:
            value = block.get(key)
            need(
                isinstance(value, (int, float)) and value >= 0,
                f"tiers.{name}.{key} must be a non-negative number",
            )
        for series in ("service_ms", "lateness_ms"):
            series_block = block.get(series)
            need(
                isinstance(series_block, dict),
                f"tiers.{name}.{series} must be an object",
            )
            for key in FLEET_SERIES_KEYS:
                value = (series_block or {}).get(key)
                need(
                    isinstance(value, (int, float)) and value >= 0,
                    f"tiers.{name}.{series}.{key} must be a "
                    f"non-negative number",
                )
        audit = block.get("audit")
        need(isinstance(audit, dict), f"tiers.{name}.audit must be an object")
        if isinstance(audit, dict):
            # The invariant is unconditional: no gate flag disables it.
            need(
                audit.get("ok") is True,
                f"tiers.{name}.audit.ok must be true",
            )
            need(
                audit.get("uncovered") == 0,
                f"tiers.{name}.audit.uncovered must be 0",
            )
            need(
                isinstance(audit.get("paragraphs_audited"), int)
                and audit.get("paragraphs_audited", 0) > 0,
                f"tiers.{name}.audit.paragraphs_audited must be positive",
            )
        if gate_sessions:
            actual = block.get("sessions", 0)
            need(
                isinstance(actual, (int, float)) and actual >= gate_sessions,
                f"tiers.{name}.sessions {actual} < gate {gate_sessions}",
            )
    return problems


#: Required percentile keys of each delta-check per-path summary.
DELTA_PATH_KEYS = ("edits", "p50_ms", "p95_ms", "p99_ms")


def run_delta(smoke: bool, seed: int, opts: RunOpts) -> dict:
    document = delta_bench.measure(smoke, seed)
    speedup = document["speedup"]["per_edit_median"]
    print(
        f"[delta_check] equivalence ok on "
        f"{document['equivalence_checked']} decisions (1 and "
        f"{document['config']['n_shards']} shards); per-edit median "
        f"{speedup:.2f}x vs full recheck",
        file=sys.stderr,
    )
    return document


def validate_delta(document: dict, gates: Gates) -> List[str]:
    """Problems with a ``delta_check`` document (empty == valid)."""
    problems: List[str] = []
    need = _checker(problems)

    need(
        document.get("schema_version") == delta_bench.SCHEMA_VERSION,
        "schema_version mismatch",
    )
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {
            "n_shards",
            "rounds",
            "paragraphs",
            "edits_per_paragraph",
            "ngram_size",
            "window_size",
            "hash_bits",
        }
        <= set(config or {}),
        "config must carry the workload shape and fingerprint parameters",
    )
    workload = document.get("workload")
    need(
        isinstance(workload, dict)
        and isinstance(workload.get("edits"), int)
        and workload.get("edits", 0) > 0,
        "workload.edits must be a positive integer",
    )
    need(
        isinstance(document.get("equivalence_checked"), int)
        and document.get("equivalence_checked", 0) > 0,
        "equivalence_checked must be a positive integer",
    )
    paths = document.get("paths")
    need(
        isinstance(paths, dict)
        and {"full_recheck", "delta"} <= set(paths or {}),
        "paths must carry full_recheck and delta blocks",
    )
    for name, block in (paths or {}).items():
        need(isinstance(block, dict), f"paths.{name} must be an object")
        if not isinstance(block, dict):
            continue
        for key in DELTA_PATH_KEYS:
            value = block.get(key)
            need(
                isinstance(value, (int, float)) and value >= 0,
                f"paths.{name}.{key} must be a non-negative number",
            )
    speedup = document.get("speedup")
    need(
        isinstance(speedup, dict)
        and isinstance(speedup.get("per_edit_median"), (int, float)),
        "speedup must carry a numeric per_edit_median ratio",
    )
    if isinstance(speedup, dict):
        gate_delta = gates.get("delta", 0.0)
        if gate_delta:
            actual = speedup.get("per_edit_median", 0)
            need(
                isinstance(actual, (int, float)) and actual >= gate_delta,
                f"per-edit median speedup {actual} < gate {gate_delta}",
            )
    return problems


#: Required numeric keys of each wal per-path summary.
WAL_PATH_KEYS = ("ops", "seconds", "ops_per_s")


def run_wal(smoke: bool, seed: int, opts: RunOpts) -> dict:
    document = wal_bench.measure(smoke, seed)
    overhead = document["overhead"]["ratio"]
    recovery = document["recovery"]
    print(
        f"[wal] equivalence ok on {document['equivalence_checked']} "
        f"verdicts (durable and recovered vs plain); journaling overhead "
        f"{(overhead - 1.0) * 100:.1f}%, recovery "
        f"{recovery['records_per_s']:.0f} records/s "
        f"({recovery['seconds'] * 1000:.1f} ms full log, "
        f"{recovery['post_compaction_seconds'] * 1000:.1f} ms compacted)",
        file=sys.stderr,
    )
    return document


def validate_wal(document: dict, gates: Gates) -> List[str]:
    """Problems with a ``wal`` document (empty == valid)."""
    problems: List[str] = []
    need = _checker(problems)

    need(
        document.get("schema_version") == wal_bench.SCHEMA_VERSION,
        "schema_version mismatch",
    )
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {
            "fsync",
            "fsync_interval",
            "rounds",
            "ngram_size",
            "window_size",
            "hash_bits",
        }
        <= set(config or {}),
        "config must carry the fsync policy and fingerprint parameters",
    )
    workload = document.get("workload")
    need(
        isinstance(workload, dict)
        and isinstance(workload.get("observes"), int)
        and workload.get("observes", 0) > 0
        and isinstance(workload.get("scans"), int),
        "workload must carry positive observes and scans counts",
    )
    need(
        isinstance(document.get("equivalence_checked"), int)
        and document.get("equivalence_checked", 0) > 0,
        "equivalence_checked must be a positive integer",
    )
    paths = document.get("paths")
    need(
        isinstance(paths, dict) and {"plain", "durable"} <= set(paths or {}),
        "paths must carry plain and durable blocks",
    )
    for name, block in (paths or {}).items():
        need(isinstance(block, dict), f"paths.{name} must be an object")
        if not isinstance(block, dict):
            continue
        for key in WAL_PATH_KEYS:
            value = block.get(key)
            need(
                isinstance(value, (int, float)) and value >= 0,
                f"paths.{name}.{key} must be a non-negative number",
            )
    overhead = document.get("overhead")
    need(
        isinstance(overhead, dict)
        and isinstance(overhead.get("ratio"), (int, float)),
        "overhead must carry a numeric durable/plain ratio",
    )
    recovery = document.get("recovery")
    need(
        isinstance(recovery, dict)
        and all(
            isinstance(recovery.get(key), (int, float))
            for key in (
                "records", "seconds", "records_per_s",
                "post_compaction_seconds",
            )
        ),
        "recovery must carry records/seconds/records_per_s/"
        "post_compaction_seconds",
    )
    if isinstance(overhead, dict):
        gate_overhead = gates.get("wal_overhead", 0.0)
        if gate_overhead:
            actual = overhead.get("ratio", float("inf"))
            # A maximum, unlike the speedup gates: overhead above the
            # gate is the regression.
            need(
                isinstance(actual, (int, float)) and actual <= gate_overhead,
                f"journaling overhead ratio {actual} > gate {gate_overhead}",
            )
    return problems


#: bench name -> (runner, validator). One validator per family; the
#: dispatcher below picks by the document's own ``bench`` field.
BENCHES: Dict[str, Tuple[Callable[[bool, int, RunOpts], dict], Callable[[dict, Gates], List[str]]]] = {
    "fingerprint_ingest": (run_ingest, validate_ingest),
    "sharded_lookup": (run_sharded, validate_sharded),
    "fleet": (run_fleet_bench, validate_fleet),
    "delta_check": (run_delta, validate_delta),
    "wal": (run_wal, validate_wal),
}


def validate(document: dict, gates: Gates) -> List[str]:
    """Dispatch to the registered validator for ``document["bench"]``."""
    bench = document.get("bench")
    if bench not in BENCHES:
        known = ", ".join(sorted(BENCHES))
        return [f"unknown bench {bench!r} (known: {known})"]
    return BENCHES[bench][1](document, gates)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        choices=sorted(BENCHES),
        default="fingerprint_ingest",
        help="which benchmark family --out should run",
    )
    parser.add_argument("--out", type=Path, help="write a fresh measurement here")
    parser.add_argument(
        "--smoke", action="store_true", help="small corpora for CI"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="with --out (fleet): session-mix churn in [0, 1] — shifts "
        "sessions toward keystroke-heavy Docs scripts so the run "
        "stresses the delta-aware check pipeline (DESIGN.md §13)",
    )
    parser.add_argument(
        "--validate", type=Path, help="schema-check an existing file"
    )
    parser.add_argument(
        "--gate-pure",
        type=float,
        default=0.0,
        help="with --validate (fingerprint_ingest): minimum kernel_pure "
        "speedup per corpus",
    )
    parser.add_argument(
        "--gate-numpy",
        type=float,
        default=0.0,
        help="with --validate (fingerprint_ingest): minimum kernel_numpy "
        "speedup per corpus",
    )
    parser.add_argument(
        "--gate-throughput",
        type=float,
        default=0.0,
        help="with --validate (sharded_lookup): minimum fleet throughput "
        "ratio vs the single-engine server",
    )
    parser.add_argument(
        "--gate-p95",
        type=float,
        default=0.0,
        help="with --validate (sharded_lookup): minimum service-latency "
        "p95 ratio (>= 1.0 means no worse than single-engine)",
    )
    parser.add_argument(
        "--gate-sessions",
        type=float,
        default=0.0,
        help="with --validate (fleet): minimum simulated sessions per tier",
    )
    parser.add_argument(
        "--gate-delta",
        type=float,
        default=0.0,
        help="with --validate (delta_check): minimum per-edit median "
        "speedup of the delta pipeline vs a full recheck",
    )
    parser.add_argument(
        "--gate-wal-overhead",
        type=float,
        default=0.0,
        help="with --validate (wal): MAXIMUM durable/plain wall-clock "
        "ratio (1.15 = at most 15%% journaling overhead)",
    )
    args = parser.parse_args(argv)
    if not args.out and not args.validate:
        parser.error("nothing to do: pass --out and/or --validate")
    gates: Gates = {
        "pure": args.gate_pure,
        "numpy": args.gate_numpy,
        "throughput": args.gate_throughput,
        "p95": args.gate_p95,
        "sessions": args.gate_sessions,
        "delta": args.gate_delta,
        "wal_overhead": args.gate_wal_overhead,
    }

    if args.out:
        opts: RunOpts = {"churn": args.churn}
        document = BENCHES[args.bench][0](args.smoke, args.seed, opts)
        problems = validate(document, {})
        if problems:  # a tool bug, not a perf regression — fail loudly
            for problem in problems:
                print(f"self-check: {problem}", file=sys.stderr)
            return 2
        args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.validate:
        document = json.loads(args.validate.read_text())
        problems = validate(document, gates)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate} valid", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
