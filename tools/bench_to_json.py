#!/usr/bin/env python3
"""Produce or validate the BENCH_fingerprint.json ingest trajectory.

The committed ``BENCH_fingerprint.json`` records per-stage ingest
throughput (MB/s for normalise / hash / winnow / end-to-end) of the
reference pipeline, the pure-Python kernel, and — when numpy is
importable — the vectorised kernel, over the Wikipedia and manuals
corpora. Re-running this tool after a perf-relevant PR and committing
the refreshed file makes the trajectory visible in git history.

Standard library only; the kernel's numpy path is reached through its
own guarded import, so the tool runs (and validates) with or without
numpy installed.

Usage::

    PYTHONPATH=src python tools/bench_to_json.py --out BENCH_fingerprint.json
    PYTHONPATH=src python tools/bench_to_json.py --smoke --out /tmp/b.json
    PYTHONPATH=src python tools/bench_to_json.py --validate BENCH_fingerprint.json
    PYTHONPATH=src python tools/bench_to_json.py --validate /tmp/b.json \
        --gate-pure 1.8 --gate-numpy 3.0

``--smoke`` shrinks the corpora for CI; measured MB/s is noisier there,
which is why the CI gates sit well under the real-corpus speedups.
Validation checks the schema shape and, with ``--gate-*``, that every
corpus' kernel speedup clears the floor. Equivalence (kernel fingerprints
== reference fingerprints, hashes and spans) is always asserted before a
file is written, so a trajectory entry can never come from a wrong
kernel.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.eval.ingest_bench import (  # noqa: E402
    SCHEMA_VERSION,
    available_paths,
    check_equivalence,
    corpus_texts,
    measure_corpus,
)
from repro.fingerprint import HAS_NUMPY  # noqa: E402
from repro.fingerprint.config import PAPER_CONFIG  # noqa: E402

#: Required numeric keys of each per-path measurement block.
PATH_KEYS = (
    "bytes",
    "seconds",
    "total_mbps",
    "normalize_mbps",
    "hash_mbps",
    "winnow_mbps",
)


def build_corpora(smoke: bool, seed: int):
    from repro.datasets import ManualsCorpus, WikipediaCorpus

    if smoke:
        wikipedia = WikipediaCorpus.generate(
            n_extra_articles=2, n_revisions=6, seed=seed
        )
        manuals = ManualsCorpus.generate(seed=seed, scale=0.5)
    else:
        wikipedia = WikipediaCorpus.generate(
            n_extra_articles=12, n_revisions=100, seed=seed
        )
        manuals = ManualsCorpus.generate(seed=seed, scale=1.0)
    return {"wikipedia": wikipedia, "manuals": manuals}


def run(smoke: bool, seed: int) -> dict:
    config = PAPER_CONFIG
    corpora = {}
    for name, corpus in build_corpora(smoke, seed).items():
        texts = corpus_texts(corpus)
        compared = check_equivalence(texts, config, sample=25)
        print(
            f"[{name}] equivalence ok on {compared} texts; measuring "
            f"{sum(len(t) for t in texts)} bytes over "
            f"{', '.join(available_paths(config))}",
            file=sys.stderr,
        )
        corpora[name] = measure_corpus(texts, config)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "fingerprint_ingest",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": HAS_NUMPY,
        "config": {
            "ngram_size": config.ngram_size,
            "window_size": config.window_size,
            "hash_bits": config.hash_bits,
        },
        "corpora": corpora,
    }


def validate(document: dict, gate_pure: float, gate_numpy: float) -> list:
    """Return a list of problems (empty == valid)."""
    problems = []

    def need(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    need(document.get("schema_version") == SCHEMA_VERSION, "schema_version mismatch")
    need(document.get("bench") == "fingerprint_ingest", "bench name mismatch")
    need(isinstance(document.get("smoke"), bool), "smoke must be a boolean")
    need(isinstance(document.get("numpy"), bool), "numpy must be a boolean")
    config = document.get("config")
    need(
        isinstance(config, dict)
        and {"ngram_size", "window_size", "hash_bits"} <= set(config or {}),
        "config must carry ngram_size/window_size/hash_bits",
    )
    corpora = document.get("corpora")
    need(isinstance(corpora, dict) and corpora, "corpora must be a non-empty object")
    for name, corpus in (corpora or {}).items():
        paths = corpus.get("paths") if isinstance(corpus, dict) else None
        need(isinstance(paths, dict), f"{name}: paths must be an object")
        if not isinstance(paths, dict):
            continue
        need("reference" in paths, f"{name}: missing reference path")
        need("kernel_pure" in paths, f"{name}: missing kernel_pure path")
        for path_name, block in paths.items():
            for key in PATH_KEYS:
                value = block.get(key) if isinstance(block, dict) else None
                need(
                    isinstance(value, (int, float)) and value >= 0,
                    f"{name}.{path_name}.{key} must be a non-negative number",
                )
        speedup = corpus.get("speedup", {})
        if gate_pure:
            actual = speedup.get("kernel_pure", 0)
            need(
                actual >= gate_pure,
                f"{name}: kernel_pure speedup {actual} < gate {gate_pure}",
            )
        if gate_numpy and "kernel_numpy" in paths:
            actual = speedup.get("kernel_numpy", 0)
            need(
                actual >= gate_numpy,
                f"{name}: kernel_numpy speedup {actual} < gate {gate_numpy}",
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, help="write a fresh measurement here")
    parser.add_argument(
        "--smoke", action="store_true", help="small corpora for CI"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--validate", type=Path, help="schema-check an existing file"
    )
    parser.add_argument(
        "--gate-pure",
        type=float,
        default=0.0,
        help="with --validate: minimum kernel_pure speedup per corpus",
    )
    parser.add_argument(
        "--gate-numpy",
        type=float,
        default=0.0,
        help="with --validate: minimum kernel_numpy speedup per corpus",
    )
    args = parser.parse_args(argv)
    if not args.out and not args.validate:
        parser.error("nothing to do: pass --out and/or --validate")

    if args.out:
        document = run(smoke=args.smoke, seed=args.seed)
        problems = validate(document, 0.0, 0.0)
        if problems:  # a tool bug, not a perf regression — fail loudly
            for problem in problems:
                print(f"self-check: {problem}", file=sys.stderr)
            return 2
        args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.validate:
        document = json.loads(args.validate.read_text())
        problems = validate(document, args.gate_pure, args.gate_numpy)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate} valid", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
