#!/usr/bin/env python3
"""Validate a `repro trace` JSON document against the checked-in schema.

A dependency-free validator for the subset of JSON Schema the trace
schema uses — ``type``, ``required``, ``properties``, ``items``,
``minItems``, and ``$ref`` into ``#/definitions/…`` — so CI can verify
trace output without installing ``jsonschema``. Also enforces the trace
contract the schema alone cannot express: with ``--min-stages N`` the
document must contain at least N *distinct* span names across the whole
forest (the "one scan produces a multi-stage pipeline tree" guarantee).

Usage::

    python tools/validate_trace.py trace.json \
        --schema docs/trace_schema.json --min-stages 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def _resolve(schema: dict, root: dict) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only internal refs)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(instance, schema: dict, root: dict = None, path: str = "$") -> None:
    """Raise ValueError at the first point *instance* violates *schema*."""
    if root is None:
        root = schema
    schema = _resolve(schema, root)

    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        # bool is an int subclass; a True "integer" would be a type bug.
        if isinstance(instance, bool) and expected in ("integer", "number"):
            raise ValueError(f"{path}: expected {expected}, got boolean")
        if not isinstance(instance, python_type):
            raise ValueError(
                f"{path}: expected {expected}, got {type(instance).__name__}"
            )

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise ValueError(f"{path}: missing required property {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                validate(instance[name], subschema, root, f"{path}.{name}")

    if isinstance(instance, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(instance) < min_items:
            raise ValueError(
                f"{path}: expected at least {min_items} items, got {len(instance)}"
            )
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(instance):
                validate(element, items, root, f"{path}[{i}]")


def distinct_stages(document: dict) -> set:
    """All span names in the document's span forest."""
    names = set()

    def walk(spans):
        for entry in spans:
            names.add(entry.get("name"))
            walk(entry.get("children", ()))

    walk(document.get("spans", ()))
    return names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument(
        "--schema",
        default=str(Path(__file__).resolve().parent.parent / "docs" / "trace_schema.json"),
        help="schema path (default: docs/trace_schema.json)",
    )
    parser.add_argument(
        "--min-stages",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct span names in the document",
    )
    args = parser.parse_args(argv)

    document = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    schema = json.loads(Path(args.schema).read_text(encoding="utf-8"))
    try:
        validate(document, schema)
    except ValueError as exc:
        print(f"schema violation: {exc}", file=sys.stderr)
        return 1

    stages = distinct_stages(document)
    if len(stages) < args.min_stages:
        print(
            f"expected >= {args.min_stages} distinct pipeline stages, "
            f"got {len(stages)}: {sorted(str(s) for s in stages)}",
            file=sys.stderr,
        )
        return 1

    print(
        f"{args.trace}: valid (version {document.get('version')}, "
        f"{len(stages)} distinct stages)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
