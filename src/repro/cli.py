"""Command-line interface.

Usage (installed as ``python -m repro``):

* ``python -m repro fingerprint FILE`` — fingerprint a text file;
* ``python -m repro compare A B`` — pairwise disclosure between files;
* ``python -m repro observe --db db.json --id ID FILE`` — add a file to
  a fingerprint database snapshot (created if missing);
* ``python -m repro scan --db db.json FILE`` — which tracked segments
  does the file disclose;
* ``python -m repro corpus`` — dataset statistics (Table 1, small scale);
* ``python -m repro experiment NAME`` — run one paper experiment at a
  reduced scale and print its rows/series;
* ``python -m repro stats --db db.json [--scan FILE]`` — print the
  metrics-registry snapshot of a database (optionally after one scan);
* ``python -m repro trace --db db.json FILE`` — run one scan under a
  tracer and emit the pipeline span tree as JSON.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import List, Optional

try:  # advisory database locking; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only dependency
    fcntl = None

from repro.disclosure import DisclosureEngine
from repro.disclosure.persistence import load_engine, save_engine
from repro.errors import ReproError
from repro.fingerprint import FingerprintConfig, Fingerprinter
from repro.obs.trace import Tracer, span, tracing
from repro.plugin.crypto import UploadCipher


def _config_from_args(args) -> FingerprintConfig:
    return FingerprintConfig(
        ngram_size=args.ngram, window_size=args.window, hash_bits=args.bits
    )


def _read_text(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _cipher_from_args(args) -> Optional[UploadCipher]:
    return UploadCipher(args.key) if getattr(args, "key", None) else None


def _load_or_create_engine(args) -> DisclosureEngine:
    db_path = Path(args.db)
    if db_path.exists():
        return load_engine(db_path, cipher=_cipher_from_args(args))
    return DisclosureEngine(_config_from_args(args))


#: Test hook: called (with no arguments) inside the database lock after
#: the engine is loaded but before it is mutated and saved. The
#: lost-update regression test parks one invocation here while a second
#: one contends for the lock.
_AFTER_LOAD_HOOK = None


@contextlib.contextmanager
def _db_locked(db_path: Path):
    """Advisory exclusive lock covering a load → mutate → save cycle.

    Two concurrent ``repro observe`` runs against the same database used
    to race: both load the same snapshot, each saves its own mutation,
    and the second save silently discards the first's ops. An exclusive
    ``flock`` on a ``<db>.lock`` sidecar serialises the whole cycle
    (sidecar, not the db itself, because ``save_engine`` atomically
    *replaces* the db file, which would orphan a lock held on it).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = db_path.with_name(db_path.name + ".lock")
    with open(lock_path, "w") as lock_file:
        fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_fingerprint(args) -> int:
    fingerprinter = Fingerprinter(_config_from_args(args))
    text = _read_text(args.file)
    fp = fingerprinter.fingerprint(text)
    config = fingerprinter.config
    print(f"file:        {args.file}")
    print(f"characters:  {len(text)}")
    print(f"config:      n-gram {config.ngram_size}, window {config.window_size}, "
          f"{config.hash_bits}-bit hashes")
    print(f"guarantee:   shared passages >= {config.noise_threshold} chars detected")
    print(f"hashes:      {len(fp)}")
    if args.show_hashes:
        print(" ".join(str(h) for h in sorted(fp.hashes)[:args.show_hashes]))
    return 0


def cmd_compare(args) -> int:
    fingerprinter = Fingerprinter(_config_from_args(args))
    fp_a = fingerprinter.fingerprint(_read_text(args.file_a))
    fp_b = fingerprinter.fingerprint(_read_text(args.file_b))
    a_in_b = fp_a.containment_in(fp_b)
    b_in_a = fp_b.containment_in(fp_a)
    print(f"D({args.file_a} -> {args.file_b}) = {a_in_b:.3f}")
    print(f"D({args.file_b} -> {args.file_a}) = {b_in_a:.3f}")
    threshold = args.threshold
    if a_in_b >= threshold or b_in_a >= threshold:
        print(f"verdict: significant disclosure (threshold {threshold})")
        return 1
    print(f"verdict: no significant disclosure (threshold {threshold})")
    return 0


def cmd_observe(args) -> int:
    with _db_locked(Path(args.db)):
        engine = _load_or_create_engine(args)
        if _AFTER_LOAD_HOOK is not None:
            _AFTER_LOAD_HOOK()
        engine.observe(args.id, _read_text(args.file), threshold=args.threshold)
        save_engine(engine, args.db, cipher=_cipher_from_args(args))
    stats = engine.stats()
    print(f"observed {args.id!r}; database now holds "
          f"{stats['segments']} segments / {stats['distinct_hashes']} hashes")
    return 0


def cmd_recover(args) -> int:
    """Recover a durable engine directory (snapshot + WAL) and report.

    With ``--compact`` the recovered state is folded into a fresh
    snapshot and the log is rotated, so the next recovery replays
    (almost) nothing. The WAL shard count is adopted from the snapshot
    when one exists; ``--shards`` covers a sharded directory that was
    never compacted (and is validated against the snapshot otherwise —
    a mismatch fails loudly rather than dropping shard logs).
    """
    from repro.disclosure.wal import DurableEngine

    engine = DurableEngine(
        Path(args.dir),
        config=_config_from_args(args),
        cipher=_cipher_from_args(args),
        n_shards=args.shards,
    )
    try:
        recovery = engine.recovery
        stats = engine.stats()
        print(f"recovered {args.dir}: {stats['segments']} segments / "
              f"{stats['distinct_hashes']} hashes")
        print(f"  snapshot covers lsn {recovery.snapshot_lsn}; replayed "
              f"{recovery.replayed} record(s), skipped {recovery.skipped}, "
              f"truncated {recovery.torn_bytes} torn byte(s)")
        print(f"  logical clock resumed at {recovery.resumed_clock}")
        if args.compact:
            lsn = engine.compact()
            print(f"  compacted through lsn {lsn}")
    finally:
        engine.close()
    return 0


def cmd_scan(args) -> int:
    db_path = Path(args.db)
    if not db_path.exists():
        print(f"error: no database at {args.db}", file=sys.stderr)
        return 2
    engine = load_engine(db_path, cipher=_cipher_from_args(args))
    fp = engine.fingerprint(_read_text(args.file))
    report = engine.disclosing_sources(fingerprint=fp)
    if not report.disclosing:
        print("no tracked segment is disclosed")
        return 0
    for source in report.sources:
        print(f"discloses {source.segment_id}  D = {source.score:.3f}  "
              f"(threshold {source.threshold})")
    return 1


def cmd_stats(args) -> int:
    """Print the registry snapshot for a database, as JSON.

    With ``--scan FILE`` one disclosure query runs twice — cold, then
    warm through the §13 delta-check caches (the content-addressed
    fingerprint cache and an epoch-keyed verdict memo over the loaded
    engine) — so the query-path counters, the ``fingerprint.cache.*``
    and ``decision.epoch_cache.*`` families, and the latency histograms
    are all populated; without it the snapshot shows database state
    (gauges) and zeroed counters.
    """
    from repro.plugin.cache import (
        FingerprintCache,
        LRUCache,
        fingerprint_set_digest,
    )

    db_path = Path(args.db)
    if not db_path.exists():
        print(f"error: no database at {args.db}", file=sys.stderr)
        return 2
    engine = load_engine(db_path, cipher=_cipher_from_args(args))
    if args.scan:
        text = _read_text(args.scan)
        fp_cache = FingerprintCache(
            scope=engine.registry.scope("fingerprint.cache.")
        )
        memo = LRUCache(
            scope=engine.registry.scope("decision.epoch_cache.")
        )
        for _round in range(2):  # cold then warm
            fp = fp_cache.fingerprint(engine.fingerprinter, text)
            key = (
                fingerprint_set_digest([fp.hashes]),
                engine.version_epoch(fp.hashes),
            )
            if memo.get(key) is None:
                memo.put(key, engine.disclosing_sources(fingerprint=fp))
    print(json.dumps(engine.registry.snapshot(), indent=2, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    """Run one scan under a tracer and emit the span tree as JSON.

    The tree covers the pipeline stages of a disclosure decision:
    ``scan`` (root) → ``intercept`` (reading the upload candidate) →
    ``fingerprint`` (with nested ``normalize``) → ``algorithm1`` →
    ``decision``. CI validates the output against
    ``docs/trace_schema.json``.
    """
    db_path = Path(args.db)
    if not db_path.exists():
        print(f"error: no database at {args.db}", file=sys.stderr)
        return 2
    engine = load_engine(db_path, cipher=_cipher_from_args(args))
    tracer = Tracer()
    with tracing(tracer):
        with tracer.span("scan", file=args.file, db=args.db):
            with span("intercept", kind="cli") as isp:
                text = _read_text(args.file)
                isp.set(chars=len(text))
            fp = engine.fingerprint(text)
            report = engine.disclosing_sources(fingerprint=fp)
            with span("decision") as dsp:
                dsp.set(
                    disclosing=report.disclosing,
                    sources=len(report.sources),
                )
    document = tracer.to_json(indent=2)
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
        print(f"trace written to {args.output}")
    else:
        print(document)
    return 0


def cmd_corpus(args) -> int:
    from repro.datasets import EbookCorpus, ManualsCorpus, WikipediaCorpus
    from repro.eval import table1_dataset_stats
    from repro.eval.reporting import format_table

    wikipedia = WikipediaCorpus.generate(n_revisions=args.revisions, seed=args.seed)
    manuals = ManualsCorpus.generate(seed=args.seed)
    ebooks = EbookCorpus.generate(
        n_books=args.books, paragraphs_per_book=60, seed=args.seed
    )
    rows = table1_dataset_stats(wikipedia, manuals, ebooks)
    print(
        format_table(
            ["Dataset", "Name", "Documents", "Versions", "Paragraphs", "Size (KB)"],
            [[r["dataset"], r["name"], r["documents"], r["versions"],
              r["paragraphs"], r["size_kb"]] for r in rows],
            title="Table 1 (synthetic corpora)",
        )
    )
    return 0


def cmd_experiment(args) -> int:
    from repro.datasets import EbookCorpus, ManualsCorpus, WikipediaCorpus
    from repro.eval import (
        figure8_length_change_cdf,
        figure9_paragraph_disclosure,
        figure10_manuals_disclosure,
        figure11_threshold_sweep,
        figure12_response_times,
        figure13_scalability,
    )
    from repro.eval.reporting import format_cdf_summary, format_series

    name = args.name
    seed = args.seed
    if name == "all":
        from repro.eval.runner import EvaluationRunner, EvaluationScale

        runner = EvaluationRunner(EvaluationScale(seed=seed))
        print(runner.run())
    elif name == "fig8":
        corpus = WikipediaCorpus.generate(n_revisions=40, seed=seed)
        points = figure8_length_change_cdf(corpus)
        print(format_series({"length change": points}, title="Figure 8",
                            x_label="relative change %", y_label="CDF"))
    elif name == "fig9":
        corpus = WikipediaCorpus.generate(n_revisions=40, seed=seed)
        results = figure9_paragraph_disclosure(corpus, revision_step=5)
        series = {t: [(float(i), p) for i, p in s] for t, s in results.items()}
        print(format_series(series, title="Figure 9",
                            x_label="revision", y_label="% disclosed"))
    elif name == "fig10":
        manuals = ManualsCorpus.generate(seed=seed)
        results = figure10_manuals_disclosure(manuals)
        for chapter_id, points in results.items():
            print(chapter_id)
            for p in points:
                print(f"  {p.version:6s} truth {p.ground_truth_pct:6.1f}%  "
                      f"browserflow {p.browserflow_pct:6.1f}%")
    elif name == "fig11":
        manuals = ManualsCorpus.generate(seed=seed)
        sweep = figure11_threshold_sweep(manuals)
        print(format_series({"ratio": sweep}, title="Figure 11",
                            x_label="Tpar", y_label="detected/truth"))
    elif name == "fig12":
        books = EbookCorpus.generate(n_books=10, paragraphs_per_book=60, seed=seed)
        results = figure12_response_times(books)
        for workflow, times in results.items():
            ms = [t * 1000 for t in times]
            print(format_cdf_summary(workflow, ms, (1.0, 5.0, 30.0, 200.0)))
    elif name == "fig13":
        books = EbookCorpus.generate(n_books=20, paragraphs_per_book=80, seed=seed)
        series = figure13_scalability(books, steps=4, samples_per_step=10)
        print(format_series(
            {"p95 ms": [(float(n), ms) for n, ms in series]},
            title="Figure 13", x_label="hashes", y_label="p95 ms",
        ))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def _add_config_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ngram", type=int, default=15,
                        help="n-gram size in characters (default 15)")
    parser.add_argument("--window", type=int, default=30,
                        help="winnowing window size (default 30)")
    parser.add_argument("--bits", type=int, default=32,
                        help="hash width in bits (default 32)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BrowserFlow reproduction: imprecise data flow tracking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fingerprint", help="fingerprint a text file")
    p.add_argument("file")
    p.add_argument("--show-hashes", type=int, default=0, metavar="N",
                   help="print the first N hash values")
    _add_config_options(p)
    p.set_defaults(func=cmd_fingerprint)

    p = sub.add_parser("compare", help="pairwise disclosure between two files")
    p.add_argument("file_a")
    p.add_argument("file_b")
    p.add_argument("--threshold", type=float, default=0.5)
    _add_config_options(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("observe", help="add a file to a fingerprint database")
    p.add_argument("file")
    p.add_argument("--db", required=True, help="database snapshot path")
    p.add_argument("--id", required=True, help="segment id to record")
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument("--key", help="encrypt the database at rest with this key")
    _add_config_options(p)
    p.set_defaults(func=cmd_observe)

    p = sub.add_parser("scan", help="check a file against a database")
    p.add_argument("file")
    p.add_argument("--db", required=True)
    p.add_argument("--key", help="database decryption key")
    _add_config_options(p)
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("stats", help="print a database's metrics snapshot")
    p.add_argument("--db", required=True)
    p.add_argument("--scan", metavar="FILE",
                   help="run one disclosure query on FILE first")
    p.add_argument("--key", help="database decryption key")
    _add_config_options(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("trace", help="trace one scan's pipeline as JSON spans")
    p.add_argument("file")
    p.add_argument("--db", required=True)
    p.add_argument("--key", help="database decryption key")
    p.add_argument("--output", metavar="PATH", help="write JSON here "
                   "instead of stdout")
    _add_config_options(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "recover", help="recover a durable engine directory (snapshot + WAL)"
    )
    p.add_argument("--dir", required=True, help="durable engine directory")
    p.add_argument("--key", help="at-rest encryption key")
    p.add_argument("--compact", action="store_true",
                   help="fold the WAL into a fresh snapshot after recovery")
    p.add_argument("--shards", type=int, default=None,
                   help="WAL shard count (default: adopted from the "
                        "snapshot; required for a sharded directory "
                        "that was never compacted)")
    _add_config_options(p)
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("corpus", help="print Table 1 for the synthetic corpora")
    p.add_argument("--revisions", type=int, default=20)
    p.add_argument("--books", type=int, default=5)
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("experiment", help="run one paper experiment (small scale)")
    p.add_argument(
        "name",
        choices=["all", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"],
    )
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # A corrupt snapshot, wrong key, or bad request is an expected
        # operational failure: one readable line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
