"""BrowserFlow reproduction: imprecise data flow tracking to prevent
accidental data disclosure (Papagiannis et al., Middleware 2016).

Public API tour
---------------

Fingerprinting (paper §4.1)::

    from repro import Fingerprinter, FingerprintConfig
    fp = Fingerprinter(FingerprintConfig(ngram_size=15, window_size=30))
    f1 = fp.fingerprint("Quarterly results are confidential until Friday.")

Disclosure tracking (paper §4.2–§4.3)::

    from repro import DisclosureEngine
    engine = DisclosureEngine()
    engine.observe("wiki:guidelines", sensitive_text, threshold=0.5)
    report = engine.disclosing_sources(fingerprint=engine.fingerprint(pasted))

Policies and labels (paper §3)::

    from repro import Label, PolicyStore, TextDisclosureModel
    policies = PolicyStore()
    policies.register_service("https://wiki.corp", privilege=Label.of("tw"),
                              confidentiality=Label.of("tw"))
    model = TextDisclosureModel(policies)

The full middleware (paper §5)::

    from repro import Browser, BrowserFlowPlugin, Network
    network = Network()
    browser = Browser(network)
    plugin = BrowserFlowPlugin(model)
    plugin.attach(browser)
"""

from repro._version import __version__
from repro.browser import Browser, Clipboard, MutationObserver, Tab, Window
from repro.disclosure import (
    DisclosureEngine,
    DisclosureReport,
    DisclosureTracker,
    SourceDisclosure,
    attribute_disclosure,
)
from repro.disclosure.exactmatch import ShortSecretTracker
from repro.fingerprint import Fingerprint, FingerprintConfig, Fingerprinter
from repro.fingerprint.config import PAPER_CONFIG, TINY_CONFIG
from repro.fingerprint.incremental import IncrementalFingerprinter
from repro.plugin import (
    BrowserFlowPlugin,
    FailureMode,
    LookupClient,
    LookupServer,
    PluginMode,
    UploadCipher,
    WarningEvent,
)
from repro.plugin.adapters import EditorAdapter
from repro.services import (
    DocsService,
    FaultyNetwork,
    ForumService,
    InterviewTool,
    Network,
    NotesService,
    StaticSite,
    WikiService,
)
from repro.tdm import (
    EMPTY_LABEL,
    Label,
    PolicyStore,
    SegmentLabel,
    ServicePolicy,
    Tag,
    TextDisclosureModel,
)
from repro.tdm.model import FlowDecision, FlowViolation, Suppression

__all__ = [
    "__version__",
    # browser
    "Browser",
    "Clipboard",
    "MutationObserver",
    "Tab",
    "Window",
    # extensions
    "ShortSecretTracker",
    "IncrementalFingerprinter",
    "EditorAdapter",
    "NotesService",
    # disclosure
    "DisclosureEngine",
    "DisclosureReport",
    "DisclosureTracker",
    "SourceDisclosure",
    "attribute_disclosure",
    # fingerprinting
    "Fingerprint",
    "FingerprintConfig",
    "Fingerprinter",
    "PAPER_CONFIG",
    "TINY_CONFIG",
    # plugin
    "BrowserFlowPlugin",
    "FailureMode",
    "LookupClient",
    "LookupServer",
    "PluginMode",
    "UploadCipher",
    "WarningEvent",
    # services
    "DocsService",
    "FaultyNetwork",
    "ForumService",
    "InterviewTool",
    "Network",
    "StaticSite",
    "WikiService",
    # tdm
    "EMPTY_LABEL",
    "Label",
    "PolicyStore",
    "SegmentLabel",
    "ServicePolicy",
    "Tag",
    "TextDisclosureModel",
    "FlowDecision",
    "FlowViolation",
    "Suppression",
]
