"""The BrowserFlow middleware plug-in (paper §3 overview, §5).

The plug-in sits between page scripts and the network. It is composed of
the two modules from Figure 1 — a *policy lookup* module that resolves
the security label of text being uploaded, and a *policy enforcement*
module that compares that label with the target service's privilege
label — plus the browser glue: XHR prototype patching, form submit
listeners, mutation observers, static-page text ingestion, a decision
cache, an upload-encryption fallback, and the paragraph-highlighting UI.
"""

from repro.plugin.cache import DecisionCache
from repro.plugin.crypto import UploadCipher
from repro.plugin.enforcement import EnforcementAction, PolicyEnforcement, PluginMode
from repro.plugin.lookup import BatchItem, PolicyLookup
from repro.plugin.plugin import BrowserFlowPlugin, WarningEvent
from repro.plugin.router import ShardRouter
from repro.plugin.server import (
    BatchLookupClient,
    FailureMode,
    LookupClient,
    LookupOutcome,
    LookupServer,
)
from repro.plugin.ui import Highlighter

__all__ = [
    "DecisionCache",
    "UploadCipher",
    "EnforcementAction",
    "PolicyEnforcement",
    "PluginMode",
    "BatchItem",
    "PolicyLookup",
    "BrowserFlowPlugin",
    "WarningEvent",
    "BatchLookupClient",
    "FailureMode",
    "LookupClient",
    "LookupOutcome",
    "LookupServer",
    "ShardRouter",
    "Highlighter",
]
