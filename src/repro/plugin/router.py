"""Scatter/gather routing for sharded sweeps (DESIGN.md §11).

:class:`ShardRouter` is the plugin tier's scatter strategy for
:class:`~repro.disclosure.sharding.ShardedHashDatabase`: per-shard sweep
jobs are dispatched onto a small worker pool and gathered in order. The
contract is duck-typed — the disclosure tier only requires an object
with ``map(fn, items)`` — so the dependency points plugin → disclosure,
never the other way around.

The worker threads only ever take shard *read* locks (sweeps never
mutate), so the pool cannot participate in a lock cycle with the
engine's write paths. Under CPython's GIL the pool buys wall-clock
overlap only where the sweep releases the GIL, which is why the
disclosure tier's default stays the in-thread sequential scatter; the
router exists so a free-threaded build, or a deployment whose shards
live behind real sockets, can slot in a concurrent scatter without the
disclosure tier changing at all.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.obs.registry import MetricsRegistry, MetricsScope

T = TypeVar("T")
R = TypeVar("R")


class ShardRouter:
    """Dispatches per-shard jobs onto a bounded worker pool.

    Args:
        max_workers: pool size; sized to the shard count (more workers
            than shards is wasted, fewer serialises some shards).
        scope: metrics scope for the router counters (``scatters`` =
            multi-shard fan-outs, ``jobs`` = per-shard jobs dispatched).
            A private ``router.``-scoped registry is created if omitted.

    Use as a context manager (or call :meth:`shutdown`) to reclaim the
    worker threads deterministically.
    """

    def __init__(
        self, max_workers: int = 4, *, scope: Optional[MetricsScope] = None
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="shard-router"
        )
        if scope is None:
            scope = MetricsRegistry().scope("router.")
        self.metrics = scope
        self._c_scatters = scope.counter("scatters")
        self._c_jobs = scope.counter("jobs")

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply *fn* to every item, results in item order.

        Single-item scatters run inline — there is nothing to overlap
        and the hand-off would only add latency. Every job runs to
        completion even when one fails (no job may outlive the call, the
        shard locks it holds must be released); the first failure in
        item order — typically a degraded shard's
        :class:`~repro.errors.ShardDegraded` — is then re-raised.
        """
        self._c_jobs.inc(len(items))
        if len(items) <= 1:
            return [fn(item) for item in items]
        self._c_scatters.inc()
        futures: List[Future] = [self._pool.submit(fn, item) for item in items]
        results: List[R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # gather everything, then raise
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def stats(self) -> dict:
        """Scatter counters, field-identical to ``metrics.snapshot()``."""
        return {
            "scatters": self._c_scatters.value,
            "jobs": self._c_jobs.value,
        }
