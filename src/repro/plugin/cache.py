"""Fingerprint-keyed decision cache (paper §6.2).

"Requests are served quickly because one keystroke typically does not
alter the winnowing fingerprint of a paragraph, permitting BrowserFlow
to reuse its previous response."

The cache key is (service, segment, fingerprint-hash-set, model
version): a keystroke that leaves the winnowed hashes unchanged hits the
cache; any change to the fingerprint — or any new observation in the
disclosure databases — misses.

The cache is shared by every client of the lookup service, so all
operations are guarded by one mutex (an LRU update mutates the ordered
dict even on reads, so a reader–writer split would buy nothing here).
``evictions`` counts entries dropped for *capacity* only — version
misses leave their stale entries in place until LRU pressure removes
them — so ``stats()`` consumers can tell an undersized cache from a
fast-moving model version.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import FrozenSet, Hashable, Optional, Tuple


class DecisionCache:
    """A bounded, thread-safe LRU map from decision keys to decisions."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._mutex = threading.RLock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Entries dropped because the cache was full (capacity misses),
        #: as opposed to entries orphaned by a model-version bump.
        self.evictions = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @staticmethod
    def key(
        service_id: str, segment_id: str, hashes: FrozenSet[int], version: int
    ) -> Tuple:
        return (service_id, segment_id, hashes, version)

    def get(self, key: Hashable) -> Optional[object]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: object) -> None:
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
