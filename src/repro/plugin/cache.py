"""Fingerprint-keyed decision cache (paper §6.2).

"Requests are served quickly because one keystroke typically does not
alter the winnowing fingerprint of a paragraph, permitting BrowserFlow
to reuse its previous response."

The cache key is (service, segment, fingerprint-hash-set, model
version): a keystroke that leaves the winnowed hashes unchanged hits the
cache; any change to the fingerprint — or any new observation in the
disclosure databases — misses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Hashable, Optional, Tuple


class DecisionCache:
    """A bounded LRU map from decision keys to decisions."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        service_id: str, segment_id: str, hashes: FrozenSet[int], version: int
    ) -> Tuple:
        return (service_id, segment_id, hashes, version)

    def get(self, key: Hashable) -> Optional[object]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
