"""Fingerprint-keyed decision cache (paper §6.2).

"Requests are served quickly because one keystroke typically does not
alter the winnowing fingerprint of a paragraph, permitting BrowserFlow
to reuse its previous response."

The cache key is (service, segment, fingerprint-hash-set, model
version): a keystroke that leaves the winnowed hashes unchanged hits the
cache; any change to the fingerprint — or any new observation in the
disclosure databases — misses.

The cache is shared by every client of the lookup service, so all
operations are guarded by one mutex (an LRU update mutates the ordered
dict even on reads, so a reader–writer split would buy nothing here).
``evictions`` counts entries dropped for *capacity* only — version
misses leave their stale entries in place until LRU pressure removes
them — so ``stats()`` consumers can tell an undersized cache from a
fast-moving model version.

The hit/miss/eviction counters live in a
:class:`~repro.obs.registry.MetricsRegistry` scope (conventionally
``decision_cache.``); the public ``hits``/``misses``/``evictions``
attributes are thin views over those instruments. Increments happen
under the cache mutex, so they are exact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import FrozenSet, Hashable, Optional, Tuple

from repro.obs.registry import MetricsRegistry, MetricsScope


class DecisionCache:
    """A bounded, thread-safe LRU map from decision keys to decisions.

    Args:
        capacity: maximum entries before LRU eviction.
        scope: metrics scope for the cache counters. A private registry
            under the conventional ``decision_cache.`` prefix is created
            when omitted; owners sharing one registry (the plug-in, the
            lookup server) pass their own scope.
    """

    def __init__(
        self, capacity: int = 4096, *, scope: Optional[MetricsScope] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._mutex = threading.RLock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        if scope is None:
            scope = MetricsRegistry().scope("decision_cache.")
        self.metrics = scope
        self._hits = scope.counter("hits")
        self._misses = scope.counter("misses")
        #: Entries dropped because the cache was full (capacity misses),
        #: as opposed to entries orphaned by a model-version bump.
        self._evictions = scope.counter("evictions")
        scope.gauge("size", fn=lambda: len(self._entries))

    # Legacy public counter attributes, now views over the registry.

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @staticmethod
    def key(
        service_id: str, segment_id: str, hashes: FrozenSet[int], version: int
    ) -> Tuple:
        return (service_id, segment_id, hashes, version)

    def get(self, key: Hashable) -> Optional[object]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: Hashable, value: object) -> None:
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
