"""Bounded caches for the per-check hot path (paper §6.2, DESIGN.md §13).

"Requests are served quickly because one keystroke typically does not
alter the winnowing fingerprint of a paragraph, permitting BrowserFlow
to reuse its previous response."

Two caches share one LRU core here:

* :class:`DecisionCache` — verdict memoisation. The classic key is
  (service, segment, fingerprint-hash-set, model version); the
  delta-aware pipeline keys on ``(service, segment, fingerprint-set
  digest, engine version epoch)`` instead (see
  :func:`fingerprint_set_digest` and ``DisclosureEngine.version_epoch``)
  so the sharded tier invalidates per shard rather than globally.
* :class:`FingerprintCache` — content-addressed fingerprint
  memoisation keyed by a digest of the *raw* paragraph text, so a
  repeated paste of the same secret never re-normalises or re-hashes.
  Raw text (not normalised text) is deliberate: normalisation is
  span-lossy — ``"ab c"`` and ``"a bc"`` normalise identically but
  fingerprint to different original-offset spans — and verdict spans
  feed enforcement highlighting, so the key must distinguish them.

Each cache is shared by every client of its lookup service, so all
operations are guarded by one mutex (an LRU update mutates the ordered
dict even on reads, so a reader–writer split would buy nothing here).
``evictions`` counts entries dropped for *capacity* only — version
misses leave their stale entries in place until LRU pressure removes
them — so ``stats()`` consumers can tell an undersized cache from a
fast-moving model version.

The hit/miss/eviction counters live in a
:class:`~repro.obs.registry.MetricsRegistry` scope (conventionally
``decision_cache.`` / ``fingerprint.cache.``); the public
``hits``/``misses``/``evictions`` attributes are thin views over those
instruments. Increments happen under the cache mutex, so they are
exact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from hashlib import blake2b
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry, MetricsScope


def text_digest(text: str) -> bytes:
    """16-byte content address of a raw paragraph text."""
    return blake2b(text.encode("utf-8"), digest_size=16).digest()


def fingerprint_set_digest(hash_sets: Sequence[Iterable[int]]) -> bytes:
    """16-byte digest of an ordered sequence of fingerprint hash sets.

    Replaces the tuple-of-frozensets cache key component: equality
    checks and storage touch 16 bytes instead of every hash value. Each
    set is serialised sorted (frozenset iteration order is not
    canonical) with an out-of-band separator, so ``[{a}, {b}]`` and
    ``[{a, b}]`` digest differently. Collisions are 2^-128 territory —
    negligible against the model's own 32-bit fingerprint collisions.
    """
    digest = blake2b(digest_size=16)
    update = digest.update
    for hashes in hash_sets:
        for value in sorted(hashes):
            update(value.to_bytes(8, "little"))
        update(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff")
    return digest.digest()


class LRUCache:
    """A bounded, thread-safe LRU map with registry-backed counters.

    The shared core of :class:`DecisionCache` and
    :class:`FingerprintCache`: ``get`` promotes on hit and counts
    misses, ``put`` inserts at the MRU end and evicts from the LRU end,
    and every counter lives in a metrics scope so one snapshot covers
    the whole lookup path.

    Args:
        capacity: maximum entries before LRU eviction.
        scope: metrics scope for the cache counters. A private registry
            under *default_prefix* is created when omitted; owners
            sharing one registry (the plug-in, the lookup server) pass
            their own scope.
    """

    #: Scope prefix used when no scope is passed; subclasses override.
    default_prefix = "lru_cache."

    def __init__(
        self, capacity: int = 4096, *, scope: Optional[MetricsScope] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._mutex = threading.RLock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        if scope is None:
            scope = MetricsRegistry().scope(self.default_prefix)
        self.metrics = scope
        self._hits = scope.counter("hits")
        self._misses = scope.counter("misses")
        #: Entries dropped because the cache was full (capacity misses),
        #: as opposed to entries orphaned by a model-version bump.
        self._evictions = scope.counter("evictions")
        scope.gauge("size", fn=lambda: len(self._entries))

    # Legacy public counter attributes, now views over the registry.

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: Hashable, value: object) -> None:
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DecisionCache(LRUCache):
    """LRU map from decision keys to flow decisions (paper §6.2).

    The cache key is (service, segment, fingerprint-hash-set, model
    version): a keystroke that leaves the winnowed hashes unchanged hits
    the cache; any change to the fingerprint — or any new observation in
    the disclosure databases — misses. The delta-aware lookup path keys
    on a digest + per-shard epoch instead (module docstring); both key
    shapes share this cache, they simply never collide.
    """

    default_prefix = "decision_cache."

    @staticmethod
    def key(
        service_id: str, segment_id: str, hashes: FrozenSet[int], version: int
    ) -> Tuple:
        return (service_id, segment_id, hashes, version)


class FingerprintCache(LRUCache):
    """Content-addressed map from raw-text digests to fingerprints.

    Fingerprints are pure functions of (text, config) and every cache
    instance serves exactly one fingerprinter config, so the raw-text
    digest alone is a sufficient key. Stored values are the engine's
    immutable :class:`~repro.fingerprint.fingerprint.Fingerprint`
    objects — sharing them between hits is safe.
    """

    default_prefix = "fingerprint.cache."

    def fingerprint(self, fingerprinter, text: str):
        """Return the (possibly cached) fingerprint of *text*.

        Computation happens outside the mutex: two racing misses both
        compute, and last-put wins — acceptable for an idempotent value,
        and it keeps fingerprinting off the lock's critical section.
        """
        key = text_digest(text)
        cached = self.get(key)
        if cached is not None:
            return cached
        computed = fingerprinter.fingerprint(text)
        self.put(key, computed)
        return computed
