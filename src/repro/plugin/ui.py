"""User-facing disclosure feedback (paper Figure 2).

"BrowserFlow informs the user of a cloud service about the result of
the disclosure decision by changing the background colour of an affected
text segment ... the paragraph is marked with a red background when it
discloses sensitive data from another source."

The highlighter writes a ``data-bf-status`` attribute and a background
style onto paragraph elements, which is what a content script would do;
tests assert on the attribute.
"""

from __future__ import annotations

from typing import List, Optional

from repro.browser.dom import Element

STATUS_ATTR = "data-bf-status"
STATUS_VIOLATION = "violation"
STATUS_CLEAR = "ok"
VIOLATION_STYLE = "background-color: #ffcccc"


class Highlighter:
    """Applies and clears violation marks on DOM elements."""

    def mark_violation(self, element: Element, reason: Optional[str] = None) -> None:
        element.set_attribute(STATUS_ATTR, STATUS_VIOLATION)
        element.set_attribute("style", VIOLATION_STYLE)
        if reason:
            element.set_attribute("title", reason)

    def mark_clear(self, element: Element) -> None:
        if element.get_attribute(STATUS_ATTR) is not None:
            element.set_attribute(STATUS_ATTR, STATUS_CLEAR)
            element.set_attribute("style", "")

    @staticmethod
    def status_of(element: Element) -> Optional[str]:
        return element.get_attribute(STATUS_ATTR)

    @staticmethod
    def is_marked(element: Element) -> bool:
        return element.get_attribute(STATUS_ATTR) == STATUS_VIOLATION

    @staticmethod
    def marked_elements(root: Element) -> List[Element]:
        return root.find_all(
            lambda el: el.get_attribute(STATUS_ATTR) == STATUS_VIOLATION
        )
