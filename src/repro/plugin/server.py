"""The shared lookup service (paper §5, Fig. 1, §6.2).

The paper deploys one hash database per enterprise, consulted by every
user's plug-in on every upload and keystroke. This module is that
deployment shape in miniature: a :class:`LookupServer` fronts one shared
:class:`~repro.plugin.lookup.PolicyLookup` (and therefore one shared
engine, guarded by its reader–writer lock) for N concurrent clients,
and a :class:`LookupClient` gives each simulated plug-in the
availability machinery §6.2 demands — a per-request timeout so a slow
lookup cannot wedge the editor, bounded retry with exponential backoff,
and an explicit *degradation mode* for when the service stays down:

* **fail-closed** — the upload is blocked: the degraded decision is
  disallowed and carries a synthetic ``granularity="lookup"`` violation,
  so :class:`~repro.plugin.enforcement.PolicyEnforcement` blocks it in
  ENFORCE mode (and refuses to "encrypt" text it never saw in ENCRYPT
  mode). An audited :class:`~repro.tdm.audit.DegradationEvent` records
  the denial.
* **fail-open** — the upload is allowed with a logged warning and the
  same audit event; the admin has chosen availability over containment.

Which way to fail is an admin choice exactly like the plug-in mode:
advisory deployments pair naturally with fail-open, enforcing ones with
fail-closed (DESIGN.md §8 has the decision table).

Faults are injected deterministically through a
:class:`~repro.util.faults.FaultInjector`; latency faults are *compared*
against the client's timeout budget rather than slept, so fault tests
assert exact retry/timeout counters and run in microseconds.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.disclosure.engine import DisclosureTracker
from repro.errors import (
    DisclosureError,
    LookupRejected,
    LookupTimeout,
    LookupUnavailable,
    ShardDegraded,
    StandbyGap,
)
from repro.fingerprint import FingerprintConfig
from repro.obs.registry import MetricsRegistry, MetricsScope
from repro.plugin.lookup import BatchItem, PolicyLookup
from repro.tdm.audit import DegradationEvent
from repro.tdm.labels import Label, SegmentLabel
from repro.tdm.model import FlowDecision, FlowViolation, Suppression
from repro.util.clock import Clock, LogicalClock
from repro.util.faults import Fault, FaultInjector

logger = logging.getLogger(__name__)

#: Granularity marker on the synthetic violation of a fail-closed
#: degraded decision; enforcement treats it as unencryptable.
DEGRADED_GRANULARITY = "lookup"

#: Tag name reported as "offending" by a fail-closed degraded decision.
UNAVAILABLE_TAG = "lookup-unavailable"


class FailureMode(enum.Enum):
    """What a client does when the lookup service stays unavailable."""

    FAIL_OPEN = "fail-open"
    FAIL_CLOSED = "fail-closed"


@dataclass(frozen=True)
class LookupOutcome:
    """One client request's result, degraded or not.

    Attributes:
        decision: the policy decision handed to enforcement. For a
            degraded request this is synthesised by the failure mode,
            not computed from the databases.
        degraded: True when every attempt failed and the failure mode
            decided the outcome.
        attempts: lookup attempts made (1 on clean success).
        retries: attempts minus one, capped by the client's budget.
        faults: per-failed-attempt fault descriptions in attempt order,
            e.g. ``("timeout", "http-503")``.
        waited: backoff delays (seconds) applied between attempts.
        latency: simulated service latency of the successful attempt
            (0.0 for degraded requests).
    """

    decision: FlowDecision
    degraded: bool
    attempts: int
    retries: int
    faults: Tuple[str, ...]
    waited: Tuple[float, ...]
    latency: float


class LookupServer:
    """One shared policy-lookup service for many concurrent clients.

    Thread safety comes from the layers below: the shared
    :class:`PolicyLookup` holds the model's reader–writer lock across
    each decision (queries share, observations exclude) and the decision
    cache carries its own mutex. The server adds fault injection at the
    request boundary and request counters — registry counters are
    already thread-safe, so the hot request path takes no server-level
    lock at all (the counters are exact when each is owned by one
    logical stream, monotonic-approximate under contention, same
    contract as the engine's query counters).

    Args:
        lookup: the shared lookup module (one per enterprise).
        faults: optional deterministic fault source; healthy if omitted.
        clock: timestamp source for audit events; kept separate from the
            engine's observation clock so degradations do not perturb
            first-seen timestamps.
    """

    def __init__(
        self,
        lookup: PolicyLookup,
        *,
        faults: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self._lookup = lookup
        self._faults = faults
        self._clock = clock or LogicalClock()
        #: The model's registry (shared down the whole stack); server
        #: request counters register under ``server.`` beside the engine
        #: and decision-cache instruments.
        self.registry = lookup.model.registry
        self.metrics = self.registry.scope("server.")
        self._counters = {
            name: self.metrics.counter(name)
            for name in (
                "requests",
                "served",
                "observes",
                "dropped",
                "rejected",
                "timed_out",
                "batches",
                "batch_items",
                "shard_degraded",
            )
        }
        self._h_handle = self.metrics.histogram("handle_seconds")
        # Items-per-batch distribution; count buckets, not latency ones.
        self._h_batch_size = self.metrics.histogram(
            "batch_size", (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
        )

    @property
    def lookup(self) -> PolicyLookup:
        return self._lookup

    def now(self) -> float:
        return self._clock.now()

    def _count(self, name: str, delta: int = 1) -> None:
        self._counters[name].inc(delta)

    def _shard_fault(self, exc: ShardDegraded, timeout: float) -> Exception:
        """Translate a degraded shard into the equivalent network fault.

        A shard that dropped its part of the scatter looks to the client
        like a timed-out request; a shard that refused looks like a
        backend 5xx. Either way the client's ordinary retry and
        fail-open/fail-closed machinery takes over — only requests whose
        target hashes actually route to the degraded shard ever get here.
        """
        self._count("shard_degraded")
        if exc.kind == "error":
            self._count("rejected")
            return LookupRejected(exc.status)
        self._count("dropped")
        return LookupTimeout(timeout, kind=f"shard-{exc.kind}")

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------

    def handle(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        timeout: float,
        suppressions: Optional[Mapping[str, Sequence[Suppression]]] = None,
        fingerprints: Optional[Sequence] = None,
    ) -> Tuple[FlowDecision, float]:
        """Answer one lookup request; returns (decision, latency).

        The latency is the injected service latency in seconds (0.0 when
        healthy). Raises :class:`LookupTimeout` when the request is
        dropped or its injected latency exceeds *timeout*, and
        :class:`LookupRejected` for an injected backend 5xx — in both
        cases *before* touching the shared engine, like a real frontend
        shedding load. *fingerprints*, when present, carries the
        client's precomputed per-paragraph fingerprints (the §13 delta
        path); on a real wire this would ship the winnowed hash values,
        which are a fraction of the text's size.
        """
        self._count("requests")
        fault = self._faults.next_fault() if self._faults is not None else Fault.none()
        if fault.kind == "drop":
            self._count("dropped")
            raise LookupTimeout(timeout, kind="drop")
        if fault.kind == "error":
            self._count("rejected")
            raise LookupRejected(fault.status)
        if fault.kind == "latency" and fault.latency > timeout:
            self._count("timed_out")
            raise LookupTimeout(timeout, kind="latency")
        clock = self.registry.clock
        start = clock.now()
        try:
            decision = self._lookup.lookup(
                service_id,
                doc_id,
                paragraphs,
                suppressions=suppressions,
                fingerprints=fingerprints,
            )
        except ShardDegraded as exc:
            raise self._shard_fault(exc, timeout) from exc
        self._h_handle.observe(clock.now() - start)
        self._count("served")
        return decision, fault.latency

    def handle_batch(
        self,
        service_id: str,
        items: Sequence[BatchItem],
        *,
        timeout: float,
    ) -> Tuple[List[FlowDecision], float]:
        """Answer many lookups in one round trip; (decisions, latency).

        The batch is *one* request on the wire: one fault decision (and
        so one injection point) covers all items — a dropped or refused
        batch fails every item together, and an injected latency is paid
        once rather than per item. ``served`` counts decisions, so for
        batch traffic it exceeds ``requests`` (round trips);
        ``batch_items`` and the ``batch_size`` histogram record the
        amortisation factor.
        """
        self._count("requests")
        self._count("batches")
        self._count("batch_items", len(items))
        self._h_batch_size.observe(float(len(items)))
        fault = self._faults.next_fault() if self._faults is not None else Fault.none()
        if fault.kind == "drop":
            self._count("dropped")
            raise LookupTimeout(timeout, kind="drop")
        if fault.kind == "error":
            self._count("rejected")
            raise LookupRejected(fault.status)
        if fault.kind == "latency" and fault.latency > timeout:
            self._count("timed_out")
            raise LookupTimeout(timeout, kind="latency")
        clock = self.registry.clock
        start = clock.now()
        try:
            decisions = self._lookup.lookup_batch(service_id, items)
        except ShardDegraded as exc:
            raise self._shard_fault(exc, timeout) from exc
        self._h_handle.observe(clock.now() - start)
        self._count("served", len(items))
        return decisions, fault.latency

    def observe(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
    ) -> None:
        """Record text observed in a service (exclusive write path)."""
        self._count("observes")
        self._lookup.model.observe(service_id, doc_id, paragraphs)

    def stats(self) -> Dict[str, object]:
        """Server request counters + injector + lookup/engine/lock stats.

        A thin view over the shared registry (plus the injector's own
        scope): every field reads the same instrument a snapshot would.
        """
        combined: Dict[str, object] = {
            f"server_{name}": counter.value
            for name, counter in self._counters.items()
        }
        if self._faults is not None:
            combined.update(self._faults.stats())
        combined.update(self._lookup.stats())
        return combined


class LookupClient:
    """One simulated plug-in's view of the shared lookup service.

    Args:
        server: the shared :class:`LookupServer`.
        timeout: per-request latency budget in seconds (§6.2).
        max_retries: additional attempts after the first failure.
        backoff: initial retry delay in seconds.
        backoff_multiplier: exponential backoff factor.
        failure_mode: fail-open or fail-closed degradation.
        sleep: optional callable invoked with each backoff delay; tests
            pass a recorder, production could pass ``time.sleep``. By
            default delays are recorded in the outcome but not slept,
            keeping simulations deterministic and fast.
        scope: metrics scope for the client counters. Each client gets a
            *private* registry under ``client.`` when omitted — clients
            must not share instruments or their exact per-client
            counters would merge; a load driver that wants N clients in
            one registry passes distinct scopes (``client.0.`` …).
    """

    def __init__(
        self,
        server: LookupServer,
        *,
        timeout: float = 0.2,
        max_retries: int = 2,
        backoff: float = 0.05,
        backoff_multiplier: float = 2.0,
        failure_mode: FailureMode = FailureMode.FAIL_CLOSED,
        sleep=None,
        scope: Optional[MetricsScope] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 0 or backoff_multiplier < 1.0:
            raise ValueError("backoff must be >= 0 and multiplier >= 1")
        self._server = server
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff = backoff
        self._backoff_multiplier = backoff_multiplier
        self.failure_mode = failure_mode
        self._sleep = sleep
        if scope is None:
            scope = MetricsRegistry().scope("client.")
        self.metrics = scope
        self._counters = {
            name: scope.counter(name)
            for name in (
                "requests",
                "attempts",
                "retries",
                "timeouts",
                "server_errors",
                "degraded",
                "fail_open_allowed",
                "fail_closed_blocked",
            )
        }

    @property
    def timeout(self) -> float:
        return self._timeout

    def _count(self, name: str, delta: int = 1) -> None:
        self._counters[name].inc(delta)

    def lookup(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        suppressions: Optional[Mapping[str, Sequence[Suppression]]] = None,
        fingerprints: Optional[Sequence] = None,
    ) -> LookupOutcome:
        """Resolve a decision with retries; degrade if the service stays down."""
        self._count("requests")
        faults: List[str] = []
        waited: List[float] = []
        for attempt in range(1, self._max_retries + 2):
            self._count("attempts")
            try:
                decision, latency = self._server.handle(
                    service_id,
                    doc_id,
                    paragraphs,
                    timeout=self._timeout,
                    suppressions=suppressions,
                    fingerprints=fingerprints,
                )
            except LookupTimeout:
                self._count("timeouts")
                faults.append("timeout")
            except LookupRejected as exc:
                self._count("server_errors")
                faults.append(f"http-{exc.status}")
            else:
                return LookupOutcome(
                    decision=decision,
                    degraded=False,
                    attempts=attempt,
                    retries=attempt - 1,
                    faults=tuple(faults),
                    waited=tuple(waited),
                    latency=latency,
                )
            if attempt <= self._max_retries:
                delay = self._backoff * self._backoff_multiplier ** (attempt - 1)
                waited.append(delay)
                self._count("retries")
                if self._sleep is not None:
                    self._sleep(delay)
        return self._degrade(service_id, doc_id, faults, waited)

    def _degrade(
        self,
        service_id: str,
        doc_id: str,
        faults: List[str],
        waited: List[float],
    ) -> LookupOutcome:
        attempts = self._max_retries + 1
        self._count("degraded")
        error = LookupUnavailable(service_id, attempts)
        self._server.lookup.model.audit.record(
            DegradationEvent(
                kind="lookup_unavailable",
                failure_mode=self.failure_mode.value,
                service_id=service_id,
                doc_id=doc_id,
                attempts=attempts,
                faults=tuple(faults),
                timestamp=self._server.now(),
            )
        )
        if self.failure_mode is FailureMode.FAIL_OPEN:
            self._count("fail_open_allowed")
            logger.warning(
                "fail-open: allowing upload of %r to %r without a policy "
                "decision (%s)", doc_id, service_id, error
            )
            decision = FlowDecision(service_id=service_id, allowed=True, labels={})
        else:
            self._count("fail_closed_blocked")
            decision = FlowDecision(
                service_id=service_id,
                allowed=False,
                violations=(
                    FlowViolation(
                        segment_id=doc_id,
                        label=SegmentLabel(),
                        offending=Label.of(UNAVAILABLE_TAG),
                        granularity=DEGRADED_GRANULARITY,
                    ),
                ),
                labels={},
            )
        return LookupOutcome(
            decision=decision,
            degraded=True,
            attempts=attempts,
            retries=attempts - 1,
            faults=tuple(faults),
            waited=tuple(waited),
            latency=0.0,
        )

    def stats(self) -> Dict[str, int]:
        """Exact per-client request/retry/timeout/degradation counters.

        A thin view over the client's registry scope, field-identical to
        ``metrics.snapshot()`` by construction. Registry counters are
        thread-safe on their own, so no client-level lock is taken —
        each client's counters are exact because a client is driven by
        one plug-in thread.
        """
        return {name: counter.value for name, counter in self._counters.items()}


class BatchLookupClient(LookupClient):
    """A lookup client that carries many items per round trip.

    :meth:`lookup_batch` resolves N ``(doc_id, paragraphs)`` items with
    the retry/degradation machinery applied to the *batch*: one timeout
    budget, one bounded retry loop, one fault-injection point per wire
    attempt. When the service stays down the whole batch degrades
    together, but the audit trail stays per item — each item records its
    own :class:`~repro.tdm.audit.DegradationEvent` and fail-open /
    fail-closed decision, exactly as if it had been looked up alone.

    Counter semantics: ``requests`` counts *items* (so it remains
    comparable with a single-request client doing the same work),
    ``batches`` counts round trips, and ``attempts``/``retries``/
    ``timeouts``/``server_errors`` count wire-level events as before.
    """

    def __init__(self, server: LookupServer, **kwargs) -> None:
        super().__init__(server, **kwargs)
        self._counters["batches"] = self.metrics.counter("batches")

    def lookup_batch(
        self, service_id: str, items: Sequence[BatchItem]
    ) -> List[LookupOutcome]:
        """Resolve decisions for all *items*; one outcome per item."""
        self._count("batches")
        self._count("requests", len(items))
        faults: List[str] = []
        waited: List[float] = []
        for attempt in range(1, self._max_retries + 2):
            self._count("attempts")
            try:
                decisions, latency = self._server.handle_batch(
                    service_id, items, timeout=self._timeout
                )
            except LookupTimeout:
                self._count("timeouts")
                faults.append("timeout")
            except LookupRejected as exc:
                self._count("server_errors")
                faults.append(f"http-{exc.status}")
            else:
                return [
                    LookupOutcome(
                        decision=decision,
                        degraded=False,
                        attempts=attempt,
                        retries=attempt - 1,
                        faults=tuple(faults),
                        waited=tuple(waited),
                        latency=latency,
                    )
                    for decision in decisions
                ]
            if attempt <= self._max_retries:
                delay = self._backoff * self._backoff_multiplier ** (attempt - 1)
                waited.append(delay)
                self._count("retries")
                if self._sleep is not None:
                    self._sleep(delay)
        return [
            self._degrade(service_id, doc_id, list(faults), list(waited))
            for doc_id, _paragraphs in items
        ]


class StandbyLookupServer:
    """A warm replica caught up by log shipping, ready for failover.

    The fail-open/fail-closed machinery above decides what a *client*
    does while the lookup service is down; this class is the other half
    of that availability story — a standby that makes "down" short. It
    holds its own dual-granularity
    :class:`~repro.disclosure.engine.DisclosureTracker` and applies the
    primary's WAL records (pulled through a
    :class:`~repro.disclosure.wal.LogShipper`) with their recorded
    timestamps, so first-seen ownership on the replica is bit-identical
    to the primary's. Because replay covers exactly the records a
    recovery of the primary would replay, the standby's Algorithm 1
    verdicts equal the recovered primary's at every catch-up point.

    Serving is read-only until :meth:`promote`: scans answer from the
    replica's databases under the same fault/timeout envelope as
    :meth:`LookupServer.handle`, so failover drills reuse the client
    machinery unchanged. ``suppress`` records do not change engine
    state; they accumulate on :attr:`shipped_suppressions` so the
    primary's declassification audit obligation survives the failover.

    Args:
        shipper: incremental reader of the primary's WAL directory.
        config: fingerprint config; must match the primary's.
        faults: optional fault source for the standby's own serving
            path (a standby can be degraded too).
        registry: metrics registry; standby instruments live under
            ``standby.``.
    """

    def __init__(
        self,
        shipper,
        *,
        config: Optional[FingerprintConfig] = None,
        faults: Optional[FaultInjector] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._shipper = shipper
        self._faults = faults
        self.registry = registry or MetricsRegistry()
        self.metrics = self.registry.scope("standby.")
        self.tracker = DisclosureTracker(config, registry=self.registry)
        self.shipped_suppressions: List[dict] = []
        self._max_ts = 0.0
        self._promoted = False
        self._counters = {
            name: self.metrics.counter(name)
            for name in (
                "catchups",
                "records_applied",
                "records_skipped",
                "suppressions_shipped",
                "gaps_detected",
                "scans",
                "dropped",
                "rejected",
                "timed_out",
            )
        }
        self.metrics.gauge("applied_lsn", fn=lambda: self.applied_lsn)
        self.metrics.gauge(
            "promoted", fn=lambda: 1.0 if self._promoted else 0.0
        )

    @property
    def applied_lsn(self) -> int:
        """LSN of the last shipped record this replica has applied."""
        return self._shipper.cursor

    @property
    def promoted(self) -> bool:
        return self._promoted

    def _resolve(self, kind: str):
        if kind == "document":
            return self.tracker.documents
        return self.tracker.paragraphs

    def catch_up(self) -> int:
        """Pull and apply the primary's new records; returns how many.

        Idempotent and incremental — each call applies only records
        beyond the shipper's cursor, and the cursor advances one record
        at a time *as records apply*: if an apply raises mid-batch, the
        failed record and everything after it are still beyond the
        cursor and are retried on the next poll, never silently skipped.
        A torn record at the primary's tail (an append in flight, or
        the debris of its death) is not shipped; if the append completes
        it arrives on the next poll.

        A shipped ``compact`` record whose ``snapshot_lsn`` is beyond
        the last record this replica applied means the primary rotated
        its logs before we polled the folded records — they exist only
        in the primary's (unshipped) snapshot, so the replica can never
        catch up from the log alone. That hole raises
        :class:`~repro.errors.StandbyGap` rather than letting the
        replica diverge silently; the operator re-seeds the standby.
        """
        if self._promoted:
            raise DisclosureError(
                "standby has been promoted; it no longer follows the log"
            )
        # Deferred import: wal pulls in plugin.crypto, which would
        # close an import cycle through this package's __init__.
        from repro.disclosure.wal import replay_records

        prev_cursor = self._shipper.cursor
        records = self._shipper.poll()
        applied = 0
        skipped = 0
        # poll() advanced the cursor past the whole batch; rewind to the
        # pre-poll position and walk it forward per record, so the
        # cursor always names the last record actually applied.
        self._shipper.cursor = prev_cursor
        for record in records:
            if record["op"] == "compact":
                snapshot_lsn = int(record.get("snapshot_lsn", 0))
                if snapshot_lsn > self._shipper.cursor:
                    self._counters["gaps_detected"].inc()
                    raise StandbyGap(
                        f"primary compacted through lsn {snapshot_lsn} but "
                        f"this standby only applied lsn "
                        f"{self._shipper.cursor}; the folded records were "
                        "never shipped — re-seed the standby from the "
                        "primary's snapshot"
                    )
            ts = record.get("ts")
            if ts is not None:
                self._max_ts = max(self._max_ts, ts)
            if record["op"] == "suppress":
                self.shipped_suppressions.append(record)
                self._counters["suppressions_shipped"].inc()
                skipped += 1
            else:
                one_applied, one_skipped = replay_records(
                    [record], self._resolve
                )
                applied += one_applied
                skipped += one_skipped
            self._shipper.cursor = record["lsn"]
        self._counters["catchups"].inc()
        self._counters["records_applied"].inc(applied)
        self._counters["records_skipped"].inc(skipped)
        return applied

    # ------------------------------------------------------------------
    # Serving (read-only until promoted)
    # ------------------------------------------------------------------

    def check_document(self, doc_id: str, paragraphs: Sequence[Tuple[str, str]]):
        """Algorithm 1 at both granularities against the replica."""
        self._counters["scans"].inc()
        return self.tracker.check_document(doc_id, paragraphs)

    def handle_scan(
        self,
        text: str,
        *,
        timeout: float,
        kind: str = "paragraph",
        exclude_doc: Optional[str] = None,
    ):
        """One Algorithm 1 scan under the standard fault envelope.

        Same drop/error/latency-vs-timeout semantics as
        :meth:`LookupServer.handle`, so a failover driver can point the
        ordinary retry/degradation client machinery at the standby.
        Returns ``(DisclosureReport, injected_latency)``.
        """
        fault = (
            self._faults.next_fault()
            if self._faults is not None
            else Fault.none()
        )
        if fault.kind == "drop":
            self._counters["dropped"].inc()
            raise LookupTimeout(timeout, kind="drop")
        if fault.kind == "error":
            self._counters["rejected"].inc()
            raise LookupRejected(fault.status)
        if fault.kind == "latency" and fault.latency > timeout:
            self._counters["timed_out"].inc()
            raise LookupTimeout(timeout, kind="latency")
        self._counters["scans"].inc()
        engine = self._resolve(kind)
        fingerprint = engine.fingerprint(text)
        report = engine.disclosing_sources(
            fingerprint=fingerprint, exclude_doc=exclude_doc
        )
        return report, fault.latency

    def promote(self, wal=None) -> DisclosureTracker:
        """Stop following the log and become the writable primary.

        Resumes the tracker's logical clock strictly past every replayed
        timestamp (so post-failover observations cannot steal
        authoritative ownership from replicated ones) and, when *wal*
        (a :class:`~repro.disclosure.wal.WALSet`) is given, attaches a
        journal so the promoted primary's own mutations are durable —
        and shippable to the *next* standby.
        """
        if self._promoted:
            raise DisclosureError("standby already promoted")
        self._promoted = True
        self.tracker.resume_clock(self._max_ts)
        if wal is not None:
            from repro.disclosure.wal import EngineJournal

            journal = EngineJournal(wal)
            self.tracker.paragraphs.attach_journal(journal)
            self.tracker.documents.attach_journal(journal)
        return self.tracker

    def stats(self) -> Dict[str, object]:
        combined: Dict[str, object] = {
            f"standby_{name}": counter.value
            for name, counter in self._counters.items()
        }
        combined["standby_applied_lsn"] = self.applied_lsn
        combined["standby_promoted"] = self._promoted
        return combined
