"""Upload encryption fallback (paper §3, §5: "or BrowserFlow intercepts
the data transfer ... e.g. by encrypting the data before transmission").

A deterministic stream cipher built from SHA-256 in counter mode. Not a
novel construction — the point in BrowserFlow is that the *service*
receives no plaintext, while the client (which holds the key) can still
round-trip its own data. Ciphertext is hex-armoured with a marker prefix
so tests and services can recognise protected payloads.
"""

from __future__ import annotations

import hashlib
import hmac

MARKER = "bf-enc:"


class UploadCipher:
    """SHA-256-CTR stream cipher with a per-deployment secret key."""

    def __init__(self, key: str) -> None:
        if not key:
            raise ValueError("cipher key must be non-empty")
        self._key = key.encode("utf-8")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hmac.new(
                self._key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
            ).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])

    def encrypt(self, plaintext: str) -> str:
        """Encrypt to a marked, hex-armoured string.

        The nonce is derived from the plaintext digest, making encryption
        deterministic: re-encrypting identical text yields identical
        ciphertext, so services that deduplicate content still work.
        """
        data = plaintext.encode("utf-8")
        nonce = hashlib.sha256(self._key + data).digest()[:12]
        stream = self._keystream(nonce, len(data))
        cipher = bytes(a ^ b for a, b in zip(data, stream))
        return MARKER + nonce.hex() + ":" + cipher.hex()

    def decrypt(self, ciphertext: str) -> str:
        if not self.is_encrypted(ciphertext):
            raise ValueError("not an encrypted payload")
        payload = ciphertext[len(MARKER):]
        nonce_hex, _, cipher_hex = payload.partition(":")
        nonce = bytes.fromhex(nonce_hex)
        cipher = bytes.fromhex(cipher_hex)
        stream = self._keystream(nonce, len(cipher))
        return bytes(a ^ b for a, b in zip(cipher, stream)).decode("utf-8")

    @staticmethod
    def is_encrypted(text: str) -> bool:
        return text.startswith(MARKER)
