"""Service adapters: how the plug-in finds editable text per service.

The paper's mechanisms (mutation observers + XHR patching) "can be used
to support other services with minimal effort" (§5.2). The effort in
question is exactly an adapter: which DOM container holds the editing
surface, which elements are the tracked segments, and which attribute
carries their stable ids. The plug-in ships with adapters for the
bundled services and accepts new ones via
:meth:`BrowserFlowPlugin.register_adapter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.browser.dom import Document, Element


@dataclass(frozen=True)
class EditorAdapter:
    """Describes one AJAX editing surface.

    Attributes:
        name: adapter id, for diagnostics.
        container_id: DOM id of the editor container element.
        paragraph_class: class name marking tracked segment elements.
        id_attribute: attribute carrying the segment's stable id.
    """

    name: str
    container_id: str
    paragraph_class: str
    id_attribute: str = "data-par-id"
    #: Page-path prefix of the service's editor URLs.
    path_prefix: str = "/"
    #: How the service-side document id is derived from the rest of the
    #: path; must match the ids the service uses in its sync protocol.
    doc_id_template: str = "{}"

    def find_container(self, document: Document) -> Optional[Element]:
        return document.get_element_by_id(self.container_id)

    def doc_id_for_path(self, path: str) -> str:
        if path.startswith(self.path_prefix):
            raw = path[len(self.path_prefix):]
        else:
            raw = path.lstrip("/")
        return self.doc_id_template.format(raw)

    def paragraphs(self, container: Element) -> List[Element]:
        return container.find_all(
            lambda el: self.paragraph_class in el.class_list()
        )

    def paragraph_id(self, element: Element) -> Optional[str]:
        return element.get_attribute(self.id_attribute)


#: Adapter for the Docs-like service (Google Docs' "kix" structure).
DOCS_ADAPTER = EditorAdapter(
    name="docs",
    container_id="editor",
    paragraph_class="kix-paragraph",
    path_prefix="/d/",
    doc_id_template="{}",
)

#: Adapter for the Notes service (Evernote-style note cards).
NOTES_ADAPTER = EditorAdapter(
    name="notes",
    container_id="notes-app",
    paragraph_class="note-card",
    path_prefix="/nb/",
    doc_id_template="nb:{}",
)

#: Adapters the plug-in knows about out of the box.
DEFAULT_ADAPTERS = (DOCS_ADAPTER, NOTES_ADAPTER)
