"""The BrowserFlow plug-in: browser glue tying lookup to enforcement.

Per page load the plug-in (paper §5):

* patches the window's ``XMLHttpRequest.prototype.send`` so AJAX
  uploads (the Docs sync protocol) pass through policy checks;
* registers ``submit`` listeners on every form so form-based services
  (wiki, interview tool, forum) are gated the same way;
* attaches mutation observers to AJAX editor containers so disclosure
  decisions run as the user types, marking violating paragraphs red;
* ingests the text already rendered on the page — editor paragraphs or
  Readability-extracted article text — so text first observed in a
  service is labelled with that service's confidentiality label.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.browser.dom import Document, Element
from repro.browser.events import Event
from repro.browser.forms import collect_form_data, is_form_input, is_hidden_input
from repro.browser.http import HttpResponse
from repro.browser.mutation import MutationObserver, MutationRecord
from repro.browser.readability import extract_main_text
from repro.errors import RequestBlocked
from repro.fingerprint.incremental import EditBuffer
from repro.obs.trace import span
from repro.plugin.adapters import DEFAULT_ADAPTERS, EditorAdapter
from repro.plugin.cache import DecisionCache
from repro.plugin.crypto import UploadCipher
from repro.plugin.enforcement import EnforcementAction, PluginMode, PolicyEnforcement
from repro.plugin.lookup import PolicyLookup
from repro.plugin.ui import Highlighter
from repro.tdm.model import (
    FlowDecision,
    FlowViolation,
    Suppression,
    TextDisclosureModel,
)
from repro.util.text import split_paragraphs


@dataclass(frozen=True)
class WarningEvent:
    """One disclosure warning surfaced to the user."""

    service_id: str
    doc_id: str
    segment_id: str
    offending: Tuple[str, ...]
    source_ids: Tuple[str, ...]
    proceeded: bool
    timestamp: float


class BrowserFlowPlugin:
    """The middleware. Create once, attach to a browser, and it rides
    along with every page the user opens.

    Args:
        model: the Text Disclosure Model holding policies and the
            disclosure databases.
        mode: enforcement mode (advisory / enforce / encrypt).
        cipher: upload cipher, required for ENCRYPT mode.
        lookup: optional :class:`PolicyLookup` (or subclass) the plug-in
            should route decisions through instead of building its own.
            This is how a deployment points many plug-ins at a shared
            lookup *service* (e.g. the fleet simulator's
            client-over-``LookupServer`` adapter); the plug-in adopts
            the lookup's decision cache so cache accounting stays with
            the tier that owns it.
    """

    def __init__(
        self,
        model: TextDisclosureModel,
        *,
        mode: PluginMode = PluginMode.ENFORCE,
        cipher: Optional[UploadCipher] = None,
        secret_tracker=None,
        lookup: Optional[PolicyLookup] = None,
    ) -> None:
        self.model = model
        #: Optional exact-match tracker for short secrets (§4.4); its
        #: secret ids must be valid tag names, and a secret may only be
        #: uploaded to services whose Lp carries that tag.
        self.secret_tracker = secret_tracker
        #: Editor adapters: how editable segments are found per service
        #: family (§5.2 "minimal effort" extension point).
        self.adapters: List[EditorAdapter] = list(DEFAULT_ADAPTERS)
        #: The model's registry: the plug-in's own instruments and the
        #: decision cache register here, next to the engine counters.
        self.registry = model.registry
        if lookup is not None:
            self.lookup = lookup
            self.cache = lookup.cache
        else:
            self.cache = DecisionCache(
                scope=self.registry.scope("decision_cache.")
            )
            self.lookup = PolicyLookup(model, self.cache)
        self.enforcement = PolicyEnforcement(mode, cipher)
        self.ui = Highlighter()
        self.warnings: List[WarningEvent] = []
        #: Disclosure-decision latencies in seconds (paper §6.2).
        self.response_times: List[float] = []
        plugin_scope = self.registry.scope("plugin.")
        plugin_scope.gauge("decisions", fn=lambda: len(self.response_times))
        plugin_scope.gauge("warnings", fn=lambda: len(self.warnings))
        self._h_decision = plugin_scope.histogram("decision_seconds")
        self._pending_suppressions: Dict[str, List[Suppression]] = {}
        #: Per-segment delta state (DESIGN.md §13): a bounded LRU of
        #: :class:`~repro.fingerprint.incremental.EditBuffer` mirrors,
        #: one per recently edited paragraph, so per-keystroke checks
        #: re-fingerprint only the edit's dirty radius instead of the
        #: whole paragraph.
        self._edit_buffers: "OrderedDict[str, EditBuffer]" = OrderedDict()
        self._max_edit_buffers = 512
        delta_scope = self.registry.scope("plugin.delta.")
        self._c_delta_checks = delta_scope.counter("checks")
        self._c_delta_builds = delta_scope.counter("builds")
        self._c_delta_edits = delta_scope.counter("edits")
        self._observers: List[MutationObserver] = []
        self._patched_windows: List = []
        self._warning_listeners: List = []
        self._sync_parsers: List = []
        self._browser = None

    @property
    def mode(self) -> PluginMode:
        return self.enforcement.mode

    @mode.setter
    def mode(self, mode: PluginMode) -> None:
        self.enforcement.mode = mode

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, browser) -> None:
        """Install the plug-in: runs on every subsequent page load."""
        self._browser = browser
        browser.add_page_hook(self._on_page)

    def detach(self) -> None:
        """Uninstall: restore XHR prototypes, disconnect observers.

        Corresponds to disabling the extension — pages already loaded
        stop being intercepted and future loads are untouched. The
        model (labels, databases, audit) is left intact.
        """
        if self._browser is not None and self._on_page in self._browser.page_hooks:
            self._browser.page_hooks.remove(self._on_page)
        for window in self._patched_windows:
            window.xhr_prototype.restore()
        self._patched_windows.clear()
        for observer in self._observers:
            observer.disconnect()
        self._observers.clear()

    def on_warning(self, listener) -> None:
        """Register a callback invoked with every new WarningEvent.

        The hook a desktop-notification UI or SIEM forwarder would use.
        """
        self._warning_listeners.append(listener)

    def register_adapter(self, adapter: EditorAdapter) -> None:
        """Teach the plug-in a new AJAX editing surface."""
        self.adapters.append(adapter)

    def register_sync_parser(self, parser) -> None:
        """Teach the XHR interceptor a new sync-body shape.

        *parser* is called with ``(service_id, payload_dict)`` and
        returns ``(raw_doc_id, raw_segment_id, text)`` when it
        recognises the payload, else None. Together with an adapter
        this is all a new service needs for full enforcement (§5.2).
        """
        self._sync_parsers.append(parser)

    def _on_page(self, tab) -> None:
        service = tab.page.service
        if service is None:
            return
        service_id = service.origin
        self._patch_xhr(tab.window, service_id)
        self._hook_forms(tab, service_id)
        self._ingest_page(tab, service_id)
        self._observe_editor(tab, service_id)

    # ------------------------------------------------------------------
    # User override (tag suppression)
    # ------------------------------------------------------------------

    def suppress(
        self, segment_id: str, tag, user: str, justification: str
    ) -> None:
        """Queue a one-shot declassification for a segment's next check.

        Mirrors the paper's case-by-case suppression: it applies to the
        next upload attempt of that segment only, and lands in the audit
        log when consumed.
        """
        suppression = Suppression.of(tag, user, justification)
        self._pending_suppressions.setdefault(segment_id, []).append(suppression)

    def _take_suppressions(
        self, segment_ids: Sequence[str]
    ) -> Dict[str, List[Suppression]]:
        taken: Dict[str, List[Suppression]] = {}
        for segment_id in segment_ids:
            pending = self._pending_suppressions.pop(segment_id, None)
            if pending:
                taken[segment_id] = pending
        return taken

    # ------------------------------------------------------------------
    # Decision pipeline (shared by all interception paths)
    # ------------------------------------------------------------------

    def _delta_fingerprint(self, segment_id: str, text: str):
        """Fingerprint *text* through the segment's edit buffer.

        First sight of a segment builds an
        :class:`~repro.fingerprint.incremental.EditBuffer` (one full
        pipeline pass); every later check diffs against the mirrored
        text and re-hashes only the edit's ``k+w-1`` dirty radius. The
        buffer pool is a bounded LRU — an evicted segment simply pays
        one full build on its next edit.
        """
        buffers = self._edit_buffers
        buffer = buffers.get(segment_id)
        if buffer is None:
            buffer = EditBuffer(
                self.model.tracker.paragraphs.config, text
            )
            buffers[segment_id] = buffer
            self._c_delta_builds.inc()
            while len(buffers) > self._max_edit_buffers:
                buffers.popitem(last=False)
            fingerprint = buffer.current()
        else:
            before = buffer.delta_edits
            fingerprint = buffer.update(text)
            if buffer.delta_edits > before:
                self._c_delta_edits.inc()
        buffers.move_to_end(segment_id)
        self._c_delta_checks.inc()
        return fingerprint

    def _decide(
        self,
        service_id: str,
        doc_id: str,
        segments: Sequence[Tuple[str, str]],
        *,
        consume_suppressions: bool = True,
        fingerprints: Optional[Sequence] = None,
    ) -> Tuple[EnforcementAction, float]:
        """Run lookup + enforcement, timed; returns (action, seconds).

        Only upload-path checks consume pending one-shot suppressions;
        the advisory checks that fire while the user is typing must not,
        or a queued declassification would be spent on a UI refresh
        before the actual upload it was meant for.
        """
        suppressions: Dict[str, List[Suppression]] = {}
        if consume_suppressions:
            suppressions = self._take_suppressions(
                [seg_id for seg_id, _text in segments] + [doc_id]
            )
        with span(
            "decision", service=service_id, doc=doc_id, segments=len(segments)
        ) as sp:
            started = time.perf_counter()
            decision = self.lookup.lookup(
                service_id,
                doc_id,
                segments,
                suppressions=suppressions or None,
                fingerprints=fingerprints,
            )
            decision = self._apply_secret_tracker(service_id, segments, decision)
            action = self.enforcement.enforce(decision, dict(segments))
            elapsed = time.perf_counter() - started
            sp.set(allowed=decision.allowed, proceed=action.proceed)
        self.response_times.append(elapsed)
        self._h_decision.observe(elapsed)
        return action, elapsed

    def _apply_secret_tracker(
        self,
        service_id: str,
        segments: Sequence[Tuple[str, str]],
        decision: FlowDecision,
    ) -> FlowDecision:
        """Add violations for exact short-secret matches (§4.4).

        Short secrets (passwords, keys) are below the fingerprinting
        floor, so the similarity engine cannot see them; the equality
        tracker catches them regardless of the lookup's verdict.
        """
        if self.secret_tracker is None:
            return decision
        from repro.tdm.labels import Label, SegmentLabel

        privilege = self.model.policies.get(service_id).privilege
        extra = []
        for segment_id, text in segments:
            for match in self.secret_tracker.scan(text):
                secret_label = Label.of(match.secret_id)
                if secret_label.is_subset_of(privilege):
                    continue
                extra.append(
                    FlowViolation(
                        segment_id=segment_id,
                        label=SegmentLabel.of(explicit=[match.secret_id]),
                        offending=secret_label,
                        granularity="secret",
                    )
                )
        if not extra:
            return decision
        return FlowDecision(
            service_id=decision.service_id,
            allowed=False,
            violations=decision.violations + tuple(extra),
            labels=decision.labels,
        )

    def _record_warnings(
        self, service_id: str, doc_id: str, decision: FlowDecision, proceeded: bool
    ) -> None:
        for violation in decision.violations:
            event = WarningEvent(
                service_id=service_id,
                doc_id=doc_id,
                segment_id=violation.segment_id,
                offending=tuple(violation.offending.names()),
                source_ids=tuple(
                    sorted({s.segment_id for s in violation.sources})
                ),
                proceeded=proceeded,
                timestamp=time.perf_counter(),
            )
            self.warnings.append(event)
            for listener in list(self._warning_listeners):
                listener(event)

    # ------------------------------------------------------------------
    # XHR interception (AJAX services, paper §5.2)
    # ------------------------------------------------------------------

    def _patch_xhr(self, window, service_id: str) -> None:
        prototype = window.xhr_prototype
        original_send = prototype.send
        self._patched_windows.append(window)

        def intercepted_send(xhr, body: Optional[str]) -> HttpResponse:
            parsed = self._parse_sync_body(service_id, body, window.document)
            if parsed is None:
                return original_send(xhr, body)
            doc_id, segment_id, text = parsed
            with span("intercept", kind="xhr", service=service_id):
                action, _elapsed = self._decide(
                    service_id,
                    doc_id,
                    [(segment_id, text)],
                    fingerprints=[self._delta_fingerprint(segment_id, text)],
                )
            self._mark_editor_paragraph(window.document, segment_id, action)
            if not action.proceed:
                self._record_warnings(service_id, doc_id, action.decision, False)
                raise RequestBlocked(xhr.url, "disclosure policy violation")
            out_body = body
            if segment_id in action.rewrites:
                out_body = self._rewrite_sync_body(body, action.rewrites[segment_id])
            if action.violated:
                self._record_warnings(
                    service_id, doc_id, action.decision, proceeded=True
                )
            response = original_send(xhr, out_body)
            if response.ok and not action.rewrites:
                self.model.commit_upload(
                    service_id, doc_id, [(segment_id, text)], action.decision
                )
            return response

        prototype.send = intercepted_send

    def _parse_sync_body(
        self, service_id: str, body: Optional[str], document: Document
    ) -> Optional[Tuple[str, str, str]]:
        """Extract (doc_id, segment_id, text) from a Docs sync request.

        ``set_paragraph`` mutations carry the full text on the wire.
        ``insert``/``delete`` deltas carry only the changed characters —
        the obfuscated AJAX case of §5.2 — so the paragraph's *current*
        text is read back from the DOM (the mutation has already been
        applied client-side when the sync fires). This is precisely why
        the plug-in can check what a network-level observer cannot.

        Returns None for anything that is not a paragraph-text mutation;
        such requests pass through unchecked (they carry no user text).
        """
        if not body:
            return None
        try:
            mutation = json.loads(body)
        except (json.JSONDecodeError, TypeError):
            return None
        if not isinstance(mutation, dict):
            return None
        for parser in self._sync_parsers:
            parsed = parser(service_id, mutation)
            if parsed is not None:
                raw_doc, raw_par, text = parsed
                return (
                    self.qualify(service_id, raw_doc),
                    self.qualify(service_id, raw_par),
                    text,
                )
        if "op" not in mutation:
            return self._parse_notes_body(service_id, mutation)
        op = mutation.get("op")
        raw_doc = mutation.get("doc_id")
        raw_par = mutation.get("par_id")
        if not raw_doc or not raw_par:
            return None
        if op == "set_paragraph":
            text = mutation.get("text")
            if not isinstance(text, str):
                return None
        elif op in ("insert", "delete"):
            element = self._find_paragraph_element(document, raw_par)
            if element is not None:
                text = element.text_content()
            elif op == "insert":
                # No DOM state to consult: check the inserted characters.
                text = str(mutation.get("chars", ""))
            else:
                return None
        else:
            return None
        return (
            self.qualify(service_id, raw_doc),
            self.qualify(service_id, raw_par),
            text,
        )

    def _parse_notes_body(
        self, service_id: str, mutation: dict
    ) -> Optional[Tuple[str, str, str]]:
        """Notes-service save: whole-note text keyed by notebook/note."""
        notebook = mutation.get("notebook")
        note_id = mutation.get("note_id")
        text = mutation.get("text")
        if not notebook or not note_id or not isinstance(text, str):
            return None
        return (
            self.qualify(service_id, f"nb:{notebook}"),
            self.qualify(service_id, note_id),
            text,
        )

    @staticmethod
    def _rewrite_sync_body(body: Optional[str], ciphertext: str) -> str:
        """Replace the outgoing mutation with an encrypted full write.

        Delta mutations cannot be encrypted piecemeal without leaking
        structure, so any violating mutation becomes a ``set_paragraph``
        carrying ciphertext for the whole paragraph.
        """
        mutation = json.loads(body or "{}")
        mutation["op"] = "set_paragraph"
        mutation.pop("chars", None)
        mutation.pop("index", None)
        mutation.pop("count", None)
        mutation["text"] = ciphertext
        return json.dumps(mutation)

    def _mark_editor_paragraph(
        self, document: Document, segment_id: str, action: EnforcementAction
    ) -> None:
        raw_par = segment_id.rsplit("|", 1)[-1]
        element = self._find_paragraph_element(document, raw_par)
        if element is None:
            return
        if action.violated:
            reasons = "; ".join(v.describe() for v in action.decision.violations)
            self.ui.mark_violation(element, reasons)
        else:
            self.ui.mark_clear(element)

    @staticmethod
    def _find_paragraph_element(document: Document, par_id: str) -> Optional[Element]:
        for element in document.iter_elements():
            if element.get_attribute("data-par-id") == par_id:
                return element
        return None

    # ------------------------------------------------------------------
    # Form interception (paper §5.1)
    # ------------------------------------------------------------------

    def _hook_forms(self, tab, service_id: str) -> None:
        for form in tab.document.get_elements_by_tag("form"):
            self._hook_form(form, service_id)

    def _hook_form(self, form: Element, service_id: str) -> None:
        def on_submit(event: Event) -> None:
            doc_id, segments = self._segments_from_form(service_id, form)
            if not segments:
                return
            with span("intercept", kind="form", service=service_id):
                action, _elapsed = self._decide(service_id, doc_id, segments)
            if not action.proceed:
                event.prevent_default()
                self.ui.mark_violation(form)
                self._record_warnings(service_id, doc_id, action.decision, False)
                return
            if action.rewrites:
                self._rewrite_form_inputs(form, service_id, action.rewrites)
            if action.violated:
                self._record_warnings(
                    service_id, doc_id, action.decision, proceeded=True
                )
            else:
                self.ui.mark_clear(form)
            if not action.rewrites:
                self.model.commit_upload(service_id, doc_id, segments, action.decision)

        form.add_event_listener("submit", on_submit)

    def _segments_from_form(
        self, service_id: str, form: Element
    ) -> Tuple[str, List[Tuple[str, str]]]:
        """Turn a form's visible inputs into checkable text segments.

        The document identity combines the action path with the hidden
        fields (page name, candidate, topic ...), which is how the same
        logical document keeps the same id across submissions. Visible
        field values are split into paragraphs, each its own segment.
        """
        action_path = form.get_attribute("action") or "/"
        hidden = sorted(
            (el.get_attribute("name"), el.get_attribute("value") or "")
            for el in form.iter_elements()
            if is_hidden_input(el) and el.get_attribute("name")
        )
        hidden_key = ",".join(f"{name}={value}" for name, value in hidden)
        doc_id = self.qualify(service_id, f"form:{action_path}?{hidden_key}")

        segments: List[Tuple[str, str]] = []
        for name, value in collect_form_data(form, include_hidden=False).items():
            for i, paragraph in enumerate(split_paragraphs(value)):
                segments.append((f"{doc_id}#{name}:p{i}", paragraph))
        return doc_id, segments

    def _rewrite_form_inputs(
        self, form: Element, service_id: str, rewrites: Dict[str, str]
    ) -> None:
        """Replace violating field content with ciphertext before send.

        A field is rewritten wholesale when any of its paragraphs
        violates — partial paragraph encryption inside one field would
        leak structure for no benefit.
        """
        violating_fields = {
            seg_id.split("#", 1)[1].split(":", 1)[0] for seg_id in rewrites
        }
        cipher = self.enforcement.cipher
        assert cipher is not None
        for element in form.iter_elements():
            if not is_form_input(element) or is_hidden_input(element):
                continue
            name = element.get_attribute("name")
            if name in violating_fields:
                current = element.get_attribute("value") or element.text_content()
                element.set_attribute("value", cipher.encrypt(current))

    # ------------------------------------------------------------------
    # Page ingestion: label text observed in a service (paper §3.1)
    # ------------------------------------------------------------------

    def _find_editor(self, tab) -> Optional[Tuple[EditorAdapter, Element]]:
        for adapter in self.adapters:
            container = adapter.find_container(tab.document)
            if container is not None:
                return adapter, container
        return None

    def _ingest_page(self, tab, service_id: str) -> None:
        found = self._find_editor(tab)
        if found is not None:
            adapter, container = found
            doc_id, segments = self._editor_segments(
                tab, service_id, container, adapter
            )
            if segments:
                self.model.observe(service_id, doc_id, segments)
            return
        text = extract_main_text(tab.document)
        if not text.strip():
            return
        doc_id = self.qualify(service_id, f"page:{self._path_of(tab)}")
        segments = [
            (f"{doc_id}#p{i}", paragraph)
            for i, paragraph in enumerate(split_paragraphs(text))
        ]
        self.model.observe(service_id, doc_id, segments)

    def _editor_segments(
        self, tab, service_id: str, container: Element, adapter: EditorAdapter
    ) -> Tuple[str, List[Tuple[str, str]]]:
        raw_doc = adapter.doc_id_for_path(self._path_of(tab))
        doc_id = self.qualify(service_id, raw_doc)
        segments = []
        for element in adapter.paragraphs(container):
            par_id = adapter.paragraph_id(element)
            text = element.text_content()
            if par_id and text.strip():
                segments.append((self.qualify(service_id, par_id), text))
        return doc_id, segments

    @staticmethod
    def _path_of(tab) -> str:
        url = tab.page.url
        origin = tab.window.origin
        return url[len(origin):] if url.startswith(origin) else url

    # ------------------------------------------------------------------
    # Mutation-observer checks while editing (paper §5.2, §6.2)
    # ------------------------------------------------------------------

    def _observe_editor(self, tab, service_id: str) -> None:
        found = self._find_editor(tab)
        if found is None:
            return
        adapter, editor = found
        doc_id, _segments = self._editor_segments(tab, service_id, editor, adapter)

        def on_mutations(records: List[MutationRecord], _observer) -> None:
            for element in self._paragraphs_affected(editor, records, adapter):
                par_id = adapter.paragraph_id(element)
                text = element.text_content()
                if not par_id or not text.strip():
                    continue
                segment_id = self.qualify(service_id, par_id)
                action, _elapsed = self._decide(
                    service_id,
                    doc_id,
                    [(segment_id, text)],
                    consume_suppressions=False,
                    fingerprints=[self._delta_fingerprint(segment_id, text)],
                )
                if action.violated:
                    reasons = "; ".join(
                        v.describe() for v in action.decision.violations
                    )
                    self.ui.mark_violation(element, reasons)
                else:
                    self.ui.mark_clear(element)

        observer = MutationObserver(on_mutations)
        observer.observe(editor, subtree=True, child_list=True, character_data=True)
        self._observers.append(observer)

    @staticmethod
    def _paragraphs_affected(
        editor: Element, records: List[MutationRecord], adapter: EditorAdapter
    ) -> List[Element]:
        """Paragraph elements whose content the records touched.

        Covers both shapes of editor mutations: character-data changes
        inside an existing paragraph (walk up to the paragraph) and
        whole paragraphs inserted in one childList mutation (inspect
        the added subtree).
        """
        affected: List[Element] = []
        seen = set()

        def add(element: Element) -> None:
            if id(element) not in seen:
                seen.add(id(element))
                affected.append(element)

        for record in records:
            node = record.target
            while node is not None and node is not editor:
                if isinstance(node, Element) and adapter.paragraph_class in node.class_list():
                    add(node)
                    break
                node = node.parent
            for added in record.added_nodes:
                if not isinstance(added, Element):
                    continue
                for element in added.iter_elements():
                    if adapter.paragraph_class in element.class_list():
                        add(element)
        return affected

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def qualify(service_id: str, raw_id: str) -> str:
        """Namespace a service-local id so ids never collide globally."""
        return f"{service_id}|{raw_id}"

    def stats(self) -> Dict[str, float]:
        return {
            "decisions": float(len(self.response_times)),
            "warnings": float(len(self.warnings)),
            "cache_hits": float(self.cache.hits),
            "cache_misses": float(self.cache.misses),
            "cache_hit_rate": self.cache.hit_rate,
            "delta_checks": float(self._c_delta_checks.value),
            "delta_builds": float(self._c_delta_builds.value),
            "delta_edits": float(self._c_delta_edits.value),
        }
