"""The policy lookup module (paper Figure 1).

"A policy lookup module extracts the security label associated with the
text segment being uploaded." Lookup wraps the Text Disclosure Model:
it fingerprints outgoing segments, finds the sources they disclose, and
resolves the labels that enforcement will compare against the target
service's privilege label. Results are memoised in the decision cache
keyed by fingerprint, which is what makes per-keystroke checks cheap
(paper §6.2).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import span
from repro.plugin.cache import DecisionCache
from repro.tdm.model import FlowDecision, Suppression, TextDisclosureModel

#: One batch-lookup item: (doc_id, [(paragraph_id, text), ...]).
BatchItem = Tuple[str, Sequence[Tuple[str, str]]]


class PolicyLookup:
    """Resolves flow decisions for outgoing text, with caching.

    A cache created here (none passed) registers its counters in the
    model's registry under ``decision_cache.``, so one snapshot covers
    the whole lookup path.
    """

    def __init__(
        self, model: TextDisclosureModel, cache: Optional[DecisionCache] = None
    ) -> None:
        self._model = model
        self._cache = (
            cache
            if cache is not None
            else DecisionCache(scope=model.registry.scope("decision_cache."))
        )

    @property
    def model(self) -> TextDisclosureModel:
        return self._model

    @property
    def cache(self) -> DecisionCache:
        return self._cache

    def lookup(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        suppressions: Optional[Mapping[str, Sequence[Suppression]]] = None,
    ) -> FlowDecision:
        """Resolve the flow decision for an upload.

        Cacheable only when no suppressions apply: a suppression must be
        consumed (and audited) exactly once, so suppressed lookups always
        recompute.
        """
        if suppressions:
            return self._model.check_upload(
                service_id, doc_id, paragraphs, suppressions=suppressions
            )

        # The version read and the recomputation must see the same model
        # state, so the whole path holds the tracker's read lock: without
        # it a concurrent observation between the two could cache a
        # decision computed on newer state under the older version key.
        with self._model.lock.read_locked(), span(
            "lookup", service=service_id, doc=doc_id
        ) as sp:
            engine = self._model.tracker.paragraphs
            fingerprints = tuple(
                engine.fingerprinter.fingerprint(text).hashes
                for _pid, text in paragraphs
            )
            version = (
                engine.stats()["version"]
                + self._model.tracker.documents.stats()["version"]
            )
            key = (service_id, doc_id, fingerprints, version)
            cached = self._cache.get(key)
            if cached is not None:
                sp.set(cache_hit=True, allowed=cached.allowed)  # type: ignore[union-attr]
                return cached  # type: ignore[return-value]
            decision = self._model.check_upload(service_id, doc_id, paragraphs)
            self._cache.put(key, decision)
            sp.set(cache_hit=False, allowed=decision.allowed)
            return decision

    def lookup_batch(
        self, service_id: str, items: Sequence[BatchItem]
    ) -> List[FlowDecision]:
        """Resolve many uploads' decisions under one lock acquisition.

        Equivalent to calling :meth:`lookup` per item (same cache, same
        key scheme, so batch and single traffic interoperate), but the
        amortisation is real: one read-lock acquisition, one version
        read, and one trace span cover the batch; each item's paragraphs
        are fingerprinted *once* — the fingerprints computed for the
        cache key are passed down through
        :meth:`~repro.tdm.model.TextDisclosureModel.check_uploads` — and
        all cache misses resolve through one fused engine sweep per
        granularity instead of two per item. Suppressions are
        deliberately not accepted here: a suppression must be consumed
        and audited exactly once, which the uncached single path
        guarantees.
        """
        with self._model.lock.read_locked(), span(
            "lookup_batch", service=service_id, items=len(items)
        ) as sp:
            tracker = self._model.tracker
            fingerprinter = tracker.paragraphs.fingerprinter
            version = (
                tracker.paragraphs.stats()["version"]
                + tracker.documents.stats()["version"]
            )
            decisions: List[Optional[FlowDecision]] = [None] * len(items)
            misses: List[int] = []
            miss_fps: List[List] = []
            keys: List[Tuple] = [()] * len(items)
            hits = 0
            for i, (doc_id, paragraphs) in enumerate(items):
                fingerprints = [
                    fingerprinter.fingerprint(text) for _pid, text in paragraphs
                ]
                key = (
                    service_id,
                    doc_id,
                    tuple(fp.hashes for fp in fingerprints),
                    version,
                )
                cached = self._cache.get(key)
                if cached is not None:
                    hits += 1
                    decisions[i] = cached  # type: ignore[assignment]
                    continue
                keys[i] = key
                misses.append(i)
                miss_fps.append(fingerprints)
            if misses:
                # One fused model call for every miss: one label-check
                # span, one tracker lock, and one batched sweep per
                # engine cover the whole batch.
                computed = self._model.check_uploads(
                    service_id,
                    [items[i] for i in misses],
                    fingerprints=miss_fps,
                )
                for i, decision in zip(misses, computed):
                    self._cache.put(keys[i], decision)
                    decisions[i] = decision
            sp.set(cache_hits=hits)
            return decisions  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        """Decision-cache and engine index/query counters, one flat dict.

        Engine counters are summed across the two granularities and
        prefixed ``engine_``; decision-cache counters are prefixed
        ``decision_cache_`` (``evictions`` counts capacity drops only,
        so capacity misses are distinguishable from version misses);
        reader–writer lock counters come from the tracker's shared lock
        and are prefixed ``lock_``. Benchmark harnesses print these next
        to the latency numbers so cache and lock behaviour is visible
        alongside timings.
        """
        tracker = self._model.tracker
        combined: Dict[str, object] = {
            "decision_cache_hits": self._cache.hits,
            "decision_cache_misses": self._cache.misses,
            "decision_cache_evictions": self._cache.evictions,
            "decision_cache_hit_rate": self._cache.hit_rate,
        }
        paragraph_stats = tracker.paragraphs.stats()
        document_stats = tracker.documents.stats()
        for key in paragraph_stats:
            combined[f"engine_{key}"] = paragraph_stats[key] + document_stats.get(key, 0)
        for key, value in tracker.lock.stats().items():
            combined[f"lock_{key}"] = value
        return combined
