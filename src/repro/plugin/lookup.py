"""The policy lookup module (paper Figure 1).

"A policy lookup module extracts the security label associated with the
text segment being uploaded." Lookup wraps the Text Disclosure Model:
it fingerprints outgoing segments, finds the sources they disclose, and
resolves the labels that enforcement will compare against the target
service's privilege label. Results are memoised in the decision cache,
which is what makes per-keystroke checks cheap (paper §6.2).

The delta-aware pipeline (DESIGN.md §13) changes what the cache keys
look like and where fingerprints come from:

* Verdicts are keyed on ``(service, doc, fingerprint-set digest,
  paragraph-engine epoch, document-engine epoch)``. The epoch tokens
  come from ``DisclosureEngine.version_epoch``: the unsharded engine
  returns its global version, the sharded engine a per-shard tuple, so
  a mutation that lands entirely on other shards leaves cached verdicts
  valid instead of invalidating everything.
* Paragraph texts resolve to fingerprints through a content-addressed
  :class:`~repro.plugin.cache.FingerprintCache`, and callers that track
  edits incrementally (the plug-in's delta path) can pass precomputed
  fingerprints to skip the text pipeline entirely.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import span
from repro.plugin.cache import (
    DecisionCache,
    FingerprintCache,
    fingerprint_set_digest,
)
from repro.tdm.model import FlowDecision, Suppression, TextDisclosureModel

#: One batch-lookup item: (doc_id, [(paragraph_id, text), ...]).
BatchItem = Tuple[str, Sequence[Tuple[str, str]]]

#: Shard counts consulted per epoch token (sharded tier only).
_SHARD_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class PolicyLookup:
    """Resolves flow decisions for outgoing text, with caching.

    Caches created here (none passed) register their counters in the
    model's registry under ``decision_cache.`` / ``fingerprint.cache.``,
    so one snapshot covers the whole lookup path. Epoch-path outcomes
    are additionally counted under ``decision.epoch_cache.``.
    """

    def __init__(
        self,
        model: TextDisclosureModel,
        cache: Optional[DecisionCache] = None,
        fingerprint_cache: Optional[FingerprintCache] = None,
    ) -> None:
        self._model = model
        self._cache = (
            cache
            if cache is not None
            else DecisionCache(scope=model.registry.scope("decision_cache."))
        )
        self._fp_cache = (
            fingerprint_cache
            if fingerprint_cache is not None
            else FingerprintCache(
                scope=model.registry.scope("fingerprint.cache.")
            )
        )
        epoch_scope = model.registry.scope("decision.epoch_cache.")
        self._c_epoch_hits = epoch_scope.counter("hits")
        self._c_epoch_misses = epoch_scope.counter("misses")
        #: Multi-paragraph checks fall back to the document engine's
        #: global version token (the document fingerprint is not known
        #: without joining the text, so per-shard routing is unknown).
        self._c_epoch_global = epoch_scope.counter("doc_global_epochs")
        self._h_epoch_shards = epoch_scope.histogram(
            "shards", buckets=_SHARD_BUCKETS
        )

    @property
    def model(self) -> TextDisclosureModel:
        return self._model

    @property
    def cache(self) -> DecisionCache:
        return self._cache

    @property
    def fingerprint_cache(self) -> FingerprintCache:
        return self._fp_cache

    def _resolve_fingerprints(
        self,
        paragraphs: Sequence[Tuple[str, str]],
        provided: Optional[Sequence],
    ) -> List:
        """Fingerprints for *paragraphs*, caller-provided or cached.

        *provided* aligns with *paragraphs*; ``None`` slots (and a
        ``None`` list) resolve through the content-addressed fingerprint
        cache, so only genuinely new text pays the full pipeline.
        """
        fingerprinter = self._model.tracker.paragraphs.fingerprinter
        if provided is None:
            return [
                self._fp_cache.fingerprint(fingerprinter, text)
                for _pid, text in paragraphs
            ]
        if len(provided) != len(paragraphs):
            raise ValueError(
                f"got {len(provided)} fingerprints for "
                f"{len(paragraphs)} paragraphs"
            )
        return [
            fp
            if fp is not None
            else self._fp_cache.fingerprint(fingerprinter, text)
            for fp, (_pid, text) in zip(provided, paragraphs)
        ]

    def _epoch_key(
        self, service_id: str, doc_id: str, fingerprints: Sequence
    ) -> Tuple:
        """Build the §13 cache key; caller holds the tracker read lock."""
        tracker = self._model.tracker
        hash_sets = [fp.hashes for fp in fingerprints]
        digest = fingerprint_set_digest(hash_sets)
        union = frozenset().union(*hash_sets) if hash_sets else frozenset()
        para_epoch = tracker.paragraphs.version_epoch(union)
        if len(hash_sets) == 1:
            # Single-paragraph checks reuse the paragraph fingerprint at
            # document granularity, so per-shard routing is exact.
            doc_epoch = tracker.documents.version_epoch(hash_sets[0])
        else:
            doc_epoch = tracker.documents.version_epoch(None)
            self._c_epoch_global.inc()
        if isinstance(para_epoch, tuple):
            self._h_epoch_shards.observe(float(len(para_epoch)))
        # Verdicts also read the label store (the upload's own stored
        # labels plus inherited source tags), which can change without
        # any fingerprint delta — e.g. declassification or custom tags.
        return (
            service_id,
            doc_id,
            digest,
            para_epoch,
            doc_epoch,
            self._model.label_epoch(),
        )

    def lookup(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        suppressions: Optional[Mapping[str, Sequence[Suppression]]] = None,
        fingerprints: Optional[Sequence] = None,
    ) -> FlowDecision:
        """Resolve the flow decision for an upload.

        Cacheable only when no suppressions apply: a suppression must be
        consumed (and audited) exactly once, so suppressed lookups always
        recompute. *fingerprints*, when given, aligns with *paragraphs*
        and supplies precomputed fingerprints (``None`` slots fall back
        to the cache-or-compute path) — the delta dispatch entry point.
        """
        if suppressions:
            if fingerprints is not None:
                fingerprints = self._resolve_fingerprints(
                    paragraphs, fingerprints
                )
            return self._model.check_upload(
                service_id,
                doc_id,
                paragraphs,
                suppressions=suppressions,
                fingerprints=fingerprints,
            )

        # The epoch read and the recomputation must see the same model
        # state, so the whole path holds the tracker's read lock: without
        # it a concurrent observation between the two could cache a
        # decision computed on newer state under the older epoch key.
        with self._model.lock.read_locked(), span(
            "lookup", service=service_id, doc=doc_id
        ) as sp:
            resolved = self._resolve_fingerprints(paragraphs, fingerprints)
            key = self._epoch_key(service_id, doc_id, resolved)
            cached = self._cache.get(key)
            if cached is not None:
                self._c_epoch_hits.inc()
                sp.set(cache_hit=True, allowed=cached.allowed)  # type: ignore[union-attr]
                return cached  # type: ignore[return-value]
            self._c_epoch_misses.inc()
            decision = self._model.check_upload(
                service_id, doc_id, paragraphs, fingerprints=resolved
            )
            self._cache.put(key, decision)
            sp.set(cache_hit=False, allowed=decision.allowed)
            return decision

    def lookup_batch(
        self,
        service_id: str,
        items: Sequence[BatchItem],
        *,
        fingerprints: Optional[Sequence[Optional[Sequence]]] = None,
    ) -> List[FlowDecision]:
        """Resolve many uploads' decisions under one lock acquisition.

        Equivalent to calling :meth:`lookup` per item (same cache, same
        key scheme, so batch and single traffic interoperate), but the
        amortisation is real: one read-lock acquisition and one trace
        span cover the batch; each item's paragraphs are fingerprinted
        *once* — resolved through the content-addressed cache (or taken
        from *fingerprints*, aligned per item) and passed down through
        :meth:`~repro.tdm.model.TextDisclosureModel.check_uploads` — and
        all cache misses resolve through one fused engine sweep per
        granularity instead of two per item. Suppressions are
        deliberately not accepted here: a suppression must be consumed
        and audited exactly once, which the uncached single path
        guarantees.
        """
        if fingerprints is not None and len(fingerprints) != len(items):
            raise ValueError(
                f"got {len(fingerprints)} fingerprint lists for "
                f"{len(items)} items"
            )
        with self._model.lock.read_locked(), span(
            "lookup_batch", service=service_id, items=len(items)
        ) as sp:
            decisions: List[Optional[FlowDecision]] = [None] * len(items)
            misses: List[int] = []
            miss_fps: List[List] = []
            keys: List[Tuple] = [()] * len(items)
            hits = 0
            for i, (doc_id, paragraphs) in enumerate(items):
                resolved = self._resolve_fingerprints(
                    paragraphs,
                    fingerprints[i] if fingerprints is not None else None,
                )
                key = self._epoch_key(service_id, doc_id, resolved)
                cached = self._cache.get(key)
                if cached is not None:
                    hits += 1
                    self._c_epoch_hits.inc()
                    decisions[i] = cached  # type: ignore[assignment]
                    continue
                self._c_epoch_misses.inc()
                keys[i] = key
                misses.append(i)
                miss_fps.append(resolved)
            if misses:
                # One fused model call for every miss: one label-check
                # span, one tracker lock, and one batched sweep per
                # engine cover the whole batch.
                computed = self._model.check_uploads(
                    service_id,
                    [items[i] for i in misses],
                    fingerprints=miss_fps,
                )
                for i, decision in zip(misses, computed):
                    self._cache.put(keys[i], decision)
                    decisions[i] = decision
            sp.set(cache_hits=hits)
            return decisions  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        """Decision-cache and engine index/query counters, one flat dict.

        Engine counters are summed across the two granularities and
        prefixed ``engine_``; decision-cache counters are prefixed
        ``decision_cache_`` (``evictions`` counts capacity drops only,
        so capacity misses are distinguishable from version misses);
        the content-addressed fingerprint cache reports under
        ``fingerprint_cache_`` and the epoch-path outcomes under
        ``epoch_cache_``; reader–writer lock counters come from the
        tracker's shared lock and are prefixed ``lock_``. Benchmark
        harnesses print these next to the latency numbers so cache and
        lock behaviour is visible alongside timings.
        """
        tracker = self._model.tracker
        combined: Dict[str, object] = {
            "decision_cache_hits": self._cache.hits,
            "decision_cache_misses": self._cache.misses,
            "decision_cache_evictions": self._cache.evictions,
            "decision_cache_hit_rate": self._cache.hit_rate,
            "fingerprint_cache_hits": self._fp_cache.hits,
            "fingerprint_cache_misses": self._fp_cache.misses,
            "fingerprint_cache_evictions": self._fp_cache.evictions,
            "fingerprint_cache_hit_rate": self._fp_cache.hit_rate,
            "epoch_cache_hits": self._c_epoch_hits.value,
            "epoch_cache_misses": self._c_epoch_misses.value,
            "epoch_cache_doc_global_epochs": self._c_epoch_global.value,
        }
        paragraph_stats = tracker.paragraphs.stats()
        document_stats = tracker.documents.stats()
        for key in paragraph_stats:
            combined[f"engine_{key}"] = paragraph_stats[key] + document_stats.get(key, 0)
        for key, value in tracker.lock.stats().items():
            combined[f"lock_{key}"] = value
        return combined
