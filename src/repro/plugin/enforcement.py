"""The policy enforcement module (paper Figure 1, §3).

"A policy enforcement module uses the security label to reason about the
compliance of the data propagation ... BrowserFlow then takes
appropriate action, either permitting the data upload or preventing it,
e.g. by encrypting the data before transmission."

Three modes cover the paper's deployment options:

* ``ADVISORY`` — warn the user (UI mark + warning event) but let the
  upload proceed; the paper's preferred advisory model (§1).
* ``ENFORCE`` — block the violating upload until the user suppresses
  the offending tags.
* ``ENCRYPT`` — let the request proceed with the violating text
  replaced by ciphertext, so the untrusted service stores no plaintext.

Degraded decisions: when the shared lookup service is unavailable, a
fail-closed :class:`~repro.plugin.server.LookupClient` hands enforcement
a disallowed decision carrying a synthetic ``granularity="lookup"``
violation. ADVISORY still lets it proceed (warn-only deployments stay
warn-only when the backend is down), ENFORCE blocks it, and ENCRYPT
blocks it too — there is no policy verdict saying *which* text
violates, so encrypting is impossible and the safe action is to hold
the upload (paper §6.2: the admin chooses which way lookups fail).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.trace import span
from repro.plugin.crypto import UploadCipher
from repro.tdm.model import FlowDecision


class PluginMode(enum.Enum):
    ADVISORY = "advisory"
    ENFORCE = "enforce"
    ENCRYPT = "encrypt"


@dataclass(frozen=True)
class EnforcementAction:
    """What enforcement decided to do with one upload.

    Attributes:
        proceed: whether the request may go to the network.
        decision: the underlying policy decision.
        rewrites: segment id → ciphertext, for ENCRYPT mode; the
            interception layer substitutes these into the request body.
    """

    proceed: bool
    decision: FlowDecision
    rewrites: Dict[str, str]

    @property
    def violated(self) -> bool:
        return not self.decision.allowed


class PolicyEnforcement:
    """Turns flow decisions into actions according to the plug-in mode."""

    def __init__(
        self, mode: PluginMode = PluginMode.ENFORCE, cipher: Optional[UploadCipher] = None
    ) -> None:
        self._mode = mode
        self._cipher = cipher

    @property
    def cipher(self) -> Optional[UploadCipher]:
        return self._cipher

    @property
    def mode(self) -> PluginMode:
        return self._mode

    @mode.setter
    def mode(self, mode: PluginMode) -> None:
        self._mode = mode

    def enforce(
        self, decision: FlowDecision, segment_texts: Dict[str, str]
    ) -> EnforcementAction:
        """Decide the fate of an upload given its policy decision.

        *segment_texts* maps segment ids to the outgoing plaintext; only
        consulted in ENCRYPT mode to build the rewrites.
        """
        with span("enforcement", mode=self._mode.value) as sp:
            action = self._enforce(decision, segment_texts)
            sp.set(
                allowed=decision.allowed,
                proceed=action.proceed,
                rewrites=len(action.rewrites),
            )
            return action

    def _enforce(
        self, decision: FlowDecision, segment_texts: Dict[str, str]
    ) -> EnforcementAction:
        if decision.allowed:
            return EnforcementAction(proceed=True, decision=decision, rewrites={})

        if self._mode is PluginMode.ADVISORY:
            return EnforcementAction(proceed=True, decision=decision, rewrites={})

        if self._mode is PluginMode.ENCRYPT:
            if self._cipher is None:
                raise ValueError("ENCRYPT mode requires a cipher")
            if any(v.granularity == "lookup" for v in decision.violations):
                # Degraded fail-closed decision: the lookup never ran, so
                # there is no violating text to encrypt — block instead.
                return EnforcementAction(proceed=False, decision=decision, rewrites={})
            rewrites = {}
            for violation in decision.violations:
                text = segment_texts.get(violation.segment_id)
                if text is not None:
                    rewrites[violation.segment_id] = self._cipher.encrypt(text)
            return EnforcementAction(proceed=True, decision=decision, rewrites=rewrites)

        return EnforcementAction(proceed=False, decision=decision, rewrites={})
