"""Steps S3/S4 — winnowing window selection (Schleimer et al., 2003).

Overlapping windows of ``window_size`` consecutive n-gram hashes are
formed and the minimum hash of each window joins the fingerprint. Two
properties follow (paper §4.1):

* density — at least one hash is selected from every window, so the
  fingerprint is spread evenly over the segment and its size is roughly
  linear in segment length divided by window size;
* robustness — the same minimum tends to be selected by many consecutive
  windows, so local edits perturb only nearby selections.

Tie-breaking follows the original winnowing paper: when several hashes in
a window share the minimum value, the *rightmost* one is selected, which
maximises the chance of re-selecting the hash chosen for the previous
window and hence minimises fingerprint size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.ngram import PositionedHash


def winnow(values: Sequence[int], window_size: int) -> List[int]:
    """Winnow a plain hash sequence; returns selected positions.

    Works over hash *positions* so callers can recover metadata. Uses a
    monotonic deque for O(len(values)) total work rather than re-scanning
    each window.
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    if not values:
        return []
    selected: List[int] = []
    # Deque holds indices with increasing position and increasing value;
    # front is the current window minimum. Using >= when popping keeps
    # the rightmost of equal values at the front, so the one tie-break
    # rule lives in exactly one place — including the partial-window
    # case below, which reads the same deque front.
    window: Deque[int] = deque()
    for i, v in enumerate(values):
        while window and values[window[-1]] >= v:
            window.pop()
        window.append(i)
        if window[0] <= i - window_size:
            window.popleft()
        if i >= window_size - 1:
            pos = window[0]
            if not selected or selected[-1] != pos:
                selected.append(pos)
    if not selected:
        # Input shorter than one window. The paper's algorithm produces
        # no fingerprint for such segments; we follow the common
        # practical variant (also used by Moss) of selecting from the
        # partial window so short-but-not-tiny paragraphs still
        # fingerprint. The deque front is already the rightmost minimum
        # of everything seen.
        selected.append(window[0])
    return selected


def select_winnowed(
    hashes: Sequence[PositionedHash], config: FingerprintConfig
) -> List[PositionedHash]:
    """Apply winnowing to a positioned-hash stream."""
    positions = winnow([h.value for h in hashes], config.window_size)
    return [hashes[p] for p in positions]
