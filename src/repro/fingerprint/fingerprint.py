"""Fingerprint values and the end-to-end fingerprinter (S1–S4).

A :class:`Fingerprint` is the set of winnowed hashes of one text segment
plus, for each hash, the original-text spans it was selected from. The
hash *set* drives the disclosure metrics (paper §4.2); the spans drive
passage attribution ("which text segment passages caused information
disclosure", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.kernel import IngestKernel
from repro.fingerprint.ngram import PositionedHash, ngram_hashes
from repro.fingerprint.normalize import normalize
from repro.fingerprint.rolling_hash import KarpRabin
from repro.fingerprint.winnowing import winnow
from repro.obs.trace import span


@dataclass(frozen=True)
class FingerprintHash:
    """One selected hash with its source span in the original text."""

    value: int
    orig_start: int
    orig_end: int


@dataclass(frozen=True)
class Fingerprint:
    """Immutable winnowing fingerprint of a text segment.

    Attributes:
        hashes: the set of selected hash values. Set semantics match the
            paper's disclosure definitions, which intersect fingerprints.
        selections: every selected hash with its source span, in text
            order. A hash value may appear several times if the same
            n-gram content recurs in the segment.
        config: the parameters the fingerprint was computed with.
            Fingerprints from different configs are not comparable.
    """

    hashes: FrozenSet[int]
    selections: Tuple[FingerprintHash, ...] = field(repr=False, default=())
    config: FingerprintConfig = field(default_factory=FingerprintConfig)

    def __len__(self) -> int:
        return len(self.hashes)

    def __contains__(self, value: int) -> bool:
        return value in self.hashes

    def is_empty(self) -> bool:
        """True when the segment was too short to produce any hash.

        Empty fingerprints are the systematic false-negative class the
        paper reports for short paragraphs (§6.1).
        """
        return not self.hashes

    def intersection(self, other: "Fingerprint") -> FrozenSet[int]:
        """Hash values common to both fingerprints."""
        return self.hashes & other.hashes

    def containment_in(self, other: "Fingerprint") -> float:
        """|F(self) ∩ F(other)| / |F(self)| — Broder's containment.

        This is the raw (non-authoritative) disclosure of ``self``
        towards ``other``. Returns 0.0 for an empty fingerprint rather
        than dividing by zero: an unfingerprintable segment can never be
        reported as disclosed.
        """
        if not self.hashes:
            return 0.0
        return len(self.hashes & other.hashes) / len(self.hashes)

    def spans_for(self, values: FrozenSet[int]) -> List[Tuple[int, int]]:
        """Original-text spans whose hashes are in *values*.

        Used for attribution: given the hashes that matched another
        segment, return the character ranges of this segment that caused
        the match, merged where they overlap or touch.
        """
        raw = sorted(
            (s.orig_start, s.orig_end) for s in self.selections if s.value in values
        )
        merged: List[Tuple[int, int]] = []
        for start, end in raw:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged


class Fingerprinter:
    """Computes fingerprints; the one object services share per config.

    Example:
        >>> fp = Fingerprinter(FingerprintConfig(ngram_size=6, window_size=3))
        >>> f = fp.fingerprint("Hello World!")
        >>> f.is_empty()
        False
    """

    def __init__(
        self,
        config: FingerprintConfig | None = None,
        *,
        registry=None,
        scope=None,
        kernel_mode: str = "auto",
    ) -> None:
        """Args:
            config: fingerprint parameters; paper defaults when omitted.
            registry: optional :class:`~repro.obs.registry.MetricsRegistry`;
                per-stage ingest latency lands in its
                ``fingerprint.normalize`` / ``fingerprint.hash`` /
                ``fingerprint.winnow`` histograms.
            scope: optional :class:`~repro.obs.registry.MetricsScope` to
                use instead of *registry* — composition roots (the
                engine) pass an already-prefixed scope so a shared
                registry keeps namespaces apart. Wins over *registry*.
            kernel_mode: forwarded to :class:`IngestKernel` (``"auto"``,
                ``"pure"``, ``"numpy"``); benchmarks pin the path here.
        """
        self._config = config or FingerprintConfig()
        # One hasher per fingerprinter: KarpRabin construction involves a
        # modular pow() and a 256-entry table; rebuilding it per call
        # dominated short-segment fingerprinting.
        self._hasher = KarpRabin(
            ngram_size=self._config.ngram_size, hash_bits=self._config.hash_bits
        )
        if scope is None and registry is not None:
            scope = registry.scope("fingerprint.")
        self._scope = scope
        self._kernel = (
            IngestKernel(
                self._config, self._hasher, mode=kernel_mode, scope=scope
            )
            if self._config.use_kernel
            else None
        )

    @property
    def config(self) -> FingerprintConfig:
        return self._config

    @property
    def kernel(self) -> IngestKernel | None:
        """The fused ingest kernel, or None when disabled by config."""
        return self._kernel

    def fingerprint(self, text: str) -> Fingerprint:
        """Run S1–S4 on *text* and return its fingerprint.

        Byte-narrow text (everything Latin-1 — the ASCII corpora, most
        European prose) dispatches to the fused ingest kernel; text with
        wider code points takes :meth:`fingerprint_reference`. The two
        paths are hash- and span-identical by construction and by
        property test, so callers never observe which one ran (except
        in the per-stage latency histograms).
        """
        kernel = self._kernel
        if kernel is not None:
            data = kernel.encode(text)
            if data is not None:
                return self._fingerprint_kernel(text, data, kernel)
        return self.fingerprint_reference(text)

    def _fingerprint_kernel(
        self, text: str, data: bytes, kernel: IngestKernel
    ) -> Fingerprint:
        config = self._config
        with span("fingerprint", chars=len(text)) as sp:
            with span("normalize") as nsp:
                norm, offsets = kernel.normalize(data)
                nsp.set(kept=len(norm))
            selections = tuple(
                FingerprintHash(value, orig_start, orig_end)
                for value, orig_start, orig_end in kernel.selections_from(
                    norm, offsets
                )
            )
            hashes = frozenset(s.value for s in selections)
            sp.set(hashes=len(hashes))
            return Fingerprint(
                hashes=hashes, selections=selections, config=config
            )

    def fingerprint_reference(self, text: str) -> Fingerprint:
        """The reference S1–S4 pipeline — the differential oracle.

        Handles the full Unicode range (including lower-expanding code
        points like U+0130). The ingest benchmark and the kernel's
        property suite measure and verify against this path; it must
        stay the straightforward composition of :func:`normalize`,
        :meth:`KarpRabin.hash_all_list` and :func:`winnow`.
        """
        config = self._config
        scope = self._scope
        with span("fingerprint", chars=len(text)) as sp:
            with span("normalize") as nsp:
                if scope is None:
                    normalized = normalize(text)
                else:
                    with scope.timer("normalize"):
                        normalized = normalize(text)
                nsp.set(kept=len(normalized.text))
            if len(normalized.text) < config.ngram_size:
                sp.set(hashes=0)
                return Fingerprint(hashes=frozenset(), selections=(), config=config)
            if scope is None:
                values = self._hasher.hash_all_list(normalized.text)
                positions = winnow(values, config.window_size)
            else:
                with scope.timer("hash"):
                    values = self._hasher.hash_all_list(normalized.text)
                with scope.timer("winnow"):
                    positions = winnow(values, config.window_size)
            selections = []
            for pos in positions:
                orig_start, orig_end = normalized.original_span(
                    pos, pos + config.ngram_size
                )
                selections.append(FingerprintHash(values[pos], orig_start, orig_end))
            hashes = frozenset(values[pos] for pos in positions)
            sp.set(hashes=len(hashes))
            return Fingerprint(
                hashes=hashes, selections=tuple(selections), config=config
            )

    def fingerprint_document(self, paragraphs: List[str]) -> Fingerprint:
        """Fingerprint of a whole document given its paragraphs.

        The document granularity (paper §4.1) hashes the document as one
        segment so that disclosure spread thinly across paragraphs is
        still detected. Paragraphs are joined with a separator that
        normalisation removes, so the document fingerprint is the
        fingerprint of the concatenated prose.
        """
        return self.fingerprint("\n\n".join(paragraphs))


def positioned_hashes_for(text: str, config: FingerprintConfig) -> List[PositionedHash]:
    """Expose the pre-winnowing hash stream (useful for ablations)."""
    return ngram_hashes(normalize(text), config)
