"""Positioned n-gram hash stream combining steps S1 and S2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.normalize import NormalizedText
from repro.fingerprint.rolling_hash import KarpRabin


@dataclass(frozen=True)
class PositionedHash:
    """An n-gram hash together with where the n-gram came from.

    Attributes:
        value: the Karp–Rabin hash of the n-gram.
        norm_pos: start index of the n-gram in the normalised text.
        orig_start: start offset of the n-gram in the original text.
        orig_end: end offset (exclusive) in the original text.
    """

    value: int
    norm_pos: int
    orig_start: int
    orig_end: int


def ngram_hashes(normalized: NormalizedText, config: FingerprintConfig) -> List[PositionedHash]:
    """Hash every n-gram of *normalized*, keeping source positions.

    Returns an empty list when the normalised text is shorter than one
    n-gram — the systematic false-negative case for very short paragraphs
    that the paper observes in §6.1.
    """
    n = config.ngram_size
    text = normalized.text
    if len(text) < n:
        return []
    hasher = KarpRabin(ngram_size=n, hash_bits=config.hash_bits)
    out: List[PositionedHash] = []
    for pos, value in enumerate(hasher.hash_all(text)):
        orig_start, orig_end = normalized.original_span(pos, pos + n)
        out.append(
            PositionedHash(
                value=value, norm_pos=pos, orig_start=orig_start, orig_end=orig_end
            )
        )
    return out
