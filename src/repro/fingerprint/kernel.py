"""Fused ingest kernel: single-sweep normalise → hash → winnow (S1–S4).

The reference pipeline (:func:`~repro.fingerprint.normalize.normalize` →
:meth:`~repro.fingerprint.rolling_hash.KarpRabin.hash_all_list` →
:func:`~repro.fingerprint.winnowing.winnow`) runs three Python passes
with per-character method calls — ``isalnum()``/``lower()`` per input
character alone account for nearly half of ingest time. This module
replaces all three passes for byte-narrow input with batched C-level
primitives; the reference implementations stay untouched as the
differential oracle (the ``disclosing_sources_reference`` pattern).

Stage by stage:

S1 normalise — one :meth:`bytes.translate` call lowercases and deletes
   non-alphanumerics via precomputed 256-entry tables, and one
   :func:`itertools.compress` pass recovers the offset map (original
   index of every kept byte). Every Latin-1 code point is kernel-safe:
   each alphanumeric byte lowercases to exactly one alphanumeric byte
   (U+00B5 µ is already lowercase, so ``str.lower`` keeps it; the
   expanding code points such as U+0130 İ cannot be encoded to Latin-1
   in the first place). ``_TABLES_SAFE`` re-proves this at import time.

S2 hash — :meth:`KarpRabin.hash_all_bytes` rolls the Karp–Rabin window
   over the translated buffer with a premultiplied exit table
   (``(-lead·base) mod 2**bits``) so each step is one multiply, two
   adds and a mask inside a single list comprehension.

S3/S4 winnow — a skip-scan replaces the per-element monotonic deque.
   Winnowed selections are *sparse* (≈ 2/(w+1) of positions), and
   between two selections the window minimum is constant; the scan
   therefore jumps selection-to-selection using C-level ``min``/
   ``index`` over small slices instead of running Python bytecode per
   hash. Tie-breaking (rightmost minimum) is identical to the deque:
   a new equal-or-smaller entrant always takes over, and the exit
   rescan picks the last occurrence of the minimum. We measured the
   issue's fused hash+deque single loop too — the skip-scan beats it
   ~2.5× because per-element deque bookkeeping costs more than the
   materialised hash list it avoids.

An optional numpy path (guarded import; ``pip install repro[bench]``)
vectorises S2 via modular prefix products — ``base`` is odd, hence
invertible mod 2**64, so every window hash is a cumsum difference times
a power — and S3/S4 via a sparse table of ``minimum`` over packed
``(value << 32) | reversed-index`` keys, which preserves the rightmost
tie-break under plain unsigned ``min``. uint64 wraparound arithmetic is
exact mod 2**64 and therefore exact mod 2**hash_bits for any
``hash_bits ≤ 64``; key packing additionally needs ``hash_bits ≤ 32``
(the paper's value), wider configs fall back to the pure path.

Throughput (Wikipedia/manuals corpora, this container): reference
≈ 1.2 MB/s, pure kernel ≈ 3.3 MB/s, numpy kernel ≈ 25–30 MB/s.
``BENCH_fingerprint.json`` tracks the trajectory across PRs.
"""

from __future__ import annotations

from itertools import compress, count
from typing import List, Optional, Sequence, Tuple

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.rolling_hash import KarpRabin

try:  # The numpy fast path is optional: pure Python is the contract.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on CI without numpy
    _np = None

HAS_NUMPY = _np is not None

#: A kernel selection: (hash value, original start, original end).
Selection = Tuple[int, int, int]


def _build_tables() -> Tuple[bytes, bytes, bytes]:
    """Precompute the S1 byte tables from the oracle's own predicate.

    Returns ``(lower_table, delete_bytes, keep01_table)``:

    * ``lower_table`` maps each kept byte to its lowercase form (and is
      the identity elsewhere — those bytes are deleted anyway);
    * ``delete_bytes`` lists every byte :func:`normalize` would drop;
    * ``keep01_table`` maps kept bytes to ``\\x01`` and dropped bytes to
      ``\\x00``, the selector mask for the offset-map ``compress``.
    """
    lower = bytearray(range(256))
    delete = bytearray()
    keep01 = bytearray(256)
    for b in range(256):
        ch = chr(b)
        if ch.isalnum():
            lowered = [c for c in ch.lower() if c.isalnum()]
            if len(lowered) == 1 and ord(lowered[0]) <= 0xFF:
                lower[b] = ord(lowered[0])
                keep01[b] = 1
            else:  # pragma: no cover - no such byte exists in Latin-1
                delete.append(b)
        else:
            delete.append(b)
    return bytes(lower), bytes(delete), bytes(keep01)


_LOWER_TABLE, _DELETE_BYTES, _KEEP01_TABLE = _build_tables()

# Import-time proof that the byte tables agree with normalize() on the
# whole Latin-1 range; a Unicode-table change that broke the claim
# would fail loudly here, not silently skew fingerprints.
def _tables_safe() -> bool:
    from repro.fingerprint.normalize import normalize

    for b in range(256):
        text = chr(b)
        norm = text.encode("latin-1").translate(_LOWER_TABLE, _DELETE_BYTES)
        ref = normalize(text)
        if norm.decode("latin-1") != ref.text:
            return False
    return True


_TABLES_SAFE = _tables_safe()
assert _TABLES_SAFE, "kernel byte tables diverge from normalize()"


def normalize_latin1(data: bytes) -> Tuple[bytes, List[int]]:
    """S1 over a Latin-1 byte buffer: (normalised bytes, offset map).

    ``offsets[i]`` is the index in *data* of the byte that produced
    ``norm[i]`` — exactly :class:`NormalizedText.offsets` for the
    decoded string. Both passes are C-level: one ``translate`` for the
    text, one ``translate`` + ``compress(count(), mask)`` for offsets.
    """
    norm = data.translate(_LOWER_TABLE, _DELETE_BYTES)
    offsets = list(compress(count(), data.translate(_KEEP01_TABLE)))
    return norm, offsets


def skipscan_winnow(values: Sequence[int], window_size: int) -> List[int]:
    """Winnow positions via selection-to-selection skip-scan.

    Produces byte-identical output to :func:`repro.fingerprint.winnowing.winnow`
    (property-tested, including ties): the selected positions of the
    rightmost minimum of every ``window_size`` window, deduplicated.

    The invariant driving the jumps: while position ``p`` (value ``v``)
    is selected, the selection can only change when (a) an entrant with
    value ``<= v`` arrives — the *first* such entrant is the next
    selection, because everything between ``p`` and it is ``> v`` — or
    (b) ``p`` falls out of the window, in which case the next selection
    is the rightmost minimum of the following window. Both events are
    found with ``min``/``index`` over at-most-``window_size`` slices,
    so the per-hash Python bytecode of the deque loop disappears.
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    n = len(values)
    if n == 0:
        return []
    if window_size == 1:
        return list(range(n))
    if not isinstance(values, list):
        values = list(values)
    w = window_size
    if n <= w:
        # One (possibly partial) window: its rightmost minimum.
        rev = values[::-1]
        return [n - 1 - rev.index(min(rev))]
    sel: List[int] = []
    emit = sel.append
    rev = values[w - 1 :: -1]
    p = w - 1 - rev.index(min(rev))
    v = values[p]
    emit(p)
    c = w  # next unexamined entrant
    while True:
        e = p + w  # entrant index at which p exits the window
        hi = e if e <= n else n
        if c < hi:
            chunk = values[c:hi]
            if min(chunk) <= v:
                # Event (a): first entrant <= v takes over immediately.
                for j, x in enumerate(chunk):
                    if x <= v:
                        break
                p = c + j
                v = values[p]
                c = p + 1
                emit(p)
                continue
            c = hi
        if e >= n:
            return sel
        # Event (b): p exits; rightmost minimum of [p+1, p+w].
        chunk = values[e:p:-1]  # values[p+1 : e+1] reversed
        v = min(chunk)
        p = e - chunk.index(v)
        c = e + 1
        emit(p)


def _winnow_numpy(values: "_np.ndarray", window_size: int) -> List[int]:
    """Vectorised winnow over uint64 ``values`` (< 2**32 each).

    Packs ``(value << 32) | (n-1-i)`` so unsigned minimum orders first
    by value, then by *largest* index — the paper's rightmost
    tie-break — then takes sliding-window minima with a two-level
    sparse table (log2(w) ``np.minimum`` passes) and emits positions
    where the window minimum changes.
    """
    cnt = int(values.shape[0])
    w = window_size
    keys = (values << _np.uint64(32)) | _np.arange(
        cnt - 1, -1, -1, dtype=_np.uint64
    )
    if cnt <= w:
        k = int(keys.min())
        return [(cnt - 1) - (k & 0xFFFFFFFF)]
    m = keys
    span = 1
    while span * 2 <= w:
        m = _np.minimum(m[: m.shape[0] - span], m[span:])
        span *= 2
    rest = w - span
    n_windows = cnt - w + 1
    if rest:
        wins = _np.minimum(m[:n_windows], m[rest : rest + n_windows])
    else:
        wins = m[:n_windows]
    change = _np.flatnonzero(wins[1:] != wins[:-1]) + 1
    sel_keys = _np.concatenate((wins[:1], wins[change]))
    big = _np.uint64(cnt - 1)
    return (big - (sel_keys & _np.uint64(0xFFFFFFFF))).tolist()


class IngestKernel:
    """The fused S1–S4 ingest pipeline for byte-narrow text.

    One kernel per :class:`~repro.fingerprint.fingerprint.Fingerprinter`;
    it shares the fingerprinter's :class:`KarpRabin` so hash parameters
    can never drift between the kernel and the reference path.

    Args:
        config: fingerprint parameters.
        hasher: the shared Karp–Rabin hasher (must match *config*).
        mode: ``"auto"`` uses numpy for S2–S4 when available and the
            config is packable (``hash_bits <= 32``, odd base);
            ``"pure"`` forces the pure-Python path; ``"numpy"`` demands
            the vectorised path and raises if it cannot run.
        scope: optional metrics scope; when set, per-stage latency
            lands in the ``normalize``/``hash``/``winnow`` histograms.
    """

    def __init__(
        self,
        config: FingerprintConfig,
        hasher: KarpRabin,
        *,
        mode: str = "auto",
        scope=None,
    ) -> None:
        if mode not in ("auto", "pure", "numpy"):
            raise ValueError(f"unknown kernel mode {mode!r}")
        self._config = config
        self._hasher = hasher
        numpy_capable = (
            HAS_NUMPY and config.hash_bits <= 32 and hasher.base % 2 == 1
        )
        if mode == "numpy" and not numpy_capable:
            raise ValueError(
                "numpy kernel path unavailable "
                "(numpy missing, hash_bits > 32, or even base)"
            )
        self._use_numpy = numpy_capable and mode != "pure"
        self._scope = scope
        self._np_state: Optional[Tuple["_np.ndarray", "_np.ndarray"]] = None

    @property
    def uses_numpy(self) -> bool:
        return self._use_numpy

    def encode(self, text: str) -> Optional[bytes]:
        """The dispatch rule: the kernel handles exactly Latin-1 text.

        Latin-1 preserves ``ord`` for the first 256 code points, and
        every one of them normalises within the byte range (see module
        docstring), so ``encode`` succeeding is both necessary and
        sufficient. Wide text — including the lower-expanding U+0130 —
        belongs to the reference character path.
        """
        try:
            return text.encode("latin-1")
        except UnicodeEncodeError:
            return None

    def normalize(self, data: bytes):
        """S1 with per-stage timing; see :func:`normalize_latin1`.

        On the numpy path the offset map comes back as an integer
        ndarray (``flatnonzero`` over the keep mask) instead of a
        Python list — materialising one Python int per kept byte was
        the dominant S1 cost once ``translate`` took over the text
        itself. :meth:`selections_from` gathers from either form.
        """
        scope = self._scope
        if scope is None:
            return self._normalize(data)
        with scope.timer("normalize"):
            return self._normalize(data)

    def _normalize(self, data: bytes):
        if self._use_numpy:
            norm = data.translate(_LOWER_TABLE, _DELETE_BYTES)
            offsets = _np.flatnonzero(
                _np.frombuffer(data.translate(_KEEP01_TABLE), dtype=_np.uint8)
            )
            return norm, offsets
        return normalize_latin1(data)

    def selections(self, data: bytes) -> List[Selection]:
        """Run S1–S4 over *data*; returns (value, orig_start, orig_end)
        per winnowed selection, in normalised-position order.

        Field-identical to the reference pipeline run on the decoded
        string: same hash values at the same positions, same
        ``original_span`` offsets (property-tested in
        ``tests/test_fp_kernel.py``).
        """
        norm, offsets = self.normalize(data)
        return self.selections_from(norm, offsets)

    def selections_from(self, norm: bytes, offsets) -> List[Selection]:
        """S2–S4 over an already-normalised buffer and its offset map.

        *offsets* is a list of ints (pure path) or an int ndarray
        (numpy path) — whatever :meth:`normalize` returned.
        """
        n = self._config.ngram_size
        if len(norm) < n:
            return []
        w = self._config.window_size
        scope = self._scope
        if self._use_numpy:
            if scope is None:
                values = self._hash_numpy(norm)
                positions = _winnow_numpy(values, w)
            else:
                with scope.timer("hash"):
                    values = self._hash_numpy(norm)
                with scope.timer("winnow"):
                    positions = _winnow_numpy(values, w)
            value_list = values[positions].tolist()
        else:
            if scope is None:
                value_list = self._hasher.hash_all_bytes(norm)
                positions = skipscan_winnow(value_list, w)
            else:
                with scope.timer("hash"):
                    value_list = self._hasher.hash_all_bytes(norm)
                with scope.timer("winnow"):
                    positions = skipscan_winnow(value_list, w)
            value_list = [value_list[p] for p in positions]
        last = n - 1
        if HAS_NUMPY and isinstance(offsets, _np.ndarray):
            pos = _np.asarray(positions, dtype=_np.int64)
            starts = offsets[pos].tolist()  # .tolist() → plain ints, so
            ends = (offsets[pos + last] + 1).tolist()  # spans stay JSON-able
            return list(zip(value_list, starts, ends))
        return [
            (value, offsets[p], offsets[p + last] + 1)
            for value, p in zip(value_list, positions)
        ]

    def _numpy_powers(self, length: int) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """Cached ``base**i`` and ``base**-i`` (mod 2**64) up to *length*."""
        state = self._np_state
        if state is not None and state[0].shape[0] >= length:
            return state[0][:length], state[1][:length]
        capacity = max(length, 4096)
        base = self._hasher.base
        fwd = _np.empty(capacity, dtype=_np.uint64)
        fwd[0] = 1
        fwd[1:] = base
        _np.cumprod(fwd, out=fwd)
        inv = _np.empty(capacity, dtype=_np.uint64)
        inv[0] = 1
        inv[1:] = pow(base, -1, 1 << 64)
        _np.cumprod(inv, out=inv)
        self._np_state = (fwd, inv)
        return fwd[:length], inv[:length]

    def _hash_numpy(self, norm: bytes) -> "_np.ndarray":
        """Every n-gram hash of *norm*, vectorised.

        With ``q[i] = d[i] * base**-i`` and ``c`` its cumulative sum
        (everything mod 2**64 via uint64 wraparound), the window hash is
        ``(c[i+n-1] - c[i-1]) * base**(i+n-1)``; masking to
        ``hash_bits`` afterwards is exact because 2**hash_bits divides
        2**64.
        """
        n = self._config.ngram_size
        d = _np.frombuffer(norm, dtype=_np.uint8).astype(_np.uint64)
        length = d.shape[0]
        fwd, inv = self._numpy_powers(length)
        c = _np.cumsum(d * inv)
        windowed = c[n - 1 :].copy()
        windowed[1:] -= c[: length - n]
        return (windowed * fwd[n - 1 :]) & _np.uint64(self._hasher.mask)
