"""Step S2 — Karp–Rabin rolling hashes over character n-grams.

The paper hashes every n-gram of the normalised text "using an efficient
hash function [Karp and Rabin 1987]". A Karp–Rabin hash treats the
n-gram as a number in base *b* modulo ``2**hash_bits`` and can slide one
character to the right in O(1): subtract the leading character's
contribution, multiply by the base, add the new character.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import FingerprintError

# A largish odd base keeps the low bits of the modular hash well mixed
# for ASCII inputs; the classic polynomial-hash choice.
_DEFAULT_BASE = 257


class KarpRabin:
    """Incremental Karp–Rabin hasher for fixed-length windows.

    Example:
        >>> kr = KarpRabin(ngram_size=3, hash_bits=32)
        >>> list(kr.hash_all("abcd")) == [kr.hash_one("abc"), kr.hash_one("bcd")]
        True
    """

    def __init__(self, ngram_size: int, hash_bits: int = 32, base: int = _DEFAULT_BASE) -> None:
        if ngram_size < 1:
            raise FingerprintError(f"ngram_size must be >= 1, got {ngram_size}")
        if not 8 <= hash_bits <= 64:
            raise FingerprintError(f"hash_bits must be in [8, 64], got {hash_bits}")
        self._n = ngram_size
        self._mask = (1 << hash_bits) - 1
        self._base = base
        # base**(n-1) mod 2**bits: the weight of the outgoing character.
        self._lead_weight = pow(base, ngram_size - 1, self._mask + 1)

    @property
    def ngram_size(self) -> int:
        return self._n

    def hash_one(self, ngram: Sequence) -> int:
        """Hash a single n-gram directly (non-incremental reference)."""
        if len(ngram) != self._n:
            raise FingerprintError(
                f"expected n-gram of length {self._n}, got {len(ngram)}"
            )
        h = 0
        for ch in ngram:
            h = (h * self._base + ord(ch)) & self._mask
        return h

    def roll(self, prev_hash: int, outgoing: str, incoming: str) -> int:
        """Slide the window one character: drop *outgoing*, add *incoming*."""
        h = (prev_hash - ord(outgoing) * self._lead_weight) & self._mask
        return (h * self._base + ord(incoming)) & self._mask

    def hash_all(self, text: str) -> Iterator[int]:
        """Yield the hash of every n-gram of *text*, left to right.

        Yields ``len(text) - ngram_size + 1`` values; nothing if the text
        is shorter than one n-gram.
        """
        if len(text) < self._n:
            return
        h = self.hash_one(text[: self._n])
        yield h
        for i in range(self._n, len(text)):
            h = self.roll(h, text[i - self._n], text[i])
            yield h
