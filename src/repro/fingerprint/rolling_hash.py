"""Step S2 — Karp–Rabin rolling hashes over character n-grams.

The paper hashes every n-gram of the normalised text "using an efficient
hash function [Karp and Rabin 1987]". A Karp–Rabin hash treats the
n-gram as a number in base *b* modulo ``2**hash_bits`` and can slide one
character to the right in O(1): subtract the leading character's
contribution, multiply by the base, add the new character.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.errors import FingerprintError

# A largish odd base keeps the low bits of the modular hash well mixed
# for ASCII inputs; the classic polynomial-hash choice.
_DEFAULT_BASE = 257


class KarpRabin:
    """Incremental Karp–Rabin hasher for fixed-length windows.

    Example:
        >>> kr = KarpRabin(ngram_size=3, hash_bits=32)
        >>> list(kr.hash_all("abcd")) == [kr.hash_one("abc"), kr.hash_one("bcd")]
        True
    """

    def __init__(self, ngram_size: int, hash_bits: int = 32, base: int = _DEFAULT_BASE) -> None:
        if ngram_size < 1:
            raise FingerprintError(f"ngram_size must be >= 1, got {ngram_size}")
        if not 8 <= hash_bits <= 64:
            raise FingerprintError(f"hash_bits must be in [8, 64], got {hash_bits}")
        self._n = ngram_size
        self._mask = (1 << hash_bits) - 1
        self._base = base
        # base**(n-1) mod 2**bits: the weight of the outgoing character.
        self._lead_weight = pow(base, ngram_size - 1, self._mask + 1)
        # Outgoing-byte contribution table for the bytes fast path:
        # byte value → byte * lead_weight (pre-masked).
        self._lead_table = [
            (b * self._lead_weight) & self._mask for b in range(256)
        ]
        # Exit table with the roll's multiply folded in:
        # (h - lead[o])*base + c  ==  h*base + exit[o] + c  (mod 2**bits),
        # so the byte loop does one multiply instead of two per step.
        self._exit_table = [
            (-t * base) & self._mask for t in self._lead_table
        ]

    @property
    def ngram_size(self) -> int:
        return self._n

    @property
    def base(self) -> int:
        return self._base

    @property
    def mask(self) -> int:
        return self._mask

    def hash_one(self, ngram: Sequence) -> int:
        """Hash a single n-gram directly (non-incremental reference)."""
        if len(ngram) != self._n:
            raise FingerprintError(
                f"expected n-gram of length {self._n}, got {len(ngram)}"
            )
        h = 0
        for ch in ngram:
            h = (h * self._base + ord(ch)) & self._mask
        return h

    def roll(self, prev_hash: int, outgoing: str, incoming: str) -> int:
        """Slide the window one character: drop *outgoing*, add *incoming*."""
        h = (prev_hash - ord(outgoing) * self._lead_weight) & self._mask
        return (h * self._base + ord(incoming)) & self._mask

    def hash_all(self, text: str) -> Iterator[int]:
        """Yield the hash of every n-gram of *text*, left to right.

        Yields ``len(text) - ngram_size + 1`` values; nothing if the text
        is shorter than one n-gram.
        """
        return iter(self.hash_all_list(text))

    def hash_all_list(self, text: str) -> List[int]:
        """Every n-gram hash of *text* as a list — the hot-path variant.

        When every code point fits in one byte the text is encoded to
        ``bytes`` (Latin-1 preserves ``ord``) and rolled with a
        precomputed outgoing-byte table, avoiding per-character ``ord``
        calls and method dispatch. Texts with wider code points fall
        back to the character-by-character roll; both produce identical
        hashes.
        """
        if len(text) < self._n:
            return []
        try:
            data = text.encode("latin-1")
        except UnicodeEncodeError:
            return self._hash_all_chars(text)
        return self.hash_all_bytes(data)

    def hash_all_bytes(self, data: bytes) -> List[int]:
        """Every n-gram hash of an already-encoded Latin-1 buffer.

        The kernel and repeated-fingerprint callers hold normalised
        ``bytes`` already; re-encoding per call (the old
        ``hash_all_list`` behaviour) wasted a full copy of the text.
        The roll runs inside a single list comprehension with the
        premultiplied exit table, the fastest shape CPython offers for
        this loop. Accepts ``bytes`` or ``bytearray``.
        """
        n = self._n
        if len(data) < n:
            return []
        base = self._base
        mask = self._mask
        h = 0
        for b in data[:n]:
            h = (h * base + b) & mask
        out = [h]
        exit_table = self._exit_table
        out += [
            h := (h * base + exit_table[o] + c) & mask
            for o, c in zip(data, memoryview(data)[n:])
        ]
        return out

    def _hash_all_chars(self, text: str) -> List[int]:
        """Character-path roll for texts with code points above 255."""
        n = self._n
        h = self.hash_one(text[:n])
        out = [h]
        append = out.append
        for i in range(n, len(text)):
            h = self.roll(h, text[i - n], text[i])
            append(h)
        return out
