"""Winnowing-based text fingerprinting (paper §4.1).

The pipeline has four steps, implemented by the submodules:

S1 :mod:`repro.fingerprint.normalize` — strip punctuation, whitespace and
   case so that superficial formatting changes do not perturb hashes.
S2 :mod:`repro.fingerprint.rolling_hash` — Karp–Rabin hashes over every
   character n-gram of the normalised text, computed incrementally.
S3/S4 :mod:`repro.fingerprint.winnowing` — slide a window of *w*
   consecutive n-gram hashes and keep the minimum hash per window.

:mod:`repro.fingerprint.fingerprint` packages the selected hashes, with
the source positions needed for passage attribution, into an immutable
:class:`Fingerprint` value.

:mod:`repro.fingerprint.kernel` fuses S1–S4 into batched C-level (and
optionally numpy-vectorised) passes for byte-narrow text;
:class:`Fingerprinter` dispatches to it automatically and the reference
submodules above remain the differential oracle.
"""

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.fingerprint import Fingerprint, FingerprintHash, Fingerprinter
from repro.fingerprint.kernel import HAS_NUMPY, IngestKernel, skipscan_winnow
from repro.fingerprint.ngram import ngram_hashes
from repro.fingerprint.normalize import NormalizedText, normalize
from repro.fingerprint.rolling_hash import KarpRabin
from repro.fingerprint.winnowing import select_winnowed, winnow

__all__ = [
    "FingerprintConfig",
    "Fingerprint",
    "FingerprintHash",
    "Fingerprinter",
    "HAS_NUMPY",
    "IngestKernel",
    "KarpRabin",
    "NormalizedText",
    "ngram_hashes",
    "normalize",
    "select_winnowed",
    "skipscan_winnow",
    "winnow",
]
