"""Incremental fingerprinting for append-style editing.

The paper notes (§4.3) that the disclosure algorithm "can operate in an
incremental fashion: if a user edits paragraph P by adding one hash h,
the algorithm's main loop only needs to inspect h". The missing piece
for a per-keystroke pipeline is computing that new hash without
re-fingerprinting the whole paragraph. :class:`IncrementalFingerprinter`
maintains the normalisation state, the Karp–Rabin stream, and the
winnowing deque across appends, so extending a paragraph by one
character costs O(1) amortised instead of O(paragraph).

Equivalence with the batch pipeline is exact (property-tested): at any
point, :meth:`current` returns the same fingerprint the batch
:class:`~repro.fingerprint.fingerprint.Fingerprinter` would produce for
the accumulated text.

Appends of byte-narrow (Latin-1) text stream through the fused ingest
kernel's primitives: each suffix is normalised with one
``bytes.translate`` pass, its offsets recovered with one ``compress``
pass, and only the *new* n-gram hashes are rolled — the retained tail
is never re-normalised or re-hashed. The first suffix containing a wide
code point permanently converts the state to the per-character path
(the conversion is a decode, not a recompute — hashes and selections
carry over untouched), so mixed documents degrade gracefully instead of
failing over per append.
"""

from __future__ import annotations

from collections import deque
from itertools import compress, count as icount
from typing import Deque, List, Set

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.fingerprint import Fingerprint, FingerprintHash
from repro.fingerprint.kernel import _DELETE_BYTES, _KEEP01_TABLE, _LOWER_TABLE
from repro.fingerprint.normalize import _is_kept
from repro.fingerprint.rolling_hash import KarpRabin


class IncrementalFingerprinter:
    """Maintains the fingerprint of a growing text."""

    def __init__(self, config: FingerprintConfig | None = None) -> None:
        self._config = config or FingerprintConfig()
        self._hasher = KarpRabin(
            ngram_size=self._config.ngram_size, hash_bits=self._config.hash_bits
        )
        self._original_length = 0
        # Byte mode streams appends through the kernel's translate
        # tables; the first wide-Unicode suffix converts to char mode
        # for good (config.use_kernel=False starts there).
        self._byte_mode = self._config.use_kernel
        self._norm_bytes = bytearray()
        # Normalised characters and their offsets into the original text
        # (char mode only; byte mode keeps `_norm_bytes` instead).
        self._norm_chars: List[str] = []
        self._offsets: List[int] = []
        # The full n-gram hash stream and the winnowing deque over it.
        self._values: List[int] = []
        self._window: Deque[int] = deque()
        # Selected positions (deque path) in order, deduplicated.
        self._selected: List[int] = []
        self._selected_set: Set[int] = set()
        # Materialised selections, mirroring _selected 1:1, so current()
        # never rebuilds FingerprintHash objects it already made; the
        # last Fingerprint is cached until a new position is selected.
        self._sel_fp: List[FingerprintHash] = []
        self._sel_hash_set: Set[int] = set()
        self._cached_fp: Fingerprint | None = None
        self._cached_sel_count = -1
        # Positions already counted by an append() return value; the
        # partial-window selection and the deque phase both report
        # through this set, so the count==window_size transition cannot
        # double-count the position both paths select.
        self._reported: Set[int] = set()

    @property
    def config(self) -> FingerprintConfig:
        return self._config

    @property
    def text_length(self) -> int:
        return self._original_length

    def append(self, suffix: str) -> int:
        """Extend the text; returns how many newly selected positions
        this append produced.

        The count covers the partial-window phase too: as soon as the
        text yields its first n-gram, :meth:`current` selects the
        rightmost-minimum hash, and that selection is reported here —
        not silently deferred until a full winnowing window exists. A
        position is counted at most once across all appends, so the
        return values reconcile with :meth:`current` at every prefix
        (including the transition at ``count == window_size``, where
        the deque selects the same position the partial scan did).
        """
        w = self._config.window_size
        base = self._original_length
        data = None
        if self._byte_mode:
            try:
                data = suffix.encode("latin-1")
            except UnicodeEncodeError:
                self._to_char_mode()
        if data is not None:
            # Streaming kernel path: batch-normalise the suffix and roll
            # only the new hashes; the retained tail is untouched.
            norm_new = data.translate(_LOWER_TABLE, _DELETE_BYTES)
            if norm_new:
                self._offsets.extend(
                    compress(icount(base), data.translate(_KEEP01_TABLE))
                )
                self._norm_bytes += norm_new
                self._extend_hashes_from_bytes()
        else:
            for i, ch in enumerate(suffix):
                if _is_kept(ch):
                    # Per produced character, as in batch normalize():
                    # str.lower() may expand one code point into several
                    # (U+0130 İ), and non-alphanumeric expansion products
                    # (the combining dot) are dropped.
                    for lowered in ch.lower():
                        if _is_kept(lowered):
                            self._norm_chars.append(lowered)
                            self._offsets.append(base + i)
                            self._new_ngram_hash()
        self._original_length += len(suffix)

        # Advance the winnowing deque over any values not yet consumed.
        before = len(self._selected)
        start = getattr(self, "_consumed", 0)
        n = self._config.ngram_size
        offsets = self._offsets
        for i in range(start, len(self._values)):
            value = self._values[i]
            while self._window and self._values[self._window[-1]] >= value:
                self._window.pop()
            self._window.append(i)
            if self._window[0] <= i - w:
                self._window.popleft()
            if i >= w - 1:
                pos = self._window[0]
                if not self._selected or self._selected[-1] != pos:
                    self._selected.append(pos)
                    self._selected_set.add(pos)
                    sel_value = self._values[pos]
                    self._sel_fp.append(
                        FingerprintHash(
                            sel_value, offsets[pos], offsets[pos + n - 1] + 1
                        )
                    )
                    self._sel_hash_set.add(sel_value)
        self._consumed = len(self._values)

        newly = 0
        count = len(self._values)
        if count and count <= w:
            # Partial window: the rightmost minimum is selected (same
            # rule as _selection_positions / the batch path).
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            if best not in self._reported:
                self._reported.add(best)
                newly += 1
        else:
            for pos in self._selected[before:]:
                if pos not in self._reported:
                    self._reported.add(pos)
                    newly += 1
        return newly

    def _to_char_mode(self) -> None:
        """Permanent byte→char conversion on the first wide suffix.

        Latin-1 decode restores the exact normalised characters, so the
        hash stream, deque, and selection state all remain valid — only
        the representation of the normalised text changes.
        """
        self._norm_chars = list(self._norm_bytes.decode("latin-1"))
        self._norm_bytes = bytearray()
        self._byte_mode = False

    def _extend_hashes_from_bytes(self) -> None:
        """Roll the n-gram hashes the last byte-append made possible.

        Hash ``j`` depends only on ``norm[j : j+n]``, so hashing the
        slice from the first missing position yields exactly the missing
        suffix of the stream — one O(n) warm-up, then O(1) per new hash.
        """
        n = self._config.ngram_size
        have = len(self._values)
        if len(self._norm_bytes) - have < n:
            return
        tail = bytes(self._norm_bytes[have:])
        self._values += self._hasher.hash_all_bytes(tail)

    def _new_ngram_hash(self) -> None:
        n = self._config.ngram_size
        if len(self._norm_chars) < n:
            return
        if not self._values:
            first = "".join(self._norm_chars[:n])
            self._values.append(self._hasher.hash_one(first))
        else:
            outgoing = self._norm_chars[len(self._values) - 1]
            incoming = self._norm_chars[-1]
            self._values.append(
                self._hasher.roll(self._values[-1], outgoing, incoming)
            )

    def _selection_positions(self) -> List[int]:
        """Current winnowed positions, handling the short-text cases."""
        w = self._config.window_size
        count = len(self._values)
        if count == 0:
            return []
        if count <= w:
            # Partial window: rightmost minimum, like the batch path.
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            return [best]
        return self._selected

    def current(self) -> Fingerprint:
        """The fingerprint of the text accumulated so far."""
        n = self._config.ngram_size
        w = self._config.window_size
        if len(self._values) > w:
            # Deque phase: selections only ever append, so the last
            # Fingerprint stays valid until _sel_fp grows. Per-keystroke
            # callers (the §4.3 pipeline) hit the cache on most presses.
            if (
                self._cached_fp is not None
                and self._cached_sel_count == len(self._sel_fp)
            ):
                return self._cached_fp
            fp = Fingerprint(
                hashes=frozenset(self._sel_hash_set),
                selections=tuple(self._sel_fp),
                config=self._config,
            )
            self._cached_fp = fp
            self._cached_sel_count = len(self._sel_fp)
            return fp
        # Short-text phase: the single rightmost-minimum selection can
        # move on any keystroke, so it is recomputed (O(window) at most).
        positions = self._selection_positions()
        selections = []
        for pos in positions:
            orig_start = self._offsets[pos]
            orig_end = self._offsets[pos + n - 1] + 1
            selections.append(
                FingerprintHash(self._values[pos], orig_start, orig_end)
            )
        return Fingerprint(
            hashes=frozenset(self._values[pos] for pos in positions),
            selections=tuple(selections),
            config=self._config,
        )
