"""Incremental fingerprinting for append-style editing.

The paper notes (§4.3) that the disclosure algorithm "can operate in an
incremental fashion: if a user edits paragraph P by adding one hash h,
the algorithm's main loop only needs to inspect h". The missing piece
for a per-keystroke pipeline is computing that new hash without
re-fingerprinting the whole paragraph. :class:`IncrementalFingerprinter`
maintains the normalisation state, the Karp–Rabin stream, and the
winnowing deque across appends, so extending a paragraph by one
character costs O(1) amortised instead of O(paragraph).

Equivalence with the batch pipeline is exact (property-tested): at any
point, :meth:`current` returns the same fingerprint the batch
:class:`~repro.fingerprint.fingerprint.Fingerprinter` would produce for
the accumulated text.

Appends of byte-narrow (Latin-1) text stream through the fused ingest
kernel's primitives: each suffix is normalised with one
``bytes.translate`` pass, its offsets recovered with one ``compress``
pass, and only the *new* n-gram hashes are rolled — the retained tail
is never re-normalised or re-hashed. The first suffix containing a wide
code point permanently converts the state to the per-character path
(the conversion is a decode, not a recompute — hashes and selections
carry over untouched), so mixed documents degrade gracefully instead of
failing over per append.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from itertools import compress, count as icount
from typing import Deque, List, Set

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.fingerprint import Fingerprint, FingerprintHash
from repro.fingerprint.kernel import (
    _DELETE_BYTES,
    _KEEP01_TABLE,
    _LOWER_TABLE,
    skipscan_winnow,
)
from repro.fingerprint.normalize import _is_kept
from repro.fingerprint.rolling_hash import KarpRabin


class IncrementalFingerprinter:
    """Maintains the fingerprint of a growing text."""

    def __init__(self, config: FingerprintConfig | None = None) -> None:
        self._config = config or FingerprintConfig()
        self._hasher = KarpRabin(
            ngram_size=self._config.ngram_size, hash_bits=self._config.hash_bits
        )
        self._original_length = 0
        # Byte mode streams appends through the kernel's translate
        # tables; the first wide-Unicode suffix converts to char mode
        # for good (config.use_kernel=False starts there).
        self._byte_mode = self._config.use_kernel
        self._norm_bytes = bytearray()
        # Normalised characters and their offsets into the original text
        # (char mode only; byte mode keeps `_norm_bytes` instead).
        self._norm_chars: List[str] = []
        self._offsets: List[int] = []
        # The full n-gram hash stream and the winnowing deque over it.
        self._values: List[int] = []
        self._window: Deque[int] = deque()
        # Selected positions (deque path) in order, deduplicated.
        self._selected: List[int] = []
        self._selected_set: Set[int] = set()
        # Materialised selections, mirroring _selected 1:1, so current()
        # never rebuilds FingerprintHash objects it already made; the
        # last Fingerprint is cached until a new position is selected.
        self._sel_fp: List[FingerprintHash] = []
        self._sel_hash_set: Set[int] = set()
        self._cached_fp: Fingerprint | None = None
        self._cached_sel_count = -1
        # Positions already counted by an append() return value; the
        # partial-window selection and the deque phase both report
        # through this set, so the count==window_size transition cannot
        # double-count the position both paths select.
        self._reported: Set[int] = set()

    @property
    def config(self) -> FingerprintConfig:
        return self._config

    @property
    def text_length(self) -> int:
        return self._original_length

    def append(self, suffix: str) -> int:
        """Extend the text; returns how many newly selected positions
        this append produced.

        The count covers the partial-window phase too: as soon as the
        text yields its first n-gram, :meth:`current` selects the
        rightmost-minimum hash, and that selection is reported here —
        not silently deferred until a full winnowing window exists. A
        position is counted at most once across all appends, so the
        return values reconcile with :meth:`current` at every prefix
        (including the transition at ``count == window_size``, where
        the deque selects the same position the partial scan did).
        """
        w = self._config.window_size
        base = self._original_length
        data = None
        if self._byte_mode:
            try:
                data = suffix.encode("latin-1")
            except UnicodeEncodeError:
                self._to_char_mode()
        if data is not None:
            # Streaming kernel path: batch-normalise the suffix and roll
            # only the new hashes; the retained tail is untouched.
            norm_new = data.translate(_LOWER_TABLE, _DELETE_BYTES)
            if norm_new:
                self._offsets.extend(
                    compress(icount(base), data.translate(_KEEP01_TABLE))
                )
                self._norm_bytes += norm_new
                self._extend_hashes_from_bytes()
        else:
            for i, ch in enumerate(suffix):
                if _is_kept(ch):
                    # Per produced character, as in batch normalize():
                    # str.lower() may expand one code point into several
                    # (U+0130 İ), and non-alphanumeric expansion products
                    # (the combining dot) are dropped.
                    for lowered in ch.lower():
                        if _is_kept(lowered):
                            self._norm_chars.append(lowered)
                            self._offsets.append(base + i)
                            self._new_ngram_hash()
        self._original_length += len(suffix)

        # Advance the winnowing deque over any values not yet consumed.
        before = len(self._selected)
        start = getattr(self, "_consumed", 0)
        n = self._config.ngram_size
        offsets = self._offsets
        for i in range(start, len(self._values)):
            value = self._values[i]
            while self._window and self._values[self._window[-1]] >= value:
                self._window.pop()
            self._window.append(i)
            if self._window[0] <= i - w:
                self._window.popleft()
            if i >= w - 1:
                pos = self._window[0]
                if not self._selected or self._selected[-1] != pos:
                    self._selected.append(pos)
                    self._selected_set.add(pos)
                    sel_value = self._values[pos]
                    self._sel_fp.append(
                        FingerprintHash(
                            sel_value, offsets[pos], offsets[pos + n - 1] + 1
                        )
                    )
                    self._sel_hash_set.add(sel_value)
        self._consumed = len(self._values)

        newly = 0
        count = len(self._values)
        if count and count <= w:
            # Partial window: the rightmost minimum is selected (same
            # rule as _selection_positions / the batch path).
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            if best not in self._reported:
                self._reported.add(best)
                newly += 1
        else:
            for pos in self._selected[before:]:
                if pos not in self._reported:
                    self._reported.add(pos)
                    newly += 1
        return newly

    def delete(self, start: int, end: int) -> int:
        """Remove ``text[start:end]``; equivalent to an empty replace."""
        return self.replace(start, end, "")

    def replace(self, start: int, end: int, new_text: str) -> int:
        """Splice ``new_text`` over ``text[start:end]`` edit-locally.

        Coordinates are *original-text* indices, like the spans in
        :class:`FingerprintHash`. Only the ``k+w-1``-character dirty
        radius around the edit is re-translated, re-hashed, and
        re-winnowed (winnowing locality: a hash at position ``j`` covers
        ``norm[j:j+n]`` and a selection at ``p`` is decided by windows
        ``[p-w+1, p]``, so values outside ``[lo-n+1, lo+m_new)`` and
        selections outside ``[lo-n-w+2, lo+m_new+w-2]`` are untouched);
        everything else — hash values, selected positions, materialised
        selections — is spliced, with tail spans shifted by the edit's
        length delta. Equivalence with batch re-fingerprinting of the
        edited text is exact (property-tested against the reference
        pipeline, full Unicode included).

        Returns the number of selection triples present after the edit
        that were not present before — the edit-path analogue of
        :meth:`append`'s newly-selected count.
        """
        if not 0 <= start <= end <= self._original_length:
            raise ValueError(
                f"replace range [{start}, {end}) outside text of length "
                f"{self._original_length}"
            )
        if start == end and not new_text:
            return 0
        if start == end == self._original_length:
            # Pure append: the streaming path is already edit-local and
            # counts its own newly-selected positions — for a trailing
            # edit no existing triple can disappear or shift, so that
            # count equals the triple diff (property-tested). Delegating
            # keeps the keystroke hot path free of the O(selections)
            # before/after set comparison below.
            return self.append(new_text)

        n = self._config.ngram_size
        w = self._config.window_size
        offsets = self._offsets
        before = set(self.current().selections)
        lo = bisect_left(offsets, start)
        hi = bisect_left(offsets, end)

        # Normalise the replacement chunk alone (kernel tables in byte
        # mode; a wide chunk converts the state to char mode for good,
        # exactly like a wide append).
        data = None
        if self._byte_mode:
            try:
                data = new_text.encode("latin-1")
            except UnicodeEncodeError:
                self._to_char_mode()
        if data is not None:
            norm_new: object = data.translate(_LOWER_TABLE, _DELETE_BYTES)
            new_offsets = list(
                compress(icount(start), data.translate(_KEEP01_TABLE))
            )
        else:
            chars: List[str] = []
            new_offsets = []
            for i, ch in enumerate(new_text):
                if _is_kept(ch):
                    for lowered in ch.lower():
                        if _is_kept(lowered):
                            chars.append(lowered)
                            new_offsets.append(start + i)
            norm_new = chars
        m_old = hi - lo
        m_new = len(new_offsets)
        delta_orig = len(new_text) - (end - start)

        # Splice the normalised stream and the offset map; tail offsets
        # shift by the original-length delta.
        if self._byte_mode:
            self._norm_bytes[lo:hi] = norm_new  # type: ignore[arg-type]
            norm_len = len(self._norm_bytes)
        else:
            self._norm_chars[lo:hi] = norm_new  # type: ignore[assignment]
            norm_len = len(self._norm_chars)
        offsets[lo:hi] = new_offsets
        if delta_orig:
            tail_at = lo + m_new
            offsets[tail_at:] = [o + delta_orig for o in offsets[tail_at:]]
        self._original_length += delta_orig

        # Re-hash the dirty radius only: hash j covers norm[j:j+n], so
        # the edit perturbs exactly positions [lo-n+1, lo+m_new).
        old_values = self._values
        v_old = len(old_values)
        v_new = max(0, norm_len - n + 1)
        d0 = max(0, lo - n + 1)
        d1 = min(v_new, lo + m_new)
        if d1 > d0:
            sl_end = min(norm_len, d1 + n - 1)
            if self._byte_mode:
                dirty = self._hasher.hash_all_bytes(
                    bytes(self._norm_bytes[d0:sl_end])
                )
            else:
                dirty = self._hasher.hash_all_list(
                    "".join(self._norm_chars[d0:sl_end])
                )
        else:
            dirty = []
        values = old_values[:d0] + dirty + old_values[lo + m_old :]
        self._values = values

        # Splice the winnow selection. Positions p <= d0-w are decided
        # entirely by clean prefix windows; positions p >= lo+m_new+w-1
        # entirely by clean (shifted) tail windows; the gray zone in
        # between is re-winnowed with the kernel's skip-scan over just
        # enough values to cover every window that touches it.
        shift = m_new - m_old
        if v_old <= w or v_new <= w:
            # Too short for the retention argument (the deque phase was
            # not — or is no longer — fully populated): rebuild.
            new_selected = skipscan_winnow(values, w) if v_new >= w else []
            new_sel_fp = [
                FingerprintHash(values[p], offsets[p], offsets[p + n - 1] + 1)
                for p in new_selected
            ]
        else:
            gray_lo = max(0, d0 - w + 1)
            gray_hi = min(v_new - 1, lo + m_new + w - 2)
            pre_cut = bisect_left(self._selected, gray_lo)
            tail_cut = bisect_left(self._selected, lo + m_old + w - 1)
            s0 = max(0, gray_lo - w + 1)
            s1 = min(v_new, gray_hi + w)
            if gray_hi >= gray_lo and s1 - s0 >= w:
                gray = [
                    s0 + p
                    for p in skipscan_winnow(values[s0:s1], w)
                    if gray_lo <= s0 + p <= gray_hi
                ]
            else:
                gray = []
            new_selected = (
                self._selected[:pre_cut]
                + gray
                + [p + shift for p in self._selected[tail_cut:]]
            )
            tail_fp = self._sel_fp[tail_cut:]
            if delta_orig:
                tail_fp = [
                    FingerprintHash(
                        f.value,
                        f.orig_start + delta_orig,
                        f.orig_end + delta_orig,
                    )
                    for f in tail_fp
                ]
            new_sel_fp = (
                self._sel_fp[:pre_cut]
                + [
                    FingerprintHash(
                        values[p], offsets[p], offsets[p + n - 1] + 1
                    )
                    for p in gray
                ]
                + tail_fp
            )

        self._selected = new_selected
        self._sel_fp = new_sel_fp
        self._selected_set = set(new_selected)
        self._sel_hash_set = {f.value for f in new_sel_fp}
        self._cached_fp = None
        self._cached_sel_count = -1

        # Rebuild the streaming state so later append()s continue
        # seamlessly: the window-min deque depends only on the last w
        # values, so replaying them restores it exactly.
        window: Deque[int] = deque()
        for i in range(max(0, v_new - w), v_new):
            value = values[i]
            while window and values[window[-1]] >= value:
                window.pop()
            window.append(i)
        self._window = window
        self._consumed = v_new
        if v_new and v_new <= w:
            best = 0
            for i in range(1, v_new):
                if values[i] <= values[best]:
                    best = i
            self._reported = {best}
        else:
            self._reported = set(new_selected)

        return sum(1 for s in self.current().selections if s not in before)

    def _to_char_mode(self) -> None:
        """Permanent byte→char conversion on the first wide suffix.

        Latin-1 decode restores the exact normalised characters, so the
        hash stream, deque, and selection state all remain valid — only
        the representation of the normalised text changes.
        """
        self._norm_chars = list(self._norm_bytes.decode("latin-1"))
        self._norm_bytes = bytearray()
        self._byte_mode = False

    def _extend_hashes_from_bytes(self) -> None:
        """Roll the n-gram hashes the last byte-append made possible.

        Hash ``j`` depends only on ``norm[j : j+n]``, so hashing the
        slice from the first missing position yields exactly the missing
        suffix of the stream — one O(n) warm-up, then O(1) per new hash.
        """
        n = self._config.ngram_size
        have = len(self._values)
        if len(self._norm_bytes) - have < n:
            return
        tail = bytes(self._norm_bytes[have:])
        self._values += self._hasher.hash_all_bytes(tail)

    def _new_ngram_hash(self) -> None:
        n = self._config.ngram_size
        if len(self._norm_chars) < n:
            return
        if not self._values:
            first = "".join(self._norm_chars[:n])
            self._values.append(self._hasher.hash_one(first))
        else:
            outgoing = self._norm_chars[len(self._values) - 1]
            incoming = self._norm_chars[-1]
            self._values.append(
                self._hasher.roll(self._values[-1], outgoing, incoming)
            )

    def _selection_positions(self) -> List[int]:
        """Current winnowed positions, handling the short-text cases."""
        w = self._config.window_size
        count = len(self._values)
        if count == 0:
            return []
        if count <= w:
            # Partial window: rightmost minimum, like the batch path.
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            return [best]
        return self._selected

    def current(self) -> Fingerprint:
        """The fingerprint of the text accumulated so far."""
        n = self._config.ngram_size
        w = self._config.window_size
        if len(self._values) > w:
            # Deque phase: selections only ever append, so the last
            # Fingerprint stays valid until _sel_fp grows. Per-keystroke
            # callers (the §4.3 pipeline) hit the cache on most presses.
            if (
                self._cached_fp is not None
                and self._cached_sel_count == len(self._sel_fp)
            ):
                return self._cached_fp
            fp = Fingerprint(
                hashes=frozenset(self._sel_hash_set),
                selections=tuple(self._sel_fp),
                config=self._config,
            )
            self._cached_fp = fp
            self._cached_sel_count = len(self._sel_fp)
            return fp
        # Short-text phase: the single rightmost-minimum selection can
        # move on any keystroke, so it is recomputed (O(window) at most).
        positions = self._selection_positions()
        selections = []
        for pos in positions:
            orig_start = self._offsets[pos]
            orig_end = self._offsets[pos + n - 1] + 1
            selections.append(
                FingerprintHash(self._values[pos], orig_start, orig_end)
            )
        return Fingerprint(
            hashes=frozenset(self._values[pos] for pos in positions),
            selections=tuple(selections),
            config=self._config,
        )


def _split_edit(old: str, new: str):
    """Locate the edited middle of *old* → *new* as ``(start, end, repl)``.

    Strips the longest common prefix and (non-overlapping) common
    suffix, so ``new == old[:start] + repl + old[end:]``. The scan is
    block-wise — slice equality is a C-level memcmp — so mirroring a
    keystroke into a multi-kilobyte paragraph costs a few microseconds,
    not a per-character Python loop. Returns ``None`` when the strings
    are equal.
    """
    if old == new:
        return None
    len_old, len_new = len(old), len(new)
    lo = 0
    limit = min(len_old, len_new)
    step = 256
    while step:
        while lo + step <= limit and old[lo : lo + step] == new[lo : lo + step]:
            lo += step
        step >>= 1
    end_old, end_new = len_old, len_new
    step = 256
    while step:
        while (
            end_old - step >= lo
            and end_new - step >= lo
            and old[end_old - step : end_old] == new[end_new - step : end_new]
        ):
            end_old -= step
            end_new -= step
        step >>= 1
    return lo, end_old, new[lo:end_new]


class EditBuffer:
    """Mirror of one editable paragraph plus its delta fingerprint state.

    The delta dispatch primitive (DESIGN.md §13): callers hand it the
    paragraph's *current full text* after every edit — exactly what the
    plug-in reads back from the DOM — and :meth:`update` diffs it
    against the mirror, applies the minimal
    :meth:`IncrementalFingerprinter.replace` splice, and returns the
    fingerprint. A keystroke therefore costs one memcmp-speed diff plus
    an edit-local re-hash instead of a full pipeline pass, and the
    result is field-identical to batch fingerprinting (the incremental
    differential suites prove it).

    Because the mirror is always assigned from the text being
    fingerprinted, it cannot drift: a text the buffer has never seen
    simply diffs to a larger splice (worst case the whole paragraph).
    """

    __slots__ = ("_config", "_inc", "_text", "delta_edits", "full_builds")

    def __init__(
        self, config: FingerprintConfig | None = None, text: str = ""
    ) -> None:
        self._config = config or FingerprintConfig()
        self._inc = IncrementalFingerprinter(self._config)
        self._text = text
        #: Edits applied as splices vs. states built from scratch —
        #: surfaced by plug-in stats so delta coverage is observable.
        self.delta_edits = 0
        self.full_builds = 1
        if text:
            self._inc.append(text)

    @property
    def text(self) -> str:
        return self._text

    @property
    def config(self) -> FingerprintConfig:
        return self._config

    def update(self, new_text: str) -> Fingerprint:
        """Bring the mirror to *new_text*; return its fingerprint."""
        edit = _split_edit(self._text, new_text)
        if edit is not None:
            start, end, replacement = edit
            self._inc.replace(start, end, replacement)
            self._text = new_text
            self.delta_edits += 1
        return self._inc.current()

    def current(self) -> Fingerprint:
        """Fingerprint of the mirrored text (no edit applied)."""
        return self._inc.current()
