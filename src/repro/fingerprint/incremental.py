"""Incremental fingerprinting for append-style editing.

The paper notes (§4.3) that the disclosure algorithm "can operate in an
incremental fashion: if a user edits paragraph P by adding one hash h,
the algorithm's main loop only needs to inspect h". The missing piece
for a per-keystroke pipeline is computing that new hash without
re-fingerprinting the whole paragraph. :class:`IncrementalFingerprinter`
maintains the normalisation state, the Karp–Rabin stream, and the
winnowing deque across appends, so extending a paragraph by one
character costs O(1) amortised instead of O(paragraph).

Equivalence with the batch pipeline is exact (property-tested): at any
point, :meth:`current` returns the same fingerprint the batch
:class:`~repro.fingerprint.fingerprint.Fingerprinter` would produce for
the accumulated text.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set

from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.fingerprint import Fingerprint, FingerprintHash
from repro.fingerprint.normalize import _is_kept
from repro.fingerprint.rolling_hash import KarpRabin


class IncrementalFingerprinter:
    """Maintains the fingerprint of a growing text."""

    def __init__(self, config: FingerprintConfig | None = None) -> None:
        self._config = config or FingerprintConfig()
        self._hasher = KarpRabin(
            ngram_size=self._config.ngram_size, hash_bits=self._config.hash_bits
        )
        self._original_length = 0
        # Normalised characters and their offsets into the original text.
        self._norm_chars: List[str] = []
        self._offsets: List[int] = []
        # The full n-gram hash stream and the winnowing deque over it.
        self._values: List[int] = []
        self._window: Deque[int] = deque()
        # Selected positions (deque path) in order, deduplicated.
        self._selected: List[int] = []
        self._selected_set: Set[int] = set()
        # Positions already counted by an append() return value; the
        # partial-window selection and the deque phase both report
        # through this set, so the count==window_size transition cannot
        # double-count the position both paths select.
        self._reported: Set[int] = set()

    @property
    def config(self) -> FingerprintConfig:
        return self._config

    @property
    def text_length(self) -> int:
        return self._original_length

    def append(self, suffix: str) -> int:
        """Extend the text; returns how many newly selected positions
        this append produced.

        The count covers the partial-window phase too: as soon as the
        text yields its first n-gram, :meth:`current` selects the
        rightmost-minimum hash, and that selection is reported here —
        not silently deferred until a full winnowing window exists. A
        position is counted at most once across all appends, so the
        return values reconcile with :meth:`current` at every prefix
        (including the transition at ``count == window_size``, where
        the deque selects the same position the partial scan did).
        """
        w = self._config.window_size
        base = self._original_length
        for i, ch in enumerate(suffix):
            if _is_kept(ch):
                # Per produced character, as in batch normalize():
                # str.lower() may expand one code point into several
                # (U+0130 İ), and non-alphanumeric expansion products
                # (the combining dot) are dropped.
                for lowered in ch.lower():
                    if _is_kept(lowered):
                        self._norm_chars.append(lowered)
                        self._offsets.append(base + i)
                        self._new_ngram_hash()
        self._original_length += len(suffix)

        # Advance the winnowing deque over any values not yet consumed.
        before = len(self._selected)
        start = getattr(self, "_consumed", 0)
        for i in range(start, len(self._values)):
            value = self._values[i]
            while self._window and self._values[self._window[-1]] >= value:
                self._window.pop()
            self._window.append(i)
            if self._window[0] <= i - w:
                self._window.popleft()
            if i >= w - 1:
                pos = self._window[0]
                if not self._selected or self._selected[-1] != pos:
                    self._selected.append(pos)
                    self._selected_set.add(pos)
        self._consumed = len(self._values)

        newly = 0
        count = len(self._values)
        if count and count <= w:
            # Partial window: the rightmost minimum is selected (same
            # rule as _selection_positions / the batch path).
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            if best not in self._reported:
                self._reported.add(best)
                newly += 1
        else:
            for pos in self._selected[before:]:
                if pos not in self._reported:
                    self._reported.add(pos)
                    newly += 1
        return newly

    def _new_ngram_hash(self) -> None:
        n = self._config.ngram_size
        if len(self._norm_chars) < n:
            return
        if not self._values:
            first = "".join(self._norm_chars[:n])
            self._values.append(self._hasher.hash_one(first))
        else:
            outgoing = self._norm_chars[len(self._values) - 1]
            incoming = self._norm_chars[-1]
            self._values.append(
                self._hasher.roll(self._values[-1], outgoing, incoming)
            )

    def _selection_positions(self) -> List[int]:
        """Current winnowed positions, handling the short-text cases."""
        w = self._config.window_size
        count = len(self._values)
        if count == 0:
            return []
        if count <= w:
            # Partial window: rightmost minimum, like the batch path.
            best = 0
            for i in range(1, count):
                if self._values[i] <= self._values[best]:
                    best = i
            return [best]
        return self._selected

    def current(self) -> Fingerprint:
        """The fingerprint of the text accumulated so far."""
        n = self._config.ngram_size
        positions = self._selection_positions()
        selections = []
        for pos in positions:
            orig_start = self._offsets[pos]
            orig_end = self._offsets[pos + n - 1] + 1
            selections.append(
                FingerprintHash(self._values[pos], orig_start, orig_end)
            )
        return Fingerprint(
            hashes=frozenset(self._values[pos] for pos in positions),
            selections=tuple(selections),
            config=self._config,
        )
