"""Fingerprinting configuration.

The paper's evaluation (§6.1) configures 32-bit hashes over n-grams of
15 characters with a window of 30. The winnowing guarantee (Schleimer et
al. 2003) follows from these two parameters: any shared normalised
substring of at least ``noise_threshold = ngram_size + window_size - 1``
characters produces at least one shared fingerprint hash, and no shared
substring shorter than ``ngram_size`` characters is ever detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FingerprintError


@dataclass(frozen=True)
class FingerprintConfig:
    """Parameters of the winnowing fingerprinter.

    Attributes:
        ngram_size: length in characters of each hashed n-gram (paper: 15).
        window_size: number of consecutive n-gram hashes per winnowing
            window (paper: 30).
        hash_bits: width of the Karp–Rabin hash values (paper: 32).
        use_kernel: dispatch byte-narrow (Latin-1) text to the fused
            ingest kernel (:mod:`repro.fingerprint.kernel`); wide text
            always takes the reference character path. The kernel is
            proven hash-identical to the reference pipeline, so this is
            a performance switch, not a semantic one — it is excluded
            from equality/hash so fingerprints computed either way
            compare as same-config.
    """

    ngram_size: int = 15
    window_size: int = 30
    hash_bits: int = 32
    use_kernel: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if self.ngram_size < 1:
            raise FingerprintError(f"ngram_size must be >= 1, got {self.ngram_size}")
        if self.window_size < 1:
            raise FingerprintError(f"window_size must be >= 1, got {self.window_size}")
        if not 8 <= self.hash_bits <= 64:
            raise FingerprintError(f"hash_bits must be in [8, 64], got {self.hash_bits}")

    @property
    def noise_threshold(self) -> int:
        """Shortest shared normalised substring guaranteed to be detected.

        Two texts sharing a normalised run of at least this many
        characters are guaranteed to share at least one fingerprint hash.
        """
        return self.ngram_size + self.window_size - 1

    @property
    def guarantee_threshold(self) -> int:
        """Alias of :attr:`noise_threshold` using the paper's terminology."""
        return self.noise_threshold


#: Configuration used throughout the paper's evaluation (§6.1).
PAPER_CONFIG = FingerprintConfig(ngram_size=15, window_size=30, hash_bits=32)

#: A small configuration convenient for unit tests and worked examples.
TINY_CONFIG = FingerprintConfig(ngram_size=6, window_size=3, hash_bits=32)
