"""Step S1 — text normalisation.

The paper normalises a text segment "by removing punctuation, whitespace
and character case", e.g. ``"Hello World!"`` becomes ``"helloworld"``.
Because disclosure attribution must point back into the *original* text
(paper §4.1: "the location of the corresponding source text for each
hash ... is also stored"), normalisation keeps a position map from every
normalised character back to its offset in the original string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def _is_kept(ch: str) -> bool:
    """A character survives normalisation iff it is alphanumeric.

    This removes punctuation and whitespace in one predicate; Unicode
    letters and digits are kept so non-ASCII prose fingerprints cleanly.
    """
    return ch.isalnum()


@dataclass(frozen=True)
class NormalizedText:
    """Normalised text plus a map back to original character offsets.

    Attributes:
        text: the normalised (lowercased, alphanumeric-only) string.
        offsets: for each normalised character, its index in the original
            string. ``len(offsets) == len(text)``.
        original_length: length of the original input string.
    """

    text: str
    offsets: Tuple[int, ...] = field(repr=False)
    original_length: int = 0

    def original_span(self, start: int, end: int) -> Tuple[int, int]:
        """Map a half-open normalised span to an original-text span.

        Returns a half-open ``(orig_start, orig_end)`` interval covering
        the original characters that produced ``text[start:end]``.
        """
        if not 0 <= start < end <= len(self.text):
            raise IndexError(f"invalid normalised span [{start}, {end})")
        return self.offsets[start], self.offsets[end - 1] + 1


def normalize(text: str) -> NormalizedText:
    """Normalise *text* per step S1, keeping the offset map.

    Lowercasing is per produced character, not per input character:
    ``str.lower()`` may expand one code point into several (U+0130 İ
    lowers to ``'i'`` + U+0307 combining dot above), so each expansion
    product is filtered through the keep predicate and recorded with
    its own offset entry — the ``len(offsets) == len(text)`` invariant
    holds for every input. Products that are not alphanumeric (the
    combining dot) are dropped, which also keeps normalisation
    idempotent: every output character survives a second pass
    unchanged.

    >>> normalize("Hello World!").text
    'helloworld'
    >>> normalize("İstanbul").text
    'istanbul'
    """
    kept_chars = []
    offsets = []
    for i, ch in enumerate(text):
        if _is_kept(ch):
            for lowered in ch.lower():
                if _is_kept(lowered):
                    kept_chars.append(lowered)
                    offsets.append(i)
    return NormalizedText(
        text="".join(kept_chars),
        offsets=tuple(offsets),
        original_length=len(text),
    )
