"""Exact-match tracking for short secrets (paper §4.4).

"Imprecise data flow tracking is not effective at a finer granularity
than paragraphs ... Short but sensitive text, however, is typically
only relevant from a confidentiality perspective in specific scenarios,
e.g. when the text is used as a password. For such specific use cases,
for example password reuse prevention, specialised systems which rely
on data equality only are more effective."

:class:`ShortSecretTracker` is that specialised complement. Secrets are
never stored in the clear: each registration keeps an HMAC digest of
the normalised secret plus a cheap Karp–Rabin prefilter hash, and
scanning slides over the normalised text confirming prefilter hits
against the digest. The plug-in can run it alongside the similarity
engine so that a pasted password is caught even though it is far too
short to fingerprint.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import DisclosureError
from repro.fingerprint.normalize import normalize
from repro.fingerprint.rolling_hash import KarpRabin

#: Secrets shorter than this (normalised) are rejected: matching them
#: exactly would fire on everyday prose constantly.
MIN_SECRET_LENGTH = 6


@dataclass(frozen=True)
class SecretMatch:
    """One exact occurrence of a registered secret in scanned text."""

    secret_id: str
    start: int
    end: int


class ShortSecretTracker:
    """Equality-only detector for registered short secrets."""

    def __init__(self, key: str = "short-secret-tracker") -> None:
        self._key = key.encode("utf-8")
        # normalised length -> {prefilter hash -> [(secret_id, digest)]}
        self._by_length: Dict[int, Dict[int, List[Tuple[str, bytes]]]] = {}
        self._ids: Set[str] = set()

    def __len__(self) -> int:
        return len(self._ids)

    def _digest(self, normalised: str) -> bytes:
        return hmac.new(self._key, normalised.encode("utf-8"), hashlib.sha256).digest()

    def register(self, secret_id: str, secret: str) -> None:
        """Register a secret; only digests are retained."""
        if secret_id in self._ids:
            raise DisclosureError(f"secret id already registered: {secret_id!r}")
        normalised = normalize(secret).text
        if len(normalised) < MIN_SECRET_LENGTH:
            raise DisclosureError(
                f"secret too short to track exactly "
                f"({len(normalised)} < {MIN_SECRET_LENGTH} normalised chars)"
            )
        hasher = KarpRabin(ngram_size=len(normalised))
        prefilter = hasher.hash_one(normalised)
        bucket = self._by_length.setdefault(len(normalised), {})
        bucket.setdefault(prefilter, []).append(
            (secret_id, self._digest(normalised))
        )
        self._ids.add(secret_id)

    def scan(self, text: str) -> List[SecretMatch]:
        """Find every registered secret occurring exactly in *text*.

        Matching is over normalised text (case/punctuation-insensitive,
        like the rest of the system); reported spans index the original
        string via the normalisation offset map.
        """
        normalised = normalize(text)
        matches: List[SecretMatch] = []
        for length, bucket in self._by_length.items():
            if len(normalised.text) < length:
                continue
            hasher = KarpRabin(ngram_size=length)
            for pos, value in enumerate(hasher.hash_all(normalised.text)):
                candidates = bucket.get(value)
                if not candidates:
                    continue
                window = normalised.text[pos:pos + length]
                digest = self._digest(window)
                for secret_id, expected in candidates:
                    if hmac.compare_digest(digest, expected):
                        start, end = normalised.original_span(pos, pos + length)
                        matches.append(
                            SecretMatch(secret_id=secret_id, start=start, end=end)
                        )
        matches.sort(key=lambda m: (m.start, m.secret_id))
        return matches

    def contains_secret(self, text: str) -> bool:
        return bool(self.scan(text))
