"""The disclosure engine: Algorithm 1 plus incremental observation.

:class:`DisclosureEngine` tracks one granularity (paragraphs *or*
documents); :class:`DisclosureTracker` composes two engines to implement
the paper's dual-granularity tracking (§4.1): disclosure is significant
when either the document requirement or any paragraph requirement holds.

Concurrency (DESIGN.md §8): every engine operation runs under a
reader–writer lock — queries share it, observations and discards take
it exclusively. A tracker shares *one* lock between its paragraph and
document engines so a dual-granularity check observes both databases at
a single consistent point; the lock is reentrant, so compound tracker
operations nest engine acquisitions safely. The epoch-keyed caches
(query cache, authoritative-set cache) are read *and* revalidated while
the lock is held, which is what makes a concurrently-updated epoch
unable to slip between validation and use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.disclosure.metrics import meets_threshold, raw_disclosure
from repro.disclosure.store import (
    DEFAULT_THRESHOLD,
    HashDatabase,
    SegmentDatabase,
    SegmentRecord,
)
from repro.errors import DisclosureError
from repro.fingerprint import Fingerprint, FingerprintConfig, Fingerprinter
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import span
from repro.util.clock import Clock, LogicalClock
from repro.util.rwlock import RWLock


@dataclass(frozen=True)
class SourceDisclosure:
    """One source segment that a queried segment discloses from.

    Attributes:
        segment_id: the disclosed source segment.
        score: the disclosure value D(source, target) in [0, 1].
        threshold: the source's own disclosure threshold that was met.
        matched_hashes: the hash values common to source (authoritative
            part, when enabled) and target — input for attribution.
        kind: granularity of the source segment.
        doc_id: containing document of a paragraph source, if any.
    """

    segment_id: str
    score: float
    threshold: float
    matched_hashes: FrozenSet[int]
    kind: str = "paragraph"
    doc_id: Optional[str] = None


@dataclass(frozen=True)
class DisclosureReport:
    """Result of one disclosure query at one granularity."""

    target_id: Optional[str]
    sources: Tuple[SourceDisclosure, ...]
    candidates_checked: int = 0

    @property
    def disclosing(self) -> bool:
        return bool(self.sources)

    def source_ids(self) -> List[str]:
        return [s.segment_id for s in self.sources]


class DisclosureEngine:
    """Tracks segments at one granularity and answers Algorithm 1 queries.

    Args:
        config: fingerprinting parameters (paper default: 15/30/32-bit).
        clock: timestamp source for first-observation records; defaults
            to a deterministic logical clock.
        authoritative: apply the §4.3 overlap correction. Disable only
            for the ablation that measures its effect.
        kind: label recorded on segments ("paragraph" or "document").
        lock: reader–writer lock guarding the databases and caches; a
            private one is created when omitted. A tracker passes one
            shared lock to both of its engines.
        registry: metrics registry for the engine's counters, derived
            gauges, and per-stage latency histograms. A private one is
            created when omitted; a tracker shares one registry across
            both granularities (scoped ``engine.paragraph.`` /
            ``engine.document.``). Pass
            :data:`~repro.obs.registry.NULL_REGISTRY` for the
            counters-off path.
    """

    def __init__(
        self,
        config: Optional[FingerprintConfig] = None,
        clock: Optional[Clock] = None,
        *,
        authoritative: bool = True,
        kind: str = "paragraph",
        lock: Optional[RWLock] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._clock = clock or LogicalClock()
        self._authoritative = authoritative
        self._kind = kind
        #: Registry holding every instrument below; ``metrics`` is this
        #: engine's scope within it (one registry may serve several
        #: engines, the shared lock, and the plugin layers above).
        self.registry = registry or MetricsRegistry()
        self.metrics = self.registry.scope(f"engine.{kind}.")
        # The fingerprinter records per-ingest-stage latency under this
        # engine's scope (engine.<kind>.fingerprint.normalize/hash/winnow).
        self._fingerprinter = Fingerprinter(
            config, scope=self.registry.scope(f"engine.{kind}.fingerprint.")
        )
        #: Guards hash_db, segment_db, and the engine caches. Queries
        #: take the read side; observe/remove take the write side. The
        #: databases themselves are unsynchronised on purpose — the hot
        #: query sweep calls ``oldest_owner`` once per target hash, and
        #: per-call locking there would cost more than the query.
        self.lock = lock or RWLock(scope=self.registry.scope("lock."))
        self.hash_db = HashDatabase()
        self.segment_db = SegmentDatabase()
        # Durability hook: when a journal is attached every mutation is
        # appended to it (inside the write lock, after the in-memory
        # apply) so a WAL replay reconstructs this engine exactly. None
        # keeps the non-durable hot path at a single attribute test.
        self._journal = None
        # Bumped whenever a new (hash, segment) observation lands; lets
        # the query cache stay valid across no-op re-observations, which
        # is what makes per-keystroke queries cheap (paper §6.2).
        self._version = 0
        self._query_cache: Dict[str, Tuple[int, FrozenSet[int], DisclosureReport]] = {}
        # segment → (owner epoch, frozen authoritative set). Valid while
        # the hash database's owned set for the segment is unchanged:
        # any ownership migration bumps the epoch, and fingerprint edits
        # that could alter the set always move ownership too.
        self._auth_cache: Dict[str, Tuple[int, FrozenSet[int]]] = {}
        # Query-path counters (incremented under the read lock, so
        # monotonic but approximate under contention, as before) plus
        # derived gauges over database state. Legacy ``stats()`` reads
        # these same instruments — the field-identity contract.
        scope = self.metrics
        self._c_queries = scope.counter("queries")
        self._c_query_cache_hits = scope.counter("query_cache_hits")
        self._c_candidates_swept = scope.counter("candidates_swept")
        self._c_auth_cache_hits = scope.counter("auth_cache_hits")
        self._c_auth_cache_misses = scope.counter("auth_cache_misses")
        scope.gauge("segments", fn=lambda: len(self.segment_db))
        scope.gauge("distinct_hashes", fn=lambda: len(self.hash_db))
        scope.gauge("version", fn=lambda: self._version)
        scope.gauge(
            "ownership_changes", fn=lambda: self.hash_db.ownership_changes
        )
        # Per-stage latency histograms (registry clock, fixed buckets).
        self._h_algorithm1 = scope.histogram("algorithm1_seconds")
        self._h_fingerprint = scope.histogram("fingerprint_seconds")

    @property
    def config(self) -> FingerprintConfig:
        return self._fingerprinter.config

    @property
    def fingerprinter(self) -> Fingerprinter:
        return self._fingerprinter

    def __len__(self) -> int:
        return len(self.segment_db)

    def fingerprint(self, text: str) -> Fingerprint:
        clock = self.registry.clock
        start = clock.now()
        fingerprint = self._fingerprinter.fingerprint(text)
        self._h_fingerprint.observe(clock.now() - start)
        return fingerprint

    def attach_journal(self, journal) -> None:
        """Journal every mutation to *journal* (a WAL-backed
        :class:`~repro.disclosure.wal.EngineJournal`).

        Must be attached before mutations that need durability and
        detached (:meth:`detach_journal`) during replay, so recovered
        operations are not re-journaled.
        """
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None

    # ------------------------------------------------------------------
    # Observation (DB maintenance)
    # ------------------------------------------------------------------

    def observe(
        self,
        segment_id: str,
        text: str,
        *,
        threshold: float = DEFAULT_THRESHOLD,
        doc_id: Optional[str] = None,
    ) -> SegmentRecord:
        """Observe (create or update) a segment from its text."""
        return self.observe_fingerprint(
            segment_id, self.fingerprint(text), threshold=threshold, doc_id=doc_id
        )

    def observe_fingerprint(
        self,
        segment_id: str,
        fingerprint: Fingerprint,
        *,
        threshold: float = DEFAULT_THRESHOLD,
        doc_id: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> SegmentRecord:
        """Observe a segment from a precomputed fingerprint.

        New hashes get first-seen timestamps now; hashes observed before
        keep their original timestamps, so ownership is stable across
        edits and re-observations.

        *timestamp* overrides the logical-clock draw. It exists for WAL
        replay, which must reproduce recorded first-seen times exactly
        (and must not advance the clock); live callers leave it None.
        """
        if not 0.0 <= threshold <= 1.0:
            raise DisclosureError(f"threshold must be in [0, 1], got {threshold}")
        with self.lock.write_locked():
            now = self._clock.now() if timestamp is None else timestamp
            existing = self.segment_db.find(segment_id)
            changed = self._apply_fingerprint_delta(
                segment_id,
                fingerprint.hashes,
                existing.fingerprint.hashes if existing is not None else frozenset(),
                now,
            )
            if changed:
                self._version += 1
            if existing is not None:
                record = SegmentRecord(
                    segment_id=segment_id,
                    fingerprint=fingerprint,
                    threshold=threshold,
                    kind=existing.kind,
                    doc_id=doc_id if doc_id is not None else existing.doc_id,
                    last_updated=now,
                )
            else:
                record = SegmentRecord(
                    segment_id=segment_id,
                    fingerprint=fingerprint,
                    threshold=threshold,
                    kind=self._kind,
                    doc_id=doc_id,
                    last_updated=now,
                )
            self.segment_db.put(record)
            if self._journal is not None:
                self._journal.log_observe(self._kind, record, now)
            return record

    def _apply_fingerprint_delta(
        self,
        segment_id: str,
        new_hashes: FrozenSet[int],
        old_hashes: FrozenSet[int],
        now: float,
    ) -> bool:
        """Record the new hashes and withdraw the removed ones.

        An edit withdraws the segment's claim on hashes it no longer
        contains, so authority migrates to the oldest observer that
        still holds the text (paper Figure 6). Returns True when any
        (hash, segment) association actually changed. The sharded
        engine overrides this with batched per-shard application.
        """
        changed = False
        for h in new_hashes:
            if self.hash_db.record(h, segment_id, now):
                changed = True
        for h in old_hashes - new_hashes:
            if self.hash_db.remove_observation(h, segment_id):
                changed = True
        return changed

    def remove(self, segment_id: str) -> None:
        """Forget a segment entirely, releasing its hash ownership."""
        with self.lock.write_locked():
            self.segment_db.remove(segment_id)
            if self.hash_db.discard_segment(segment_id):
                self._version += 1
            self._query_cache.pop(segment_id, None)
            self._auth_cache.pop(segment_id, None)
            if self._journal is not None:
                self._journal.log_remove(self._kind, segment_id)

    def set_threshold(self, segment_id: str, threshold: float) -> None:
        """Adjust a segment's disclosure threshold (paper §4.2)."""
        if not 0.0 <= threshold <= 1.0:
            raise DisclosureError(f"threshold must be in [0, 1], got {threshold}")
        with self.lock.write_locked():
            record = self.segment_db.get(segment_id)
            self.segment_db.put(
                SegmentRecord(
                    segment_id=record.segment_id,
                    fingerprint=record.fingerprint,
                    threshold=threshold,
                    kind=record.kind,
                    doc_id=record.doc_id,
                    last_updated=record.last_updated,
                )
            )
            if self._journal is not None:
                self._journal.log_threshold(self._kind, segment_id, threshold)

    def version_epoch(self, hashes) -> object:
        """Opaque, hashable epoch token for a check over *hashes*.

        *hashes* may be ``None`` when the caller cannot route the check
        (e.g. a document-granularity check whose joined fingerprint is
        unknown); implementations must then return a global token.

        Two tokens compare equal only if no mutation that could change a
        verdict for a target with these hashes happened in between —
        the contract the epoch-memoized verdict cache (DESIGN.md §13)
        keys on. The unsharded engine returns its global version counter
        (every changed observe/remove invalidates everything); the
        sharded engine overrides this with a per-shard token so
        mutations on untouched shards keep cached verdicts valid. Call
        under the engine lock so the token and the verdict it guards see
        the same state.
        """
        return self._version

    # ------------------------------------------------------------------
    # Pairwise disclosure
    # ------------------------------------------------------------------

    def disclosure_between(self, source_id: str, target_id: str) -> float:
        """D(source, target) for two tracked segments."""
        with self.lock.read_locked():
            source = self.segment_db.get(source_id)
            target = self.segment_db.get(target_id)
            return self._score(source, target.fingerprint)

    def _score(self, source: SegmentRecord, target: Fingerprint) -> float:
        if self._authoritative:
            total = len(source.fingerprint)
            if total == 0:
                return 0.0
            auth = self.authoritative_set(source)
            return len(auth & target.hashes) / total
        return raw_disclosure(source.fingerprint, target)

    def authoritative_set(self, source: SegmentRecord) -> FrozenSet[int]:
        """The §4.3 authoritative hash set of *source*, cached.

        Served from a per-segment cache keyed on the hash database's
        ownership epoch, so repeated queries cost O(1) instead of
        rescanning the segment's fingerprint. The owned-hashes index is
        intersected with the current fingerprint on a miss, which keeps
        the result correct even if the databases were populated outside
        this engine (e.g. hand-built in tests).

        Epoch read, validation, and (on a miss) recomputation all happen
        under the read lock, so a concurrent ownership migration — which
        needs the write lock — cannot invalidate the entry mid-use.
        """
        segment_id = source.segment_id
        with self.lock.read_locked():
            epoch = self.hash_db.owner_epoch(segment_id)
            cached = self._auth_cache.get(segment_id)
            if cached is not None and cached[0] == epoch:
                self._c_auth_cache_hits.inc()
                return cached[1]
            self._c_auth_cache_misses.inc()
            auth = frozenset(
                self.hash_db.owned_hashes(segment_id) & source.fingerprint.hashes
            )
            self._auth_cache[segment_id] = (epoch, auth)
            return auth

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def disclosing_sources(
        self,
        target_id: Optional[str] = None,
        *,
        fingerprint: Optional[Fingerprint] = None,
        exclude_doc: Optional[str] = None,
    ) -> DisclosureReport:
        """Source segments that the target discloses (Algorithm 1).

        Pass either the id of a tracked segment, or a standalone
        ``fingerprint`` for a segment not (yet) in the database.
        ``exclude_doc`` skips sources in the given document, used so a
        paragraph is not reported as disclosing its own document.
        """
        if (target_id is None) == (fingerprint is None):
            raise DisclosureError("pass exactly one of target_id or fingerprint")
        with self.lock.read_locked():
            self._c_queries.inc()
            with span("algorithm1", granularity=self._kind) as sp:
                if target_id is not None:
                    fingerprint = self.segment_db.get(target_id).fingerprint
                    cached = self._query_cache.get(target_id)
                    if (
                        cached is not None
                        and cached[0] == self._version
                        and cached[1] == fingerprint.hashes
                    ):
                        self._c_query_cache_hits.inc()
                        sp.set(cache_hit=True, sources=len(cached[2].sources))
                        return cached[2]
                assert fingerprint is not None

                clock = self.registry.clock
                start = clock.now()
                report = self._run_algorithm(target_id, fingerprint, exclude_doc)
                self._h_algorithm1.observe(clock.now() - start)
                if target_id is not None:
                    self._query_cache[target_id] = (
                        self._version,
                        fingerprint.hashes,
                        report,
                    )
                sp.set(
                    cache_hit=False,
                    target_hashes=len(fingerprint.hashes),
                    candidates_checked=report.candidates_checked,
                    sources=len(report.sources),
                )
                return report

    def disclosing_sources_many(
        self,
        queries: Sequence[Tuple[Fingerprint, Optional[str]]],
    ) -> List[DisclosureReport]:
        """Batched Algorithm 1 over standalone fingerprints.

        *queries* is a sequence of ``(fingerprint, exclude_doc)`` pairs;
        the result list is aligned with it. Equivalent to calling
        :meth:`disclosing_sources` once per query (the threshold pass is
        the same code), but the whole batch shares one lock acquisition,
        one trace span, and one fused sweep: the union of the queries'
        hashes is probed once per distinct hash and matches are
        redistributed to the queries that contained them
        (:meth:`_sweep_targets`). The per-target query cache does not
        apply — batch queries are standalone fingerprints with no
        ``target_id`` to key on.
        """
        if not queries:
            return []
        with self.lock.read_locked():
            self._c_queries.inc(len(queries))
            with span(
                "algorithm1", granularity=self._kind, batch=len(queries)
            ) as sp:
                clock = self.registry.clock
                start = clock.now()
                matched_list = self._sweep_targets(
                    [fingerprint.hashes for fingerprint, _excl in queries]
                )
                candidates = 0
                reports: List[DisclosureReport] = []
                for (fingerprint, exclude_doc), matched in zip(
                    queries, matched_list
                ):
                    candidates += len(matched)
                    reports.append(
                        self._threshold_pass(
                            None, fingerprint, exclude_doc, matched
                        )
                    )
                self._c_candidates_swept.inc(candidates)
                self._h_algorithm1.observe(clock.now() - start)
                sp.set(
                    cache_hit=False,
                    candidates_checked=candidates,
                    sources=sum(len(r.sources) for r in reports),
                )
                return reports

    def disclosing_sources_reference(
        self,
        target_id: Optional[str] = None,
        *,
        fingerprint: Optional[Fingerprint] = None,
        exclude_doc: Optional[str] = None,
    ) -> DisclosureReport:
        """Algorithm 1 via the naive per-candidate scan, uncached.

        The pre-index implementation, retained as the behavioural
        reference: it recomputes oldest owners from the raw observation
        maps and intersects full fingerprints per candidate. Differential
        tests assert :meth:`disclosing_sources` returns identical
        reports; benchmarks use it for before/after comparisons.
        """
        if (target_id is None) == (fingerprint is None):
            raise DisclosureError("pass exactly one of target_id or fingerprint")
        with self.lock.read_locked():
            if target_id is not None:
                fingerprint = self.segment_db.get(target_id).fingerprint
            assert fingerprint is not None
            return self._run_algorithm_reference(target_id, fingerprint, exclude_doc)

    # ------------------------------------------------------------------
    # Indexed single-sweep query (the hot path)
    # ------------------------------------------------------------------

    def _run_algorithm(
        self,
        target_id: Optional[str],
        fingerprint: Fingerprint,
        exclude_doc: Optional[str],
    ) -> DisclosureReport:
        """One sweep over the target's hashes against the inverted index.

        Accumulates per-owner matched-hash counts in O(|F(target)|)
        (authoritative mode; O(matching observations) otherwise), then
        applies Algorithm 1's quick discard and threshold checks to the
        accumulated counts — no per-candidate set intersections.
        """
        matched: Dict[str, List[int]] = {}
        if self._authoritative:
            # Under §4.3 only a hash's oldest owner may count it towards
            # its own disclosure, so one O(1) owner lookup per hash
            # replaces the per-candidate authoritative-set intersection.
            oldest_owner = self.hash_db.oldest_owner
            for h in fingerprint.hashes:
                owner = oldest_owner(h)
                if owner is None:
                    continue
                if owner in matched:
                    matched[owner].append(h)
                else:
                    matched[owner] = [h]
        else:
            observers = self.hash_db.observers
            for h in fingerprint.hashes:
                for owner in observers(h):
                    if owner in matched:
                        matched[owner].append(h)
                    else:
                        matched[owner] = [h]
        self._c_candidates_swept.inc(len(matched))
        return self._threshold_pass(target_id, fingerprint, exclude_doc, matched)

    def _sweep_targets(
        self, targets: Sequence[FrozenSet[int]]
    ) -> List[Dict[str, List[int]]]:
        """Fused sweep for a batch of targets; one matched dict each.

        Builds the union of the targets' hashes, probes the inverted
        index once per *distinct* hash, and redistributes each match to
        every target that contained the hash — so a batch of uploads
        sharing phrasing pays for the shared hashes once. Per-target
        results are exactly what the per-target sweep would produce
        (ownership of a hash does not depend on which batch asked).

        The sharded engine overrides this with the scatter/gather
        equivalent over its shards.
        """
        matched_list: List[Dict[str, List[int]]] = [{} for _ in targets]
        # hash -> owning target index, promoted to a list only when the
        # hash appears in more than one target (the common case is one).
        items_of: Dict[int, object] = {}
        get = items_of.get
        for i, target in enumerate(targets):
            for h in target:
                prev = get(h)
                if prev is None:
                    items_of[h] = i
                elif type(prev) is list:
                    prev.append(i)
                else:
                    items_of[h] = [prev, i]

        def credit(h: int, owner: str) -> None:
            entry = items_of[h]
            if type(entry) is int:
                item_ids = (entry,)
            else:
                item_ids = entry
            for i in item_ids:
                matched = matched_list[i]
                if owner in matched:
                    matched[owner].append(h)
                else:
                    matched[owner] = [h]

        if self._authoritative:
            oldest_owner = self.hash_db.oldest_owner
            for h in items_of:
                owner = oldest_owner(h)
                if owner is not None:
                    credit(h, owner)
        else:
            observers = self.hash_db.observers
            for h in items_of:
                for owner in observers(h):
                    credit(h, owner)
        return matched_list

    def _threshold_pass(
        self,
        target_id: Optional[str],
        fingerprint: Fingerprint,
        exclude_doc: Optional[str],
        matched: Dict[str, List[int]],
    ) -> DisclosureReport:
        """Algorithm 1's quick-discard + threshold test over swept counts.

        *matched* maps each candidate owner to the target hashes it
        counted during the sweep; the sharded engine reuses this pass
        verbatim after merging per-shard counts, which is what makes the
        router's merge rule provably equivalent to the single sweep.
        """
        results: List[SourceDisclosure] = []
        checked = 0
        target_size = len(fingerprint)
        for owner, owner_matched in matched.items():
            count = len(owner_matched)
            if owner == target_id:
                continue
            source = self.segment_db.find(owner)
            if source is None:
                # Historical owner whose segment was since removed.
                continue
            if exclude_doc is not None and (
                source.doc_id == exclude_doc or source.segment_id == exclude_doc
            ):
                continue
            checked += 1
            t = source.threshold
            origin_size = len(source.fingerprint)
            # Quick discard from Algorithm 1: if the origin fingerprint
            # is so large that even a full overlap with the target could
            # not reach the threshold, skip it.
            if origin_size * t > target_size:
                continue
            if origin_size == 0:
                continue
            score = count / origin_size
            if score > 0.0 and meets_threshold(score, t):
                results.append(
                    SourceDisclosure(
                        segment_id=source.segment_id,
                        score=score,
                        threshold=t,
                        matched_hashes=frozenset(owner_matched),
                        kind=source.kind,
                        doc_id=source.doc_id,
                    )
                )
        results.sort(key=lambda s: (-s.score, s.segment_id))
        return DisclosureReport(
            target_id=target_id, sources=tuple(results), candidates_checked=checked
        )

    # ------------------------------------------------------------------
    # Reference implementation (pre-index, kept for differential tests)
    # ------------------------------------------------------------------

    def _authoritative_hashes_reference(self, record: SegmentRecord) -> FrozenSet[int]:
        """§4.3 authoritative set recomputed from raw observations."""
        db = self.hash_db
        return frozenset(
            h
            for h in record.fingerprint.hashes
            if db.recompute_oldest_owner(h) == record.segment_id
        )

    def _score_reference(self, source: SegmentRecord, target: Fingerprint) -> float:
        if self._authoritative:
            total = len(source.fingerprint)
            if total == 0:
                return 0.0
            auth = self._authoritative_hashes_reference(source)
            return len(auth & target.hashes) / total
        return raw_disclosure(source.fingerprint, target)

    def _candidates_reference(self, fingerprint: Fingerprint) -> Iterable[str]:
        """Candidate source ids sharing at least one hash with the query.

        With the authoritative correction, only a hash's oldest owner can
        count that hash towards its own disclosure, so inspecting oldest
        owners (as in the paper's pseudocode) loses nothing. Without the
        correction every observer is a candidate.
        """
        seen = set()
        for h in fingerprint.hashes:
            if self._authoritative:
                owner = self.hash_db.recompute_oldest_owner(h)
                if owner is not None and owner not in seen:
                    seen.add(owner)
                    yield owner
            else:
                for owner, _ts in self.hash_db.owners(h):
                    if owner not in seen:
                        seen.add(owner)
                        yield owner

    def _run_algorithm_reference(
        self,
        target_id: Optional[str],
        fingerprint: Fingerprint,
        exclude_doc: Optional[str],
    ) -> DisclosureReport:
        results: List[SourceDisclosure] = []
        checked = 0
        target_size = len(fingerprint)
        for candidate_id in self._candidates_reference(fingerprint):
            if candidate_id == target_id:
                continue
            source = self.segment_db.find(candidate_id)
            if source is None:
                # Historical owner whose segment was since removed.
                continue
            if exclude_doc is not None and (
                source.doc_id == exclude_doc or source.segment_id == exclude_doc
            ):
                continue
            checked += 1
            t = source.threshold
            origin_size = len(source.fingerprint)
            # Quick discard from Algorithm 1: if the origin fingerprint
            # is so large that even a full overlap with the target could
            # not reach the threshold, skip the authoritative scan.
            if origin_size * t > target_size:
                continue
            score = self._score_reference(source, fingerprint)
            if score > 0.0 and meets_threshold(score, t):
                if self._authoritative:
                    matched = (
                        self._authoritative_hashes_reference(source)
                        & fingerprint.hashes
                    )
                else:
                    matched = source.fingerprint.hashes & fingerprint.hashes
                results.append(
                    SourceDisclosure(
                        segment_id=source.segment_id,
                        score=score,
                        threshold=t,
                        matched_hashes=frozenset(matched),
                        kind=source.kind,
                        doc_id=source.doc_id,
                    )
                )
        results.sort(key=lambda s: (-s.score, s.segment_id))
        return DisclosureReport(
            target_id=target_id, sources=tuple(results), candidates_checked=checked
        )

    def stats(self) -> Dict[str, int]:
        """Size and index/query counters (Figure 13 + cache behaviour).

        ``segments``/``distinct_hashes``/``version`` describe database
        state; the rest are monotonic counters: queries answered and
        answered from the decision cache, candidates accumulated by the
        index sweep, authoritative-set cache hits/misses, and ownership
        transitions (each of which invalidates one segment's cached
        authoritative set).

        Concurrency note (DESIGN.md §8): write-path values (``version``,
        ``ownership_changes``, the db sizes) are exact — they only move
        under the write lock. Query-path counters are incremented by
        concurrent readers without mutual exclusion and are therefore
        monotonic but *approximate* under contention; they exist for
        reporting, never for control flow.

        This is a thin view over the engine's registry scope: counter
        fields read the same :class:`~repro.obs.registry.Counter`
        instruments the query path increments, so the dict stays
        field-identical to ``metrics.snapshot()`` (differential-tested).
        Database-state fields read their sources directly — not via the
        derived gauges — so the dict remains correct even under
        :data:`~repro.obs.registry.NULL_REGISTRY` (``version`` keys the
        plugin's decision cache and must never flatten to zero).
        """
        return {
            "segments": len(self.segment_db),
            "distinct_hashes": len(self.hash_db),
            "version": self._version,
            "queries": self._c_queries.value,
            "query_cache_hits": self._c_query_cache_hits.value,
            "candidates_swept": self._c_candidates_swept.value,
            "auth_cache_hits": self._c_auth_cache_hits.value,
            "auth_cache_misses": self._c_auth_cache_misses.value,
            "ownership_changes": self.hash_db.ownership_changes,
        }


@dataclass(frozen=True)
class TrackerReport:
    """Combined dual-granularity disclosure result (paper §4.1/§4.2)."""

    paragraph_reports: Tuple[Tuple[str, DisclosureReport], ...]
    document_report: Optional[DisclosureReport] = None

    @property
    def disclosing(self) -> bool:
        if self.document_report is not None and self.document_report.disclosing:
            return True
        return any(r.disclosing for _pid, r in self.paragraph_reports)

    def all_sources(self) -> List[SourceDisclosure]:
        out: List[SourceDisclosure] = []
        if self.document_report is not None:
            out.extend(self.document_report.sources)
        for _pid, report in self.paragraph_reports:
            out.extend(report.sources)
        return out


class DisclosureTracker:
    """Dual-granularity tracking: paragraphs and whole documents.

    The paper tracks both independently so that leaking one sentence from
    each of many paragraphs is still caught by the document requirement,
    while leaking one whole paragraph is caught by the paragraph
    requirement even inside a large document.
    """

    def __init__(
        self,
        config: Optional[FingerprintConfig] = None,
        clock: Optional[Clock] = None,
        *,
        paragraph_threshold: float = DEFAULT_THRESHOLD,
        document_threshold: float = DEFAULT_THRESHOLD,
        authoritative: bool = True,
        registry: Optional[MetricsRegistry] = None,
        n_shards: Optional[int] = None,
        router=None,
    ) -> None:
        """``n_shards=None`` (default) builds the classic single-store
        engines; any integer >= 1 builds
        :class:`~repro.disclosure.sharding.ShardedDisclosureEngine`
        pairs whose hash databases are hash-range partitioned into that
        many independently locked shards. ``router`` (an object with a
        ``map(fn, items)`` method, e.g.
        :class:`~repro.plugin.router.ShardRouter`) is handed to both
        sharded engines to scatter per-shard sweeps; ignored unsharded.
        """
        shared_clock = clock or LogicalClock()
        #: One registry for both granularities (and the shared lock):
        #: ``engine.paragraph.*`` and ``engine.document.*`` instruments
        #: land side by side in one snapshot.
        self.registry = registry or MetricsRegistry()
        #: One lock for both granularities: a dual-granularity check or
        #: observation is atomic with respect to concurrent updates.
        self.lock = RWLock(scope=self.registry.scope("lock."))
        if n_shards is None:
            engine_factory = DisclosureEngine
            extra: Dict[str, object] = {}
        else:
            # Deferred import: sharding builds on this module.
            from repro.disclosure.sharding import ShardedDisclosureEngine

            engine_factory = ShardedDisclosureEngine
            extra = {"n_shards": n_shards, "router": router}
        self.paragraphs = engine_factory(
            config,
            shared_clock,
            authoritative=authoritative,
            kind="paragraph",
            lock=self.lock,
            registry=self.registry,
            **extra,
        )
        self.documents = engine_factory(
            config,
            shared_clock,
            authoritative=authoritative,
            kind="document",
            lock=self.lock,
            registry=self.registry,
            **extra,
        )
        self._paragraph_threshold = paragraph_threshold
        self._document_threshold = document_threshold

    @property
    def paragraph_threshold(self) -> float:
        return self._paragraph_threshold

    @property
    def document_threshold(self) -> float:
        return self._document_threshold

    def resume_clock(self, after: float) -> None:
        """Share a fresh logical clock resumed strictly past *after*.

        WAL replay applies recorded timestamps without advancing the
        tracker's clock; a standby that is promoted to primary (or a
        tracker rebuilt by recovery) calls this so its first live
        observation cannot time-travel before — and steal authoritative
        ownership from — anything already replayed.
        """
        clock = LogicalClock(start=int(after) + 1)
        self.paragraphs._clock = clock
        self.documents._clock = clock

    def observe_document(
        self,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        paragraph_threshold: Optional[float] = None,
        document_threshold: Optional[float] = None,
    ) -> None:
        """Observe a document given (paragraph_id, text) pairs.

        Paragraph ids must be stable across edits (in the plugin they are
        DOM node ids); the document fingerprint covers the concatenation.
        """
        p_thresh = (
            paragraph_threshold
            if paragraph_threshold is not None
            else self._paragraph_threshold
        )
        d_thresh = (
            document_threshold
            if document_threshold is not None
            else self._document_threshold
        )
        with self.lock.write_locked():
            for par_id, text in paragraphs:
                self.paragraphs.observe(
                    par_id, text, threshold=p_thresh, doc_id=doc_id
                )
            doc_text = "\n\n".join(text for _pid, text in paragraphs)
            self.documents.observe(doc_id, doc_text, threshold=d_thresh)

    def check_document(
        self,
        doc_id: str,
        paragraphs: Sequence[Tuple[str, str]],
        *,
        fingerprints: Optional[Sequence[Fingerprint]] = None,
    ) -> TrackerReport:
        """Query, without observing, what a document would disclose.

        Each paragraph is checked against the paragraph engine and the
        whole text against the document engine; the document itself and
        its own paragraphs are excluded as sources.

        ``fingerprints`` optionally carries precomputed per-paragraph
        fingerprints aligned with *paragraphs* (the batch lookup path
        computes them once for its cache keys and passes them down, so
        a batched item is fingerprinted once instead of three times).
        For a single-paragraph document the document fingerprint is the
        paragraph fingerprint — the document text *is* the paragraph
        text — so it is reused too.
        """
        if fingerprints is not None and len(fingerprints) != len(paragraphs):
            raise DisclosureError(
                f"got {len(fingerprints)} fingerprints for "
                f"{len(paragraphs)} paragraphs"
            )
        fingerprinter = self.paragraphs.fingerprinter
        par_reports = []
        with self.lock.read_locked():
            if fingerprints is None:
                fingerprints = [
                    fingerprinter.fingerprint(text) for _pid, text in paragraphs
                ]
            for (par_id, _text), fp in zip(paragraphs, fingerprints):
                report = self.paragraphs.disclosing_sources(
                    fingerprint=fp, exclude_doc=doc_id
                )
                par_reports.append((par_id, report))
            if len(paragraphs) == 1:
                doc_fp = fingerprints[0]
            else:
                doc_text = "\n\n".join(text for _pid, text in paragraphs)
                doc_fp = self.documents.fingerprinter.fingerprint(doc_text)
            doc_report = self.documents.disclosing_sources(
                fingerprint=doc_fp, exclude_doc=doc_id
            )
        # A document must not be reported as disclosing itself.
        doc_report = DisclosureReport(
            target_id=None,
            sources=tuple(
                s for s in doc_report.sources if s.segment_id != doc_id
            ),
            candidates_checked=doc_report.candidates_checked,
        )
        return TrackerReport(
            paragraph_reports=tuple(par_reports), document_report=doc_report
        )

    def check_documents(
        self,
        docs: Sequence[Tuple[str, Sequence[Tuple[str, str]]]],
        *,
        fingerprints: Optional[Sequence[Sequence[Fingerprint]]] = None,
    ) -> List[TrackerReport]:
        """Batched :meth:`check_document`: same reports, fused queries.

        All documents' paragraph queries go to the paragraph engine in
        one :meth:`~DisclosureEngine.disclosing_sources_many` call (and
        likewise the document-granularity queries), so the whole batch
        shares two engine lock acquisitions and two fused sweeps instead
        of two per document. One tracker read lock covers the batch: all
        reports describe the same database state.

        ``fingerprints`` optionally carries per-document lists of
        precomputed paragraph fingerprints, aligned with *docs*.
        """
        if fingerprints is not None and len(fingerprints) != len(docs):
            raise DisclosureError(
                f"got {len(fingerprints)} fingerprint lists for "
                f"{len(docs)} documents"
            )
        fingerprinter = self.paragraphs.fingerprinter
        with self.lock.read_locked():
            if fingerprints is None:
                fingerprints = [
                    [fingerprinter.fingerprint(text) for _pid, text in paragraphs]
                    for _doc_id, paragraphs in docs
                ]
            par_queries: List[Tuple[Fingerprint, Optional[str]]] = []
            doc_queries: List[Tuple[Fingerprint, Optional[str]]] = []
            for (doc_id, paragraphs), fps in zip(docs, fingerprints):
                if len(fps) != len(paragraphs):
                    raise DisclosureError(
                        f"got {len(fps)} fingerprints for "
                        f"{len(paragraphs)} paragraphs of {doc_id!r}"
                    )
                for fp in fps:
                    par_queries.append((fp, doc_id))
                if len(paragraphs) == 1:
                    doc_fp = fps[0]
                else:
                    doc_text = "\n\n".join(text for _pid, text in paragraphs)
                    doc_fp = self.documents.fingerprinter.fingerprint(doc_text)
                doc_queries.append((doc_fp, doc_id))
            par_flat = self.paragraphs.disclosing_sources_many(par_queries)
            doc_flat = self.documents.disclosing_sources_many(doc_queries)
        reports: List[TrackerReport] = []
        cursor = 0
        for (doc_id, paragraphs), doc_report in zip(docs, doc_flat):
            par_reports = tuple(
                (par_id, report)
                for (par_id, _text), report in zip(
                    paragraphs, par_flat[cursor : cursor + len(paragraphs)]
                )
            )
            cursor += len(paragraphs)
            doc_report = DisclosureReport(
                target_id=None,
                sources=tuple(
                    s for s in doc_report.sources if s.segment_id != doc_id
                ),
                candidates_checked=doc_report.candidates_checked,
            )
            reports.append(
                TrackerReport(
                    paragraph_reports=par_reports, document_report=doc_report
                )
            )
        return reports

    def remove_document(self, doc_id: str) -> None:
        """Forget a document and all of its paragraphs."""
        with self.lock.write_locked():
            for record in self.documents.segment_db.in_document(doc_id):
                self.documents.remove(record.segment_id)
            if self.documents.segment_db.find(doc_id) is not None:
                self.documents.remove(doc_id)
            for record in self.paragraphs.segment_db.in_document(doc_id):
                self.paragraphs.remove(record.segment_id)
