"""Hash-range sharding of the hash database (DESIGN.md §11).

The §7 indexes are keyed per-hash, so ``DBhash`` partitions cleanly:
:class:`ShardedHashDatabase` splits the hash space ``[0, 2**hash_bits)``
into N contiguous ranges, one independently-locked
:class:`~repro.disclosure.store.HashDatabase` per range. Every
observation of a given hash value lands on the same shard, which makes
the §4.3 oldest-owner relation *local by construction* — a shard holds
every (segment, timestamp) claim on each of its hashes, so no
cross-shard reconciliation step is ever needed, not even for the
Figure 6 ownership-migration case (withdrawing a hash and re-awarding it
to the next-earliest observer both happen on that hash's home shard).

The query side is a scatter/gather: partition the target's hashes by
shard, sweep each shard under its *own* read lock, and merge the
per-owner matched-hash lists by concatenation. The merge is exact
because the partition makes per-shard contributions disjoint — a hash
is counted by exactly one shard — so the merged counts equal the
unsharded single sweep's counts and the engine's unchanged
quick-discard/threshold pass produces field-identical reports
(differential-tested at shard counts 1/2/4/8).

Locking (DESIGN.md §11): unlike the plain externally-synchronised
``HashDatabase``, the sharded database is *internally* synchronised —
that is the point, observes on different ranges must not serialise.
Mutations take the write locks of only the shards they touch, queries
take per-shard read locks one at a time. Lock order is always ascending
shard index, and the owning engine's segment lock (when held) is
acquired strictly before any shard lock, so the hierarchy is acyclic.

Per-shard fault injectors (installable after setup via
:meth:`ShardedHashDatabase.set_faults`) let tests and benchmarks
degrade a single shard: a drop or error on a shard raises
:class:`~repro.errors.ShardDegraded` from the sweep, but only for
queries whose target hashes actually route there.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.disclosure.engine import DisclosureEngine, DisclosureReport
from repro.disclosure.store import HashDatabase
from repro.errors import DisclosureError, ShardDegraded
from repro.fingerprint import Fingerprint, FingerprintConfig
from repro.obs.registry import MetricsRegistry, MetricsScope
from repro.util.clock import Clock
from repro.util.faults import FaultInjector
from repro.util.rwlock import RWLock


#: Fibonacci multiplier (odd, ≈ 2**32/φ) used to mix hash values before
#: range-partitioning. Winnowing stores the *minimum* hash of each
#: window, so stored hash magnitudes skew towards the low end of the
#: space (with window w, minima concentrate in roughly the lowest 1/w) —
#: partitioning raw values by range would pile everything onto shard 0.
#: The multiply is a bijection on the hash space (odd multiplier), so
#: distinct hashes stay distinct and the mixed keys spread evenly.
_MIX_MULTIPLIER = 2654435761


def shard_of(hash_value: int, n_shards: int, hash_bits: int) -> int:
    """Home shard of *hash_value*: range partition over the mixed key.

    The mixed key space ``[0, 2**hash_bits)`` is cut into ``n_shards``
    near-equal contiguous ranges; the fixed-point multiply maps key k to
    shard ``k * n >> hash_bits`` exactly, with no modulo bias. The
    Fibonacci pre-mix (see :data:`_MIX_MULTIPLIER`) is what makes the
    ranges balance for winnowed, magnitude-skewed hash values.
    """
    mask = (1 << hash_bits) - 1
    return (((hash_value * _MIX_MULTIPLIER) & mask) * n_shards) >> hash_bits


def partition(
    hashes: Iterable[int], n_shards: int, hash_bits: int
) -> List[Tuple[int, List[int]]]:
    """Group *hashes* by home shard; only non-empty groups are returned."""
    mask = (1 << hash_bits) - 1
    buckets: List[List[int]] = [[] for _ in range(n_shards)]
    for h in hashes:
        buckets[(((h * _MIX_MULTIPLIER) & mask) * n_shards) >> hash_bits].append(h)
    return [(index, group) for index, group in enumerate(buckets) if group]


class _InlineRouter:
    """Default scatter strategy: sweep shards sequentially in-thread."""

    def map(self, fn: Callable, items: Sequence) -> List:
        return [fn(item) for item in items]


class ShardedHashDatabase:
    """``DBhash`` hash-partitioned into N independently-locked shards.

    Mirrors the :class:`~repro.disclosure.store.HashDatabase` surface
    (single-hash calls route to the home shard; whole-table views
    aggregate across shards) and adds the batched mutation and
    scatter/gather sweep entry points the sharded engine uses.

    Unlike the plain database this one is internally synchronised: each
    shard carries its own write-preferring rwlock, taken in ascending
    shard order for multi-shard mutations. Callers may still hold an
    engine-level lock above — shard locks always nest inside it.

    Args:
        n_shards: number of shards (>= 1).
        hash_bits: width of the hash space being partitioned (the
            fingerprint config's ``hash_bits``).
        scope: metrics scope; per-shard instruments land under
            ``<scope>.<i>.`` (lock counters, sweeps, hashes swept).
            A private registry scope is created when omitted.
        router: object with ``map(fn, items)`` used to scatter per-shard
            sweep jobs (e.g. :class:`~repro.plugin.router.ShardRouter`);
            in-thread sequential scatter when omitted.
        faults: optional per-shard fault injectors, one per shard; see
            :meth:`set_faults`.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        hash_bits: int = 32,
        scope: Optional[MetricsScope] = None,
        router=None,
        faults: Optional[Sequence[FaultInjector]] = None,
    ) -> None:
        if n_shards < 1:
            raise DisclosureError(f"n_shards must be >= 1, got {n_shards}")
        if hash_bits < 1:
            raise DisclosureError(f"hash_bits must be >= 1, got {hash_bits}")
        self.n_shards = n_shards
        self.hash_bits = hash_bits
        if scope is None:
            scope = MetricsRegistry().scope("shard.")
        self.metrics = scope
        registry = scope.registry
        self.shards: Tuple[HashDatabase, ...] = tuple(
            HashDatabase() for _ in range(n_shards)
        )
        self.locks: Tuple[RWLock, ...] = tuple(
            RWLock(scope=registry.scope(f"{scope.prefix}{i}.lock."))
            for i in range(n_shards)
        )
        self._c_sweeps = tuple(
            registry.counter(f"{scope.prefix}{i}.sweeps") for i in range(n_shards)
        )
        self._c_hashes_swept = tuple(
            registry.counter(f"{scope.prefix}{i}.hashes_swept")
            for i in range(n_shards)
        )
        for i in range(n_shards):
            registry.gauge(
                f"{scope.prefix}{i}.distinct_hashes",
                fn=lambda i=i: len(self.shards[i]),
            )
        self._router = router if router is not None else _InlineRouter()
        self._faults: Optional[Tuple[FaultInjector, ...]] = None
        if faults is not None:
            self.set_faults(faults)
        # Per-shard mutation epochs (DESIGN.md §13): bumped whenever a
        # shard's (hash, segment) associations change, so verdict caches
        # can key on only the shards a check actually routes to. Guarded
        # by a dedicated mutex — epoch reads happen on the query path and
        # must not take shard write locks.
        self._epoch_mutex = threading.Lock()
        self._epochs: List[int] = [0] * n_shards
        for i in range(n_shards):
            registry.gauge(
                f"{scope.prefix}{i}.epoch", fn=lambda i=i: self._epochs[i]
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, hash_value: int) -> int:
        return shard_of(hash_value, self.n_shards, self.hash_bits)

    def partition(self, hashes: Iterable[int]) -> List[Tuple[int, List[int]]]:
        return partition(hashes, self.n_shards, self.hash_bits)

    def set_faults(self, faults: Optional[Sequence[FaultInjector]]) -> None:
        """Install (or clear) per-shard fault injectors.

        Installable after the database is populated, so test setup
        traffic does not consume scheduled faults. ``faults[i]`` is
        consulted once per sweep that routes at least one hash to shard
        i: a drop or error decision raises
        :class:`~repro.errors.ShardDegraded`; latency decisions are
        counted by the injector but not simulated here (the lookup
        server owns the latency budget).
        """
        if faults is None:
            self._faults = None
            return
        if len(faults) != self.n_shards:
            raise DisclosureError(
                f"got {len(faults)} injectors for {self.n_shards} shards"
            )
        self._faults = tuple(faults)

    def set_router(self, router) -> None:
        """Swap the scatter strategy (``None`` restores in-thread)."""
        self._router = router if router is not None else _InlineRouter()

    # ------------------------------------------------------------------
    # Per-shard mutation epochs (verdict-cache invalidation, §13)
    # ------------------------------------------------------------------

    def bump_epoch(self, index: int) -> None:
        """Advance one shard's epoch (its associations changed)."""
        with self._epoch_mutex:
            self._epochs[index] += 1

    def bump_epochs_for(self, hashes: Iterable[int]) -> None:
        """Advance the epoch of every shard any of *hashes* routes to.

        The engine calls this with the union of a segment's old and new
        hashes on re-observation: a fingerprint change moves the score
        denominator (``len(source.fingerprint)``), which can flip
        verdicts for checks routed to *any* shard still holding one of
        the segment's hashes — not just the shards whose associations
        changed. Double bumps (mutators also bump internally) are
        harmless; epoch keys only test equality.
        """
        touched = self._touched_shards(hashes)
        if not touched:
            return
        with self._epoch_mutex:
            for index in touched:
                self._epochs[index] += 1

    def _touched_shards(self, hashes: Iterable[int]) -> Set[int]:
        """Distinct home shards of *hashes*, with an early exit.

        Epoch tokens only need the *set* of shards consulted, and any
        realistically-sized hash set touches all shards (winnowed
        hashes are near-uniform after the Fibonacci mix), so the common
        case exits after a handful of draws instead of routing every
        hash. The routing arithmetic is inlined: this sits on the
        per-keystroke cache-key path, where two Python calls per hash
        dominated the delta pipeline's profile.
        """
        n = self.n_shards
        mask = (1 << self.hash_bits) - 1
        bits = self.hash_bits
        touched: Set[int] = set()
        add = touched.add
        for h in hashes:
            add((((h * _MIX_MULTIPLIER) & mask) * n) >> bits)
            if len(touched) == n:
                break
        return touched

    def epoch_for(self, hashes: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
        """Cache-key epoch token for a check over *hashes*.

        A sorted tuple of ``(shard_index, epoch)`` pairs covering every
        shard the hashes route to. Two tokens compare equal exactly when
        none of the consulted shards has seen an association change in
        between — mutations on *other* shards leave the token (and any
        verdict cached under it) valid.
        """
        touched = sorted(self._touched_shards(hashes))
        with self._epoch_mutex:
            return tuple((index, self._epochs[index]) for index in touched)

    def epochs(self) -> List[int]:
        """Snapshot of all shard epochs (reporting/tests)."""
        with self._epoch_mutex:
            return list(self._epochs)

    # ------------------------------------------------------------------
    # Batched mutation (the engine's delta application)
    # ------------------------------------------------------------------

    def record_fingerprint(
        self, segment_id: str, hashes: Iterable[int], timestamp: float
    ) -> bool:
        """Record all *hashes* for *segment_id*; True if any were new.

        Takes only the write locks of the shards the hashes land on, in
        ascending shard order — concurrent observes whose fingerprints
        route to disjoint shards no longer serialise.
        """
        changed = False
        for index, group in self.partition(hashes):
            with self.locks[index].write_locked():
                shard = self.shards[index]
                shard_changed = False
                for h in group:
                    if shard.record(h, segment_id, timestamp):
                        shard_changed = True
            if shard_changed:
                changed = True
                self.bump_epoch(index)
        return changed

    def withdraw(self, segment_id: str, hashes: Iterable[int]) -> bool:
        """Release the segment's claim on *hashes*; True if any released."""
        changed = False
        for index, group in self.partition(hashes):
            with self.locks[index].write_locked():
                shard = self.shards[index]
                shard_changed = False
                for h in group:
                    if shard.remove_observation(h, segment_id):
                        shard_changed = True
            if shard_changed:
                changed = True
                self.bump_epoch(index)
        return changed

    # ------------------------------------------------------------------
    # Scatter/gather sweep (the engine's Algorithm-1 accumulation)
    # ------------------------------------------------------------------

    def sweep(
        self, hashes: Iterable[int], *, authoritative: bool = True
    ) -> Dict[str, List[int]]:
        """Per-owner matched target hashes, merged across shards.

        The scatter/gather core: partition the target hashes, sweep each
        shard under its own read lock (dispatched through the router),
        and merge by concatenating per-owner lists. Contributions are
        disjoint across shards — each hash is counted by exactly its
        home shard — so the merged counts equal an unsharded sweep's.

        Raises :class:`~repro.errors.ShardDegraded` if a consulted
        shard's fault injector decides drop or error.
        """
        jobs = self.partition(hashes)
        if not jobs:
            return {}
        if len(jobs) == 1:
            return self._sweep_shard((jobs[0][0], jobs[0][1], authoritative))
        scattered = self._router.map(
            self._sweep_shard,
            [(index, group, authoritative) for index, group in jobs],
        )
        merged: Dict[str, List[int]] = scattered[0]
        for part in scattered[1:]:
            for owner, owner_matched in part.items():
                if owner in merged:
                    merged[owner].extend(owner_matched)
                else:
                    merged[owner] = owner_matched
        return merged

    def _sweep_shard(
        self, job: Tuple[int, List[int], bool]
    ) -> Dict[str, List[int]]:
        index, group, authoritative = job
        if self._faults is not None:
            fault = self._faults[index].next_fault()
            if fault.kind == "drop":
                raise ShardDegraded(index, "drop")
            if fault.kind == "error":
                raise ShardDegraded(index, "error", fault.status)
            # Latency decisions are counted by the injector; the lookup
            # server compares injected latency to its budget, not us.
        matched: Dict[str, List[int]] = {}
        self._c_sweeps[index].inc()
        self._c_hashes_swept[index].inc(len(group))
        with self.locks[index].read_locked():
            shard = self.shards[index]
            if authoritative:
                oldest_owner = shard.oldest_owner
                for h in group:
                    owner = oldest_owner(h)
                    if owner is None:
                        continue
                    if owner in matched:
                        matched[owner].append(h)
                    else:
                        matched[owner] = [h]
            else:
                observers = shard.observers
                for h in group:
                    for owner in observers(h):
                        if owner in matched:
                            matched[owner].append(h)
                        else:
                            matched[owner] = [h]
        return matched

    def sweep_many(
        self,
        targets: Sequence[Iterable[int]],
        *,
        authoritative: bool = True,
    ) -> List[Dict[str, List[int]]]:
        """One fused scatter/gather for many targets; one result each.

        Equivalent to ``[self.sweep(t) for t in targets]`` but the whole
        batch is a single scatter: the *union* of target hashes is
        partitioned once, each touched shard is visited once (one read
        lock, one fault decision, one index probe per distinct hash),
        and matches are redistributed to the targets that asked for the
        hash. Duplicate hashes across targets — common when a batch of
        uploads shares phrasing — are probed once instead of once per
        target.

        Raises :class:`~repro.errors.ShardDegraded` exactly like
        :meth:`sweep`: the batch is one routed operation, so a degraded
        shard fails every target that routes to it (and the caller
        treats the whole batch as degraded, mirroring the wire protocol
        where a batch is one request).
        """
        matched_list: List[Dict[str, List[int]]] = [{} for _ in targets]
        # hash -> owning target index, promoted to a list only when the
        # hash appears in more than one target (the common case is one).
        items_of: Dict[int, object] = {}
        get = items_of.get
        for i, target in enumerate(targets):
            for h in target:
                prev = get(h)
                if prev is None:
                    items_of[h] = i
                elif type(prev) is list:
                    prev.append(i)
                else:
                    items_of[h] = [prev, i]
        if not items_of:
            return matched_list
        jobs = [
            (index, group, authoritative)
            for index, group in self.partition(items_of.keys())
        ]
        if len(jobs) == 1:
            scattered = [self._sweep_shard_pairs(jobs[0])]
        else:
            scattered = self._router.map(self._sweep_shard_pairs, jobs)
        # Redistribute in shard order: deterministic, and each hash's
        # contribution lands in exactly the targets that contained it.
        for pairs in scattered:
            for h, owner in pairs:
                entry = items_of[h]
                if type(entry) is int:
                    matched = matched_list[entry]
                    if owner in matched:
                        matched[owner].append(h)
                    else:
                        matched[owner] = [h]
                else:
                    for i in entry:
                        matched = matched_list[i]
                        if owner in matched:
                            matched[owner].append(h)
                        else:
                            matched[owner] = [h]
        return matched_list

    def _sweep_shard_pairs(
        self, job: Tuple[int, List[int], bool]
    ) -> List[Tuple[int, str]]:
        """Sweep one shard for a fused batch; returns (hash, owner) pairs.

        Same fault and counter semantics as :meth:`_sweep_shard`, but
        ownership is reported per hash (not yet grouped per owner) so the
        caller can redistribute matches to the batch's targets. The lock
        is taken directly rather than through the context manager — this
        is the hot path of the batched tier and the generator-based
        ``read_locked`` costs more than the probe loop it guards.
        """
        index, group, _authoritative = job
        if self._faults is not None:
            fault = self._faults[index].next_fault()
            if fault.kind == "drop":
                raise ShardDegraded(index, "drop")
            if fault.kind == "error":
                raise ShardDegraded(index, "error", fault.status)
        pairs: List[Tuple[int, str]] = []
        self._c_sweeps[index].inc()
        self._c_hashes_swept[index].inc(len(group))
        lock = self.locks[index]
        lock.acquire_read()
        try:
            shard = self.shards[index]
            if _authoritative:
                oldest_owner = shard.oldest_owner
                for h in group:
                    owner = oldest_owner(h)
                    if owner is not None:
                        pairs.append((h, owner))
            else:
                observers = shard.observers
                for h in group:
                    for owner in observers(h):
                        pairs.append((h, owner))
        finally:
            lock.release_read()
        return pairs

    # ------------------------------------------------------------------
    # HashDatabase-compatible surface (routed / aggregated)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, hash_value: int) -> bool:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return hash_value in self.shards[index]

    def record(self, hash_value: int, segment_id: str, timestamp: float) -> bool:
        index = self.shard_of(hash_value)
        with self.locks[index].write_locked():
            changed = self.shards[index].record(hash_value, segment_id, timestamp)
        if changed:
            self.bump_epoch(index)
        return changed

    def oldest_owner(self, hash_value: int) -> Optional[str]:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return self.shards[index].oldest_owner(hash_value)

    def recompute_oldest_owner(self, hash_value: int) -> Optional[str]:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return self.shards[index].recompute_oldest_owner(hash_value)

    def owners(self, hash_value: int) -> List[Tuple[str, float]]:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return self.shards[index].owners(hash_value)

    def observers(self, hash_value: int) -> Tuple[str, ...]:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return self.shards[index].observers(hash_value)

    def first_seen(self, hash_value: int, segment_id: str) -> Optional[float]:
        index = self.shard_of(hash_value)
        with self.locks[index].read_locked():
            return self.shards[index].first_seen(hash_value, segment_id)

    def remove_observation(self, hash_value: int, segment_id: str) -> bool:
        index = self.shard_of(hash_value)
        with self.locks[index].write_locked():
            changed = self.shards[index].remove_observation(hash_value, segment_id)
        if changed:
            self.bump_epoch(index)
        return changed

    def discard_segment(self, segment_id: str) -> int:
        """Remove the segment's observations from every shard it touches."""
        removed = 0
        for index in range(self.n_shards):
            with self.locks[index].write_locked():
                shard_removed = self.shards[index].discard_segment(segment_id)
            if shard_removed:
                removed += shard_removed
                self.bump_epoch(index)
        return removed

    def hashes(self) -> List[int]:
        out: List[int] = []
        for index in range(self.n_shards):
            with self.locks[index].read_locked():
                out.extend(self.shards[index].hashes())
        return out

    def hashes_of(self, segment_id: str) -> Set[int]:
        out: Set[int] = set()
        for index in range(self.n_shards):
            with self.locks[index].read_locked():
                out |= self.shards[index].hashes_of(segment_id)
        return out

    def owned_hashes(self, segment_id: str) -> Set[int]:
        out: Set[int] = set()
        for index in range(self.n_shards):
            with self.locks[index].read_locked():
                out |= self.shards[index].owned_hashes(segment_id)
        return out

    def owner_epoch(self, segment_id: str) -> int:
        """Sum of per-shard epochs — bumps whenever any shard's does."""
        total = 0
        for index in range(self.n_shards):
            with self.locks[index].read_locked():
                total += self.shards[index].owner_epoch(segment_id)
        return total

    @property
    def ownership_changes(self) -> int:
        return sum(shard.ownership_changes for shard in self.shards)

    def ownership_meta(self) -> Tuple[Dict[str, int], int]:
        """Merged epoch state across shards: (per-segment epochs, changes)."""
        merged: Dict[str, int] = {}
        changes = 0
        for index in range(self.n_shards):
            with self.locks[index].read_locked():
                epochs, shard_changes = self.shards[index].ownership_meta()
            for segment_id, epoch in epochs.items():
                merged[segment_id] = merged.get(segment_id, 0) + epoch
            changes += shard_changes
        return merged, changes

    def restore_ownership_meta(self, epochs: Dict[str, int], changes: int) -> None:
        """Overwrite epoch counters with snapshot values (recovery only).

        The snapshot stores the *summed* view, so park it all on shard 0:
        the summing accessors then report exactly the persisted values.
        """
        for index in range(self.n_shards):
            with self.locks[index].write_locked():
                self.shards[index].restore_ownership_meta({}, 0)
        with self.locks[0].write_locked():
            self.shards[0].restore_ownership_meta(epochs, changes)

    def shard_sizes(self) -> List[int]:
        """Distinct-hash count per shard (balance reporting)."""
        return [len(shard) for shard in self.shards]

    def check_invariants(self) -> None:
        """Per-shard index invariants plus hash-placement discipline."""
        for index, shard in enumerate(self.shards):
            with self.locks[index].read_locked():
                shard.check_invariants()
                for h in shard.hashes():
                    assert self.shard_of(h) == index, (
                        f"hash {h} stored on shard {index}, "
                        f"routes to {self.shard_of(h)}"
                    )


class ShardedDisclosureEngine(DisclosureEngine):
    """A :class:`DisclosureEngine` whose ``DBhash`` is sharded.

    Behaviourally identical to the base engine (differential-tested at
    shard counts 1/2/4/8): the sweep accumulation is scattered across
    shards and merged, then handed to the *same*
    ``_threshold_pass`` the unsharded engine runs, and delta application
    becomes two batched per-shard passes (record new, withdraw removed).

    Queries still run under the engine/tracker read lock and mutations
    under its write lock — the segment database, caches, and version
    counter need it, and it keeps the consistency contract identical to
    the unsharded engine. What sharding changes is the *inner* hash-table
    locking: shard locks are independent, so a multi-engine deployment
    (or a future finer-grained tracker lock) stops serialising hash-table
    traffic on one lock. Shard locks always nest inside the engine lock,
    in ascending shard order (DESIGN.md §11 lock hierarchy).
    """

    def __init__(
        self,
        config: Optional[FingerprintConfig] = None,
        clock: Optional[Clock] = None,
        *,
        authoritative: bool = True,
        kind: str = "paragraph",
        lock: Optional[RWLock] = None,
        registry: Optional[MetricsRegistry] = None,
        n_shards: int = 4,
        router=None,
        shard_faults: Optional[Sequence[FaultInjector]] = None,
    ) -> None:
        super().__init__(
            config,
            clock,
            authoritative=authoritative,
            kind=kind,
            lock=lock,
            registry=registry,
        )
        # Replace the plain hash database; the base engine's derived
        # gauges close over ``self.hash_db`` dynamically, so they track
        # the sharded aggregate from here on.
        self.hash_db = ShardedHashDatabase(
            n_shards,
            hash_bits=self.config.hash_bits,
            scope=self.registry.scope(f"engine.{kind}.shard."),
            router=router,
            faults=shard_faults,
        )
        self.metrics.gauge("shards", fn=lambda: self.hash_db.n_shards)

    @property
    def n_shards(self) -> int:
        return self.hash_db.n_shards

    def _apply_fingerprint_delta(
        self,
        segment_id: str,
        new_hashes,
        old_hashes,
        now: float,
    ) -> bool:
        recorded = self.hash_db.record_fingerprint(segment_id, new_hashes, now)
        withdrawn = self.hash_db.withdraw(segment_id, old_hashes - new_hashes)
        if recorded or withdrawn:
            # A fingerprint change moves this segment's score denominator
            # for *every* check it can match, so the epoch bump must
            # cover all shards holding any of its old or new hashes —
            # not just the shards whose associations changed (§13).
            self.hash_db.bump_epochs_for(new_hashes | old_hashes)
        return recorded or withdrawn

    def version_epoch(self, hashes):
        """Per-shard epoch token for a check over *hashes* (§13).

        Overrides the base engine's global version: only the shards the
        hashes route to contribute, so a verdict cached under this token
        survives mutations that land entirely on other shards. ``None``
        (routing unknown) falls back to the global version counter.
        """
        if hashes is None:
            return self._version
        return self.hash_db.epoch_for(hashes)

    def _run_algorithm(
        self,
        target_id: Optional[str],
        fingerprint: Fingerprint,
        exclude_doc: Optional[str],
    ) -> DisclosureReport:
        """Scatter/gather sweep, then the inherited threshold pass."""
        matched = self.hash_db.sweep(
            fingerprint.hashes, authoritative=self._authoritative
        )
        self._c_candidates_swept.inc(len(matched))
        return self._threshold_pass(target_id, fingerprint, exclude_doc, matched)

    def _sweep_targets(self, targets):
        """Fused batch sweep: one scatter/gather for the whole batch."""
        return self.hash_db.sweep_many(
            targets, authoritative=self._authoritative
        )

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["shards"] = self.hash_db.n_shards
        return out
