"""Passage attribution for disclosure reports.

The winnowing fingerprint stores, for every selected hash, the span of
original text it was computed from (paper §4.1). Given the matched hash
set from a :class:`~repro.disclosure.engine.SourceDisclosure`, this
module maps those hashes back to character ranges in both the source and
the target text, so the UI layer can highlight exactly the passages that
caused a warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.fingerprint import Fingerprint


@dataclass(frozen=True)
class AttributedMatch:
    """Character-level explanation of one disclosure report.

    Attributes:
        matched_hashes: the hash values behind the report.
        source_spans: merged (start, end) ranges in the source text.
        target_spans: merged (start, end) ranges in the target text.
    """

    matched_hashes: FrozenSet[int]
    source_spans: Tuple[Tuple[int, int], ...]
    target_spans: Tuple[Tuple[int, int], ...]

    def source_excerpts(self, source_text: str) -> List[str]:
        return [source_text[a:b] for a, b in self.source_spans]

    def target_excerpts(self, target_text: str) -> List[str]:
        return [target_text[a:b] for a, b in self.target_spans]


def attribute_disclosure(
    source_fp: Fingerprint,
    target_fp: Fingerprint,
    matched_hashes: FrozenSet[int],
) -> AttributedMatch:
    """Map *matched_hashes* back to spans in source and target."""
    return AttributedMatch(
        matched_hashes=matched_hashes,
        source_spans=tuple(source_fp.spans_for(matched_hashes)),
        target_spans=tuple(target_fp.spans_for(matched_hashes)),
    )
