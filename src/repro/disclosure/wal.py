"""Write-ahead logging, compaction, crash recovery, and standby catch-up.

The snapshot persistence of :mod:`repro.disclosure.persistence` makes
§4.4's long-term fingerprint store durable only at snapshot boundaries:
everything observed since the last save dies with the process. This
module closes that gap with a write-ahead log (the ROADMAP's
"durability and restart at scale" item):

* every engine mutation (observe / remove / set_threshold, plus expiry
  sweeps and policy suppressions) is appended to an append-only log of
  length-prefixed, CRC-checksummed JSON records *before* the caller is
  acknowledged;
* periodic **compaction** folds the log into an atomic snapshot
  (stamped with the last folded log sequence number) and rotates the
  log, bounding both file size and recovery time;
* **recovery** loads the snapshot, replays the log tail (records with
  ``lsn`` beyond the snapshot's stamp), truncates any torn final
  record, and resumes the logical clock past every recorded timestamp —
  reconstructing the pre-crash engine field-for-field;
* a **standby** catches up by log shipping: :class:`LogShipper` reads
  the primary's log tail past a cursor, and
  :class:`~repro.plugin.server.StandbyLookupServer` applies it to a
  warm replica that can serve Algorithm 1 verdicts the moment the
  primary dies.

Crash points are injected deterministically through the existing
:class:`~repro.util.faults.FaultInjector` — one fault decision per
append, mapped onto crash semantics (see :meth:`WriteAheadLog.append`)
— so the recovery matrix covers crashes at record boundaries, torn
mid-record writes, and written-but-unacknowledged records without
sleeps or subprocesses.

File format (one log file)::

    file   := MAGIC record*
    MAGIC  := b"BFWAL1\\n"
    record := length:uint32be  crc32:uint32be  payload[length]

``payload`` is compact JSON carrying at least ``lsn`` (a strictly
increasing sequence number, global across all shard files of one log
set) and ``op``; with a cipher it is the UploadCipher armour of that
JSON, giving the log the same at-rest encryption as snapshots (§4.4).
A record whose length, checksum, or JSON fails to decode marks the torn
tail: everything before it is kept, it and everything after is
discarded (and the file truncated back to the last good record). A
record that passes its checksum but cannot be *decrypted* is not tail
damage — it means the wrong cipher key, and raises
:class:`~repro.errors.WALCorrupt` before anything is truncated.

Sharded deployments (:class:`~repro.disclosure.sharding.
ShardedHashDatabase` behind a :class:`WALSet` with ``n_shards > 1``)
keep one log file per shard, routed by segment id; the shared LSN
counter makes the merged, LSN-sorted stream equivalent to a single log.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from json.encoder import encode_basestring_ascii as _escape
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.disclosure.engine import DisclosureEngine
from repro.disclosure.persistence import (
    _max_timestamp,
    read_snapshot,
    restore_into,
    save_engine,
)
from repro.disclosure.store import SegmentRecord
from repro.errors import (
    DisclosureError,
    SimulatedCrash,
    UnknownSegmentError,
    WALCorrupt,
)
from repro.fingerprint import Fingerprint, FingerprintConfig
from repro.fingerprint.fingerprint import FingerprintHash
from repro.obs.registry import MetricsRegistry, MetricsScope
from repro.plugin.crypto import UploadCipher
from repro.util.clock import LogicalClock
from repro.util.faults import FaultInjector

#: Log file magic; bump the digit on incompatible format changes.
MAGIC = b"BFWAL1\n"

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

#: Allowed fsync policies: ``"always"`` fsyncs every append (maximum
#: durability), ``"batch"`` fsyncs every ``fsync_interval`` appends
#: (the default; bounded loss window), ``"never"`` leaves flushing to
#: the OS (fastest; loss window unbounded). All three policies flush
#: Python's buffer on every append so a concurrent reader (the log
#: shipper) always sees whole records.
FSYNC_POLICIES = ("always", "batch", "never")

#: Default ``fsync_interval`` for the batch policy. An fsync costs a
#: third of a millisecond on commodity hardware — several times the
#: record encode itself — so the default amortises it over a window of
#: 64 acknowledged ops; ``close()``/``sync()`` always flush the window.
#: Deployments wanting a tighter loss bound turn the knob down.
DEFAULT_FSYNC_INTERVAL = 64

#: Operations a log record may carry. ``observe`` / ``remove`` /
#: ``threshold`` mutate engine state on replay; ``expire`` and
#: ``suppress`` are informational markers (the removes of an expiry
#: sweep are journaled individually; suppressions replicate the audit
#: obligation to a standby); ``compact`` opens a rotated log and pins
#: the snapshot LSN it follows.
OPS = ("observe", "remove", "threshold", "expire", "suppress", "compact")

#: Default file names inside a durable engine's directory.
SNAPSHOT_NAME = "snapshot.json"


def _wal_name(shard: int, n_shards: int) -> str:
    return "wal.log" if n_shards == 1 else f"wal.{shard}.log"


class LSNCounter:
    """Thread-safe allocator of strictly increasing sequence numbers.

    Shared by every shard file of one :class:`WALSet`, so the merged
    stream has a total order regardless of which file a record landed
    in.
    """

    def __init__(self, start: int = 1) -> None:
        self._mutex = threading.Lock()
        self._next = start

    def allocate(self) -> int:
        with self._mutex:
            lsn = self._next
            self._next += 1
            return lsn

    def observe(self, lsn: int) -> None:
        """Bump past an LSN seen on disk (during open/recovery)."""
        with self._mutex:
            self._next = max(self._next, lsn + 1)

    @property
    def last_allocated(self) -> int:
        with self._mutex:
            return self._next - 1


def _decode_payload(raw: bytes, cipher: Optional[UploadCipher]) -> dict:
    text = raw.decode("utf-8")
    if UploadCipher.is_encrypted(text):
        if cipher is None:
            raise WALCorrupt("encrypted WAL record but no cipher supplied")
        # The checksum already validated these ciphertext bytes, so a
        # decrypt or decode failure here is a wrong key, not a torn
        # append — raise (the scan re-raises WALCorrupt) instead of
        # letting the caller classify it as tail damage and truncate
        # acknowledged records away.
        try:
            text = cipher.decrypt(text)
            record = json.loads(text)
        except Exception as exc:
            raise WALCorrupt(
                "WAL record cannot be decrypted — wrong cipher key? "
                f"({type(exc).__name__})"
            ) from exc
    else:
        record = json.loads(text)
    if not isinstance(record, dict) or "lsn" not in record or "op" not in record:
        raise WALCorrupt(f"WAL record missing lsn/op: {record!r}")
    return record


def scan_wal_file(
    path, *, cipher: Optional[UploadCipher] = None
) -> Tuple[List[dict], int, int]:
    """Scan one log file into records plus torn-tail accounting.

    Returns ``(records, good_bytes, torn_bytes)``: *good_bytes* is the
    offset of the first unreadable byte (the length a recovery truncate
    should restore), *torn_bytes* what a crash left beyond it. A
    missing file scans as empty. A file that exists but lacks the magic
    header raises :class:`~repro.errors.WALCorrupt` — that is damage a
    torn append cannot cause — and so does a record that passes its
    checksum but cannot be decrypted: that is a wrong cipher key, and
    classifying it as tail damage would let recovery truncate every
    acknowledged record away.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    if not blob:
        return [], 0, 0
    if not blob.startswith(MAGIC):
        raise WALCorrupt(f"{path} is not a WAL file (bad magic)")
    records: List[dict] = []
    offset = len(MAGIC)
    while offset < len(blob):
        if offset + _HEADER.size > len(blob):
            break  # torn header
        length, crc = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(blob):
            break  # torn payload
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or corrupt record: stop trusting the file here
        try:
            records.append(_decode_payload(payload, cipher))
        except WALCorrupt:
            raise  # wrong key / missing cipher: never truncated away
        except Exception:
            break  # unencrypted checksummed garbage — treat as tail damage
        offset = end
    return records, offset, len(blob) - offset


def read_wal_directory(
    directory, *, cipher: Optional[UploadCipher] = None
) -> Tuple[List[dict], int]:
    """All records of every ``wal*.log`` under *directory*, LSN-sorted.

    Returns ``(records, torn_bytes_total)``. Read-only — used by
    recovery previews and the log shipper; the writing side
    (:class:`WALSet`) also truncates torn tails when it opens.
    """
    directory = Path(directory)
    records: List[dict] = []
    torn_total = 0
    for path in sorted(directory.glob("wal*.log")):
        shard_records, _good, torn = scan_wal_file(path, cipher=cipher)
        records.extend(shard_records)
        torn_total += torn
    records.sort(key=lambda r: r["lsn"])
    return records, torn_total


class WriteAheadLog:
    """One append-only, checksummed log file.

    Opening an existing file scans it, truncates any torn tail back to
    the last whole record, and resumes the LSN counter past the largest
    LSN on disk. The scanned records are kept on
    :attr:`recovered_records` so recovery does not read the file twice.

    Appends are serialised under a mutex; each append draws one fault
    decision from *faults* (when given) and maps it onto crash
    semantics:

    * ``drop`` — the process dies *before* the record reaches the file:
      a clean record-boundary crash, the operation is lost;
    * ``latency`` — a torn write: the first ``int(fault.latency)``
      bytes of the encoded record land (clamped to length-1, so the
      record is genuinely torn), then the process dies; recovery
      truncates it away, the operation is lost;
    * ``error`` — the record is fully written and fsynced but the
      process dies before the caller is acknowledged: recovery replays
      it, the operation *survives*.

    Every injected crash raises :class:`~repro.errors.SimulatedCrash`
    and permanently kills this log object (like the process it models);
    recovery happens by constructing a fresh one on the same path.
    """

    def __init__(
        self,
        path,
        *,
        fsync: str = "batch",
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        cipher: Optional[UploadCipher] = None,
        faults: Optional[FaultInjector] = None,
        scope: Optional[MetricsScope] = None,
        counter: Optional[LSNCounter] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval < 1:
            raise ValueError(f"fsync_interval must be >= 1, got {fsync_interval}")
        self.path = Path(path)
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._cipher = cipher
        self._faults = faults
        self._counter = counter or LSNCounter()
        self._mutex = threading.Lock()
        self._dead = False
        self._appends_since_fsync = 0
        scope = scope or MetricsRegistry().scope("wal.")
        self.metrics = scope
        self._c_appends = scope.counter("appends")
        self._c_bytes = scope.counter("bytes_appended")
        self._c_fsyncs = scope.counter("fsyncs")
        self._c_crashes = scope.counter("crashes_injected")
        self._c_torn = scope.counter("torn_bytes_truncated")
        self._h_record_bytes = scope.histogram(
            "record_bytes", buckets=(64, 256, 1024, 4096, 16384)
        )
        #: Records found on disk when this log was opened (LSN order as
        #: stored); recovery consumes these instead of re-reading.
        self.recovered_records, good_bytes, torn = scan_wal_file(
            self.path, cipher=cipher
        )
        for record in self.recovered_records:
            self._counter.observe(record["lsn"])
        if self.path.exists():
            if torn:
                # Truncate the torn tail so the new appends start at a
                # record boundary — the recovery half of atomicity.
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_bytes)
                self._c_torn.inc(torn)
            self._handle = open(self.path, "ab")
            if self._handle.tell() == 0:
                self._handle.write(MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
        else:
            self._handle = open(self.path, "wb")
            self._handle.write(MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    @property
    def last_lsn(self) -> int:
        return self._counter.last_allocated

    def append(self, op: str, **fields) -> int:
        """Append one record; returns its LSN.

        The record is on disk (modulo the fsync policy's window) when
        this returns — the write-ahead contract callers rely on.
        """
        lsn = self._counter.allocate()
        self.append_with_lsn(lsn, op, fields)
        return lsn

    def append_with_lsn(self, lsn: int, op: str, fields: dict) -> None:
        """Append a record under an externally allocated LSN.

        Used by :class:`WALSet`, which allocates from the shared counter
        before routing to a shard file.
        """
        if op not in OPS:
            raise DisclosureError(f"unknown WAL op {op!r}")
        payload_text = json.dumps(
            {"lsn": lsn, "op": op, **fields}, separators=(",", ":"),
            sort_keys=True,
        )
        self.append_payload_with_lsn(lsn, payload_text)

    def append_payload_with_lsn(self, lsn: int, payload_text: str) -> None:
        """Append a pre-encoded payload under an externally allocated LSN.

        *payload_text* must be exactly the compact, key-sorted JSON that
        :meth:`append_with_lsn` would produce for the same record —
        byte-identical, so readers cannot tell which path wrote a
        record. Exists for the one op hot enough to care (``observe``,
        whose selections :class:`EngineJournal` formats by hand).
        """
        if self._cipher is not None:
            payload_text = self._cipher.encrypt(payload_text)
        payload = payload_text.encode("utf-8")
        encoded = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with self._mutex:
            if self._dead:
                raise DisclosureError(
                    f"WAL {self.path} is dead after a simulated crash"
                )
            fault = self._faults.next_fault() if self._faults is not None else None
            if fault is not None and fault.kind == "drop":
                self._dead = True
                self._c_crashes.inc()
                raise SimulatedCrash(
                    f"before appending lsn {lsn} to {self.path}"
                )
            if fault is not None and fault.kind == "latency":
                torn = min(int(fault.latency), len(encoded) - 1)
                torn = max(torn, 0)
                self._handle.write(encoded[:torn])
                self._handle.flush()
                self._dead = True
                self._c_crashes.inc()
                raise SimulatedCrash(
                    f"mid-record after {torn} bytes of lsn {lsn} in {self.path}"
                )
            self._handle.write(encoded)
            # Always push to the OS so a shipper reading the file sees
            # whole records; fsync (durability) follows the policy.
            self._handle.flush()
            self._appends_since_fsync += 1
            if self._fsync == "always" or (
                self._fsync == "batch"
                and self._appends_since_fsync >= self._fsync_interval
            ):
                os.fsync(self._handle.fileno())
                self._appends_since_fsync = 0
                self._c_fsyncs.inc()
            if fault is not None and fault.kind == "error":
                self._dead = True
                self._c_crashes.inc()
                raise SimulatedCrash(
                    f"after appending lsn {lsn} to {self.path}, before ack"
                )
            self._c_appends.inc()
            self._c_bytes.inc(len(encoded))
            self._h_record_bytes.observe(len(encoded))

    def sync(self) -> None:
        """Force an fsync regardless of policy."""
        with self._mutex:
            if self._dead:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._appends_since_fsync = 0
            self._c_fsyncs.inc()

    def rotate(self, snapshot_lsn: int) -> None:
        """Replace the file with a fresh log opening at a compact record.

        Called after a compaction snapshot stamped *snapshot_lsn* is
        durably in place. The fresh file's first record (``op:
        "compact"``) pins the LSN the snapshot covers; a crash before
        the replace leaves the old file, whose records are all at or
        below *snapshot_lsn* and therefore skipped at replay — either
        order is safe.
        """
        with self._mutex:
            if self._dead:
                raise DisclosureError(
                    f"WAL {self.path} is dead after a simulated crash"
                )
            lsn = self._counter.allocate()
            payload_text = json.dumps(
                {"lsn": lsn, "op": "compact", "snapshot_lsn": snapshot_lsn},
                separators=(",", ":"), sort_keys=True,
            )
            if self._cipher is not None:
                payload_text = self._cipher.encrypt(payload_text)
            payload = payload_text.encode("utf-8")
            encoded = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            tmp = self.path.with_name(self.path.name + ".rotate.tmp")
            with open(tmp, "wb") as handle:
                handle.write(MAGIC + encoded)
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "ab")

    def close(self) -> None:
        with self._mutex:
            if self._handle.closed:
                return
            if not self._dead:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._handle.close()


class WALSet:
    """A directory of per-shard logs presenting one logical WAL.

    ``n_shards == 1`` keeps the classic single ``wal.log``; more shards
    give the :class:`~repro.disclosure.sharding.ShardedHashDatabase`
    tier one file per shard (``wal.<i>.log``), with records routed by a
    stable hash of the segment id (``zlib.crc32`` — Python's ``hash()``
    is salted per process and would scatter a segment's records across
    files between runs). One shared :class:`LSNCounter` totally orders
    the merged stream.
    """

    def __init__(
        self,
        directory,
        *,
        n_shards: int = 1,
        fsync: str = "batch",
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        cipher: Optional[UploadCipher] = None,
        faults: Optional[FaultInjector] = None,
        scope: Optional[MetricsScope] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        # Opening with the wrong shard count would silently ignore the
        # extra shards' files — and drop their acknowledged records from
        # every recovery. Refuse before any log is opened (and therefore
        # before any torn-tail truncation touches the directory).
        expected = {_wal_name(i, n_shards) for i in range(n_shards)}
        unexpected = sorted(
            p.name
            for p in self.directory.glob("wal*.log")
            if p.name not in expected
        )
        if unexpected:
            raise WALCorrupt(
                f"{self.directory} holds WAL file(s) {unexpected} that "
                f"n_shards={n_shards} would not open; recovering with the "
                "wrong shard count would drop their records"
            )
        self._mutex = threading.Lock()
        self.counter = LSNCounter()
        scope = scope or MetricsRegistry().scope("wal.")
        self.metrics = scope
        # One fault injector shared across shard logs: appends are
        # serialised under this set's mutex, so the schedule's order is
        # the global append order regardless of routing.
        self._shards = [
            WriteAheadLog(
                self.directory / _wal_name(i, n_shards),
                fsync=fsync,
                fsync_interval=fsync_interval,
                cipher=cipher,
                faults=faults,
                scope=scope,
                counter=self.counter,
            )
            for i in range(n_shards)
        ]
        #: LSN-sorted union of every shard's on-disk records at open.
        self.recovered_records = sorted(
            (r for shard in self._shards for r in shard.recovered_records),
            key=lambda r: r["lsn"],
        )

    def paths(self) -> List[Path]:
        return [shard.path for shard in self._shards]

    def shard_for(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.n_shards

    @property
    def last_lsn(self) -> int:
        return self.counter.last_allocated

    def append(self, op: str, *, key: str = "", **fields) -> int:
        """Append one record, routed to *key*'s shard; returns its LSN."""
        with self._mutex:
            lsn = self.counter.allocate()
            self._shards[self.shard_for(key)].append_with_lsn(lsn, op, fields)
            return lsn

    def append_payload(
        self, key: str, payload_for: Callable[[int], str]
    ) -> int:
        """Append a pre-encoded record, routed to *key*'s shard.

        ``payload_for(lsn)`` must return the byte-identical compact
        JSON :meth:`append` would write (see
        :meth:`WriteAheadLog.append_payload_with_lsn`); the callback
        shape exists because the LSN lands inside the payload but is
        only allocated here, under the set's mutex.
        """
        with self._mutex:
            lsn = self.counter.allocate()
            self._shards[self.shard_for(key)].append_payload_with_lsn(
                lsn, payload_for(lsn)
            )
            return lsn

    def sync(self) -> None:
        for shard in self._shards:
            shard.sync()

    def rotate(self, snapshot_lsn: int) -> None:
        """Rotate every shard to a fresh log pinned at *snapshot_lsn*.

        Refuses when records beyond *snapshot_lsn* have already been
        acknowledged: rotating would replace the shard files and discard
        them, breaking the write-ahead contract. Callers (``
        DurableEngine.compact``) must block mutations across the
        snapshot *and* this rotation.
        """
        with self._mutex:
            if self.counter.last_allocated > snapshot_lsn:
                raise DisclosureError(
                    f"rotate(snapshot_lsn={snapshot_lsn}) would discard "
                    f"acknowledged records through lsn "
                    f"{self.counter.last_allocated}; block appends across "
                    "the snapshot and the rotation"
                )
            for shard in self._shards:
                shard.rotate(snapshot_lsn)

    def close(self) -> None:
        for shard in self._shards:
            shard.close()


class EngineJournal:
    """Adapts engine mutation hooks onto WAL appends.

    Attached to a :class:`~repro.disclosure.engine.DisclosureEngine`
    via :meth:`~repro.disclosure.engine.DisclosureEngine.
    attach_journal`; every hook serialises the *resolved* operation
    (computed timestamps, retained doc ids) so replay needs no engine
    logic beyond applying records verbatim.
    """

    def __init__(self, wal: WALSet) -> None:
        self.wal = wal

    def log_observe(self, kind: str, record: SegmentRecord, ts: float) -> None:
        # The hottest record by far, so it is formatted by hand instead
        # of through json.dumps — byte-identical output (a test holds
        # the two encoders together), but without building the interim
        # dict and nested lists. Only the selections are logged: a
        # fingerprint's hash set is exactly its selection values (the
        # winnowed positions), so repeating it would double the encode
        # cost for bytes replay can derive for free.
        selections = ",".join(
            ["[%d,%d,%d]" % (s.value, s.orig_start, s.orig_end)
             for s in record.fingerprint.selections]
        )
        prefix = '{"doc_id":%s,"id":%s,"kind":%s,"lsn":' % (
            "null" if record.doc_id is None else _escape(record.doc_id),
            _escape(record.segment_id),
            _escape(kind),
        )
        # repr() spells ints and floats exactly as the json encoder does.
        suffix = ',"op":"observe","selections":[%s],"threshold":%r,"ts":%r}' % (
            selections, record.threshold, ts,
        )
        self.wal.append_payload(
            record.segment_id, lambda lsn: "%s%d%s" % (prefix, lsn, suffix)
        )

    def log_remove(self, kind: str, segment_id: str) -> None:
        self.wal.append("remove", key=segment_id, kind=kind, id=segment_id)

    def log_threshold(
        self, kind: str, segment_id: str, threshold: float
    ) -> None:
        self.wal.append(
            "threshold", key=segment_id, kind=kind, id=segment_id,
            threshold=threshold,
        )

    def log_expire(
        self, kind: str, older_than: float, removed: Sequence[str]
    ) -> None:
        self.wal.append(
            "expire", kind=kind, older_than=older_than, removed=list(removed),
        )

    def log_suppress(
        self,
        *,
        user: str,
        tag: str,
        segment_id: str,
        justification: str,
        timestamp: float,
        target_service: Optional[str] = None,
    ) -> None:
        self.wal.append(
            "suppress",
            key=segment_id,
            user=user,
            tag=tag,
            segment=segment_id,
            justification=justification,
            ts=timestamp,
            service=target_service,
        )


# ----------------------------------------------------------------------
# Replay and recovery
# ----------------------------------------------------------------------

def apply_record(
    record: dict, resolve_engine: Callable[[str], Optional[DisclosureEngine]]
) -> bool:
    """Apply one log record to the engine resolved for its kind.

    Returns True when engine state changed. Informational ops
    (``expire`` markers, ``suppress``, ``compact``) and removes of
    segments unknown to the target (already folded into a snapshot, or
    a replayed expiry) apply as no-ops — replay is idempotent.

    Replay must run with no journal attached to the target engines;
    re-journaling recovered operations would double them on the next
    recovery.
    """
    op = record["op"]
    if op not in ("observe", "remove", "threshold"):
        return False
    engine = resolve_engine(record.get("kind", "paragraph"))
    if engine is None:
        return False
    if engine._journal is not None:
        raise DisclosureError(
            "refusing to replay into an engine with a journal attached"
        )
    if op == "observe":
        selections = tuple(
            FingerprintHash(value, start, end)
            for value, start, end in record["selections"]
        )
        fingerprint = Fingerprint(
            hashes=frozenset(s.value for s in selections),
            selections=selections,
            config=engine.config,
        )
        engine.observe_fingerprint(
            record["id"],
            fingerprint,
            threshold=record["threshold"],
            doc_id=record["doc_id"],
            timestamp=record["ts"],
        )
        return True
    try:
        if op == "remove":
            engine.remove(record["id"])
        else:
            engine.set_threshold(record["id"], record["threshold"])
    except UnknownSegmentError:
        return False
    return True


def replay_records(
    records: Sequence[dict],
    resolve_engine: Callable[[str], Optional[DisclosureEngine]],
    *,
    after_lsn: int = 0,
) -> Tuple[int, int]:
    """Apply *records* with LSN beyond *after_lsn*, in LSN order.

    Returns ``(applied, skipped)`` counts; *skipped* covers both
    records at or below the cutoff and informational no-ops.
    """
    applied = 0
    skipped = 0
    for record in sorted(records, key=lambda r: r["lsn"]):
        if record["lsn"] <= after_lsn:
            skipped += 1
            continue
        if apply_record(record, resolve_engine):
            applied += 1
        else:
            skipped += 1
    return applied, skipped


def max_record_timestamp(records: Sequence[dict]) -> float:
    """Largest timestamp any record carries (0.0 when none do)."""
    latest = 0.0
    for record in records:
        ts = record.get("ts")
        if ts is not None:
            latest = max(latest, ts)
    return latest


@dataclass(frozen=True)
class RecoveryStats:
    """What one recovery did, for logs, metrics, and the CLI."""

    snapshot_lsn: int
    replayed: int
    skipped: int
    torn_bytes: int
    last_lsn: int
    resumed_clock: int


class DurableEngine:
    """A disclosure engine whose mutations survive crashes.

    Owns a directory holding an atomic snapshot plus a :class:`WALSet`;
    construction *is* recovery: load the snapshot (if any), replay the
    log tail past its ``wal_lsn`` stamp, truncate torn records, resume
    the logical clock, then attach the journal so new mutations are
    logged. Reads (``fingerprint``, ``disclosing_sources``, ``stats``,
    …) delegate to the wrapped engine untouched.

    ``compact_every`` triggers automatic compaction after that many
    journaled mutations; :meth:`compact` is always available manually.
    ``n_shards`` builds the sharded engine/WAL tier; crash injection
    arrives through ``faults`` exactly as on a bare
    :class:`WriteAheadLog`.
    """

    def __init__(
        self,
        directory,
        *,
        config: Optional[FingerprintConfig] = None,
        cipher: Optional[UploadCipher] = None,
        kind: str = "paragraph",
        authoritative: bool = True,
        fsync: str = "batch",
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        compact_every: Optional[int] = None,
        n_shards: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._cipher = cipher
        self._compact_every = compact_every
        self._ops_since_compact = 0
        self.registry = registry or MetricsRegistry()
        scope = self.registry.scope("wal.")
        self.metrics = scope
        self._c_replayed = scope.counter("records_replayed")
        self._c_skipped = scope.counter("records_skipped")
        self._c_compactions = scope.counter("compactions")
        self._h_recovery_replayed = scope.histogram(
            "recovery_records", buckets=(1, 16, 256, 4096, 65536)
        )

        snapshot_path = self.directory / SNAPSHOT_NAME
        # Read the snapshot *before* opening the logs: a wrong-key or
        # corrupt snapshot must abort recovery while the WAL is still
        # untouched — opening the WALSet truncates torn tails, and with
        # the wrong cipher key that would destroy acknowledged records.
        data = (
            read_snapshot(snapshot_path, cipher=cipher)
            if snapshot_path.exists()
            else None
        )
        persisted_shards: Optional[int] = None
        if data is not None:
            config = FingerprintConfig(**data["config"])
            kind = data.get("kind", kind)
            authoritative = data.get("authoritative", authoritative)
            if data.get("wal_shards") is not None:
                persisted_shards = int(data["wal_shards"])
        if (
            n_shards is not None
            and persisted_shards is not None
            and n_shards != persisted_shards
        ):
            raise DisclosureError(
                f"snapshot {snapshot_path} records {persisted_shards} WAL "
                f"shard(s) but n_shards={n_shards} was requested; recovering "
                "with the wrong shard count would drop shard logs"
            )
        if n_shards is None and persisted_shards is not None and persisted_shards > 1:
            # Adopt the deployment's shard count (like config and kind):
            # `repro recover` need not know how the primary was sharded.
            n_shards = persisted_shards
        snapshot_lsn = int(data.get("wal_lsn", 0)) if data is not None else 0
        self.wal = WALSet(
            self.directory,
            n_shards=n_shards or 1,
            fsync=fsync,
            fsync_interval=fsync_interval,
            cipher=cipher,
            faults=faults,
            scope=scope,
        )
        tail = [
            r for r in self.wal.recovered_records if r["lsn"] > snapshot_lsn
        ]
        # Resume past every persisted timestamp — but a virgin directory
        # (no snapshot, no tail) starts at 0 like a fresh engine would,
        # keeping recovered and never-crashed clocks field-identical.
        has_state = data is not None or bool(tail)
        resumed = (
            int(
                max(
                    _max_timestamp(data) if data is not None else 0.0,
                    max_record_timestamp(tail),
                )
            ) + 1
            if has_state
            else 0
        )
        clock = LogicalClock(start=resumed)
        if n_shards is None:
            self.engine = DisclosureEngine(
                config, clock, authoritative=authoritative, kind=kind,
                registry=self.registry,
            )
        else:
            from repro.disclosure.sharding import ShardedDisclosureEngine

            self.engine = ShardedDisclosureEngine(
                config, clock, authoritative=authoritative, kind=kind,
                registry=self.registry, n_shards=n_shards,
            )
        if data is not None:
            restore_into(self.engine, data)
        applied, skipped = replay_records(tail, lambda _kind: self.engine)
        self._c_replayed.inc(applied)
        self._c_skipped.inc(skipped)
        self._h_recovery_replayed.observe(applied)
        self.recovery = RecoveryStats(
            snapshot_lsn=snapshot_lsn,
            replayed=applied,
            skipped=skipped,
            torn_bytes=int(scope.counter("torn_bytes_truncated").value),
            last_lsn=self.wal.last_lsn,
            resumed_clock=resumed,
        )
        self.engine.attach_journal(EngineJournal(self.wal))

    # -- mutations (journaled via the engine hooks) --------------------

    def observe(self, segment_id: str, text: str, **kwargs) -> SegmentRecord:
        record = self.engine.observe(segment_id, text, **kwargs)
        self._after_mutation()
        return record

    def observe_fingerprint(
        self, segment_id: str, fingerprint: Fingerprint, **kwargs
    ) -> SegmentRecord:
        record = self.engine.observe_fingerprint(
            segment_id, fingerprint, **kwargs
        )
        self._after_mutation()
        return record

    def remove(self, segment_id: str) -> None:
        self.engine.remove(segment_id)
        self._after_mutation()

    def set_threshold(self, segment_id: str, threshold: float) -> None:
        self.engine.set_threshold(segment_id, threshold)
        self._after_mutation()

    def expire(self, *, older_than: float) -> List[str]:
        from repro.disclosure.persistence import expire_segments

        stale = expire_segments(self.engine, older_than=older_than)
        if stale:
            self._after_mutation()
        return stale

    def _after_mutation(self) -> None:
        self._ops_since_compact += 1
        if (
            self._compact_every is not None
            and self._ops_since_compact >= self._compact_every
        ):
            self.compact()

    # -- compaction and lifecycle --------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    def compact(self) -> int:
        """Fold the log into an atomic snapshot; returns its LSN stamp.

        Order matters for crash safety: the snapshot (stamped with the
        last journaled LSN) replaces the old one atomically *first*;
        only then are the log files rotated. A crash between the two
        steps leaves a log whose records are all covered by the
        snapshot's stamp — replay skips them.

        The engine read lock is held across *both* steps: journaled
        mutations append under the write lock, so no record with an LSN
        beyond the stamp can be acknowledged between the snapshot and
        the rotation — rotating outside the lock would let such a
        record be discarded with the old shard files. ``WALSet.rotate``
        additionally refuses if one slipped through.
        """
        with self.engine.lock.read_locked():
            lsn = self.wal.last_lsn
            save_engine(
                self.engine, self.snapshot_path, cipher=self._cipher,
                wal_lsn=lsn, wal_shards=self.wal.n_shards,
            )
            self.wal.rotate(lsn)
        self._ops_since_compact = 0
        self._c_compactions.inc()
        return lsn

    def close(self) -> None:
        self.engine.detach_journal()
        self.wal.close()

    def __getattr__(self, name: str):
        # Reads (disclosing_sources, fingerprint, stats, hash_db, …)
        # pass through to the wrapped engine. Guard the delegate itself
        # so a failed lookup during __init__ cannot recurse.
        if name == "engine":
            raise AttributeError(name)
        return getattr(self.engine, name)


class LogShipper:
    """Incremental reader of a primary's log for standby catch-up.

    Each :meth:`poll` re-scans the primary's ``wal*.log`` files and
    returns the LSN-sorted records beyond the cursor, then advances the
    cursor. Safe against a concurrent appender: a torn final record
    (an append in flight, or the debris of the primary's death) is
    simply not returned; if the append completes it appears on the next
    poll, and if the primary died it never does — exactly the records a
    recovery of the primary would replay.

    Rotation-aware: a rotated log's ``compact`` record has an LSN above
    the cursor, so the standby learns of compactions. Nothing guarantees
    the standby polled every record *before* the rotation folded it into
    the snapshot (which is never shipped) — a slow poller can find a
    ``compact`` record whose ``snapshot_lsn`` is beyond its cursor, and
    the records in between are gone from the log. The shipper itself
    just reports what is on disk; :class:`~repro.plugin.server.
    StandbyLookupServer.catch_up` detects that hole and raises
    :class:`~repro.errors.StandbyGap` rather than silently diverging.
    """

    def __init__(self, directory, *, cipher: Optional[UploadCipher] = None):
        self.directory = Path(directory)
        self._cipher = cipher
        self.cursor = 0

    def poll(self) -> List[dict]:
        records, _torn = read_wal_directory(
            self.directory, cipher=self._cipher
        )
        fresh = [r for r in records if r["lsn"] > self.cursor]
        if fresh:
            self.cursor = fresh[-1]["lsn"]
        return fresh
