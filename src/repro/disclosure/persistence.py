"""Fingerprint persistence, encryption at rest, and retention (§4.4).

"Storing fingerprints long-term to facilitate disclosure calculations
(e.g. DBpar) can introduce an additional attack target if a device gets
compromised. To mitigate this we recommend encrypting all fingerprint
data at rest and performing periodic removal of old fingerprints."

This module implements exactly that: JSON snapshots of a
:class:`~repro.disclosure.engine.DisclosureEngine` (both databases,
with first-seen timestamps preserved so authoritative ownership
survives a restart), optional encryption with the deployment's
:class:`~repro.plugin.crypto.UploadCipher`, and an expiry sweep that
drops segments not updated since a cutoff.

Snapshot writes are atomic: the payload goes to a temp file in the
target directory, is fsynced, and is then ``os.replace``d over the
destination, so a reader never sees a torn snapshot — a crash mid-write
leaves the previous snapshot intact. Crash points can be injected
deterministically through a :class:`~repro.util.faults.FaultInjector`
(see :func:`save_engine`), which is how the regression tests kill the
writer at arbitrary byte positions without sleeps or subprocesses.

Corrupt snapshots surface as :class:`~repro.errors.SnapshotCorrupt`
(a :class:`~repro.errors.DisclosureError`) with a message naming the
file and the failure, never as a raw ``JSONDecodeError`` or
``KeyError`` traceback.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import suppress
from pathlib import Path
from typing import List, Optional

from repro.disclosure.engine import DisclosureEngine
from repro.disclosure.store import SegmentRecord
from repro.errors import DisclosureError, SimulatedCrash, SnapshotCorrupt
from repro.fingerprint import Fingerprint, FingerprintConfig
from repro.fingerprint.fingerprint import FingerprintHash
from repro.plugin.crypto import UploadCipher
from repro.util.clock import Clock, LogicalClock
from repro.util.faults import FaultInjector


def _max_timestamp(data: dict) -> float:
    """Largest timestamp anywhere in a snapshot (0.0 when empty)."""
    latest = 0.0
    for entry in data.get("segments", ()):
        latest = max(latest, entry.get("last_updated", 0.0))
    for owners in data.get("observations", {}).values():
        for _segment_id, timestamp in owners:
            latest = max(latest, timestamp)
    return latest

#: Snapshot format version; bump on incompatible changes.
SNAPSHOT_VERSION = 1


def snapshot_engine(
    engine: DisclosureEngine,
    *,
    wal_lsn: Optional[int] = None,
    wal_shards: Optional[int] = None,
) -> dict:
    """Serialise an engine's databases to a JSON-compatible dict.

    *wal_lsn*, when given, records the last WAL log sequence number
    folded into this snapshot; recovery replays only records beyond it
    (see :mod:`repro.disclosure.wal`). *wal_shards* records the WAL
    set's shard count, so recovery opens every ``wal.<i>.log`` file the
    deployment wrote instead of silently dropping the ones a wrong
    shard count would not look for.
    """
    config = engine.config
    segments = []
    for record in engine.segment_db:
        segments.append(
            {
                "id": record.segment_id,
                "threshold": record.threshold,
                "kind": record.kind,
                "doc_id": record.doc_id,
                "last_updated": record.last_updated,
                "hashes": sorted(record.fingerprint.hashes),
                "selections": [
                    [s.value, s.orig_start, s.orig_end]
                    for s in record.fingerprint.selections
                ],
            }
        )
    observations = {}
    for hash_value in engine.hash_db.hashes():
        owners = engine.hash_db.owners(hash_value)
        observations[str(hash_value)] = [[seg, ts] for seg, ts in owners]
    data = {
        "version": SNAPSHOT_VERSION,
        "config": {
            "ngram_size": config.ngram_size,
            "window_size": config.window_size,
            "hash_bits": config.hash_bits,
        },
        "authoritative": engine._authoritative,
        "kind": engine._kind,
        "segments": segments,
        "observations": observations,
    }
    # Owner epochs are history-dependent (a record/withdraw counter), so
    # replaying record() calls at restore cannot reproduce them; persist
    # the counters themselves. Additive fields: old snapshots load fine.
    epochs, changes = engine.hash_db.ownership_meta()
    data["owner_epochs"] = {k: v for k, v in epochs.items() if v}
    data["ownership_changes"] = changes
    if wal_lsn is not None:
        data["wal_lsn"] = wal_lsn
    if wal_shards is not None:
        data["wal_shards"] = wal_shards
    return data


def restore_engine(
    data: dict, *, clock: Optional[Clock] = None
) -> DisclosureEngine:
    """Rebuild an engine from a snapshot dict.

    First-seen timestamps are restored verbatim, so the earliest-owner
    relation — and therefore every disclosure decision — is identical
    to the engine that was saved. Malformed snapshot dicts raise
    :class:`~repro.errors.SnapshotCorrupt` naming the defect.
    """
    if not isinstance(data, dict):
        raise SnapshotCorrupt(
            f"snapshot root must be a JSON object, got {type(data).__name__}"
        )
    if data.get("version") != SNAPSHOT_VERSION:
        raise DisclosureError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    try:
        config = FingerprintConfig(**data["config"])
        engine = DisclosureEngine(
            config,
            clock if clock is not None else LogicalClock(
                # Resume the logical clock past every persisted
                # timestamp: otherwise a restarted process hands out
                # timestamps at or before the snapshot's, letting
                # post-restart observations steal authoritative
                # ownership from the true first observers.
                start=int(_max_timestamp(data)) + 1
            ),
            authoritative=data.get("authoritative", True),
            kind=data.get("kind", "paragraph"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorrupt(
            f"snapshot is malformed ({type(exc).__name__}: {exc})"
        ) from exc
    return restore_into(engine, data)


def restore_into(engine: DisclosureEngine, data: dict) -> DisclosureEngine:
    """Load a snapshot dict's segments and observations into *engine*.

    *engine* must be freshly constructed (empty databases) with a config
    matching the snapshot's; works for both the single-store and the
    sharded engine, since both expose ``segment_db.put`` and
    ``hash_db.record``. Used directly by WAL recovery, which builds the
    engine itself so the recovered tier (plain or sharded) matches the
    pre-crash deployment.
    """
    config = engine.config
    snap_config = data.get("config", {})
    if snap_config and (
        config.ngram_size,
        config.window_size,
        config.hash_bits,
    ) != (
        snap_config.get("ngram_size"),
        snap_config.get("window_size"),
        snap_config.get("hash_bits"),
    ):
        raise DisclosureError(
            f"snapshot fingerprint config {snap_config} does not match "
            f"the engine's ({config.ngram_size}, {config.window_size}, "
            f"{config.hash_bits})"
        )
    try:
        for entry in data["segments"]:
            fingerprint = Fingerprint(
                hashes=frozenset(entry["hashes"]),
                selections=tuple(
                    FingerprintHash(value, start, end)
                    for value, start, end in entry["selections"]
                ),
                config=config,
            )
            engine.segment_db.put(
                SegmentRecord(
                    segment_id=entry["id"],
                    fingerprint=fingerprint,
                    threshold=entry["threshold"],
                    kind=entry["kind"],
                    doc_id=entry["doc_id"],
                    last_updated=entry["last_updated"],
                )
            )
        for hash_str, owners in data["observations"].items():
            hash_value = int(hash_str)
            for segment_id, timestamp in owners:
                engine.hash_db.record(hash_value, segment_id, timestamp)
        if "owner_epochs" in data:
            # The record() loop above bumped epochs once per claim; the
            # live engine's history may have bumped them more (claims
            # released and re-won). Restore the persisted counters.
            engine.hash_db.restore_ownership_meta(
                {str(k): int(v) for k, v in data["owner_epochs"].items()},
                int(data.get("ownership_changes", 0)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorrupt(
            f"snapshot is malformed ({type(exc).__name__}: {exc})"
        ) from exc
    return engine


def _atomic_write_text(
    path: Path, payload: str, *, faults: Optional[FaultInjector] = None
) -> None:
    """Atomically replace *path* with *payload*.

    The bytes go to an fsynced temp file in the same directory, then an
    ``os.replace`` swings the name; the containing directory is fsynced
    so the rename itself is durable. At no point can a reader observe a
    half-written *path*.

    *faults* injects one deterministic crash decision per call:

    * ``drop`` — crash before anything touches the disk;
    * ``latency`` — a torn write: the first ``int(fault.latency)``
      bytes of the payload reach the temp file, then the process dies;
    * ``error`` — the temp file is complete and fsynced, but the
      process dies before the rename.

    Every crash raises :class:`~repro.errors.SimulatedCrash` and leaves
    any debris a real crash would (a stale temp file) — but never a
    torn *path*.
    """
    fault = faults.next_fault() if faults is not None else None
    if fault is not None and fault.kind == "drop":
        raise SimulatedCrash(f"before writing snapshot {path}")
    data = payload.encode("utf-8")
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if fault is not None and fault.kind == "latency":
                # Torn write: at most len-1 bytes land, then the crash.
                torn = min(int(fault.latency), max(len(data) - 1, 0))
                handle.write(data[:torn])
                handle.flush()
                raise SimulatedCrash(
                    f"mid-write after {torn} bytes of snapshot {path}"
                )
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if fault is not None and fault.kind == "error":
            raise SimulatedCrash(f"after temp write, before renaming {path}")
        os.replace(tmp_name, path)
    except SimulatedCrash:
        # A real crash leaves its temp-file debris behind; so do we.
        raise
    except BaseException:
        with suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's metadata so a completed rename is durable."""
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(dir_fd)


def save_engine(
    engine: DisclosureEngine,
    path,
    *,
    cipher: Optional[UploadCipher] = None,
    wal_lsn: Optional[int] = None,
    wal_shards: Optional[int] = None,
    faults: Optional[FaultInjector] = None,
) -> None:
    """Atomically write a snapshot to *path*.

    Encrypted when a cipher is given. *wal_lsn* stamps the snapshot
    with the last WAL record it covers (compaction) and *wal_shards*
    the WAL set's shard layout; *faults* injects deterministic crash
    points (see :func:`_atomic_write_text`).
    """
    payload = json.dumps(
        snapshot_engine(engine, wal_lsn=wal_lsn, wal_shards=wal_shards)
    )
    if cipher is not None:
        payload = cipher.encrypt(payload)
    _atomic_write_text(Path(path), payload, faults=faults)


def read_snapshot(path, *, cipher: Optional[UploadCipher] = None) -> dict:
    """Read and decode a snapshot file to its dict form.

    Raises :class:`~repro.errors.SnapshotCorrupt` on truncated, corrupt,
    or wrong-cipher payloads, and a plain
    :class:`~repro.errors.DisclosureError` when the file is encrypted
    but no cipher was supplied.
    """
    path = Path(path)
    try:
        payload = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DisclosureError(f"cannot read snapshot {path}: {exc}") from exc
    if UploadCipher.is_encrypted(payload):
        if cipher is None:
            raise DisclosureError(
                f"snapshot {path} is encrypted; a cipher is required"
            )
        try:
            payload = cipher.decrypt(payload)
        except Exception as exc:
            raise SnapshotCorrupt(
                f"snapshot {path} cannot be decrypted — wrong key or "
                f"corrupt ciphertext ({type(exc).__name__})"
            ) from exc
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SnapshotCorrupt(
            f"snapshot {path} is truncated or corrupt: not valid JSON "
            f"({exc})"
        ) from exc
    if not isinstance(data, dict):
        raise SnapshotCorrupt(
            f"snapshot {path} root must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def load_engine(
    path, *, cipher: Optional[UploadCipher] = None, clock: Optional[Clock] = None
) -> DisclosureEngine:
    """Read a snapshot from *path*; decrypts when a cipher is given."""
    data = read_snapshot(path, cipher=cipher)
    try:
        return restore_engine(data, clock=clock)
    except SnapshotCorrupt as exc:
        raise SnapshotCorrupt(f"snapshot {path}: {exc}") from exc


def expire_segments(engine: DisclosureEngine, *, older_than: float) -> List[str]:
    """Remove segments whose last update predates *older_than*.

    The periodic-removal half of the §4.4 mitigation: stale fingerprints
    stop being an attack target, and their hash-ownership claims are
    released so younger copies become authoritative.
    """
    stale = [
        record.segment_id
        for record in engine.segment_db
        if record.last_updated < older_than
    ]
    for segment_id in stale:
        engine.remove(segment_id)
    journal = getattr(engine, "_journal", None)
    if journal is not None and stale:
        # The removes above were journaled individually; this marker
        # records *why* (a retention sweep), for audit and shipping.
        journal.log_expire(engine._kind, older_than, stale)
    return stale
