"""Fingerprint persistence, encryption at rest, and retention (§4.4).

"Storing fingerprints long-term to facilitate disclosure calculations
(e.g. DBpar) can introduce an additional attack target if a device gets
compromised. To mitigate this we recommend encrypting all fingerprint
data at rest and performing periodic removal of old fingerprints."

This module implements exactly that: JSON snapshots of a
:class:`~repro.disclosure.engine.DisclosureEngine` (both databases,
with first-seen timestamps preserved so authoritative ownership
survives a restart), optional encryption with the deployment's
:class:`~repro.plugin.crypto.UploadCipher`, and an expiry sweep that
drops segments not updated since a cutoff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.disclosure.engine import DisclosureEngine
from repro.disclosure.store import SegmentRecord
from repro.errors import DisclosureError
from repro.fingerprint import Fingerprint, FingerprintConfig
from repro.fingerprint.fingerprint import FingerprintHash
from repro.plugin.crypto import UploadCipher
from repro.util.clock import Clock, LogicalClock


def _max_timestamp(data: dict) -> float:
    """Largest timestamp anywhere in a snapshot (0.0 when empty)."""
    latest = 0.0
    for entry in data.get("segments", ()):
        latest = max(latest, entry.get("last_updated", 0.0))
    for owners in data.get("observations", {}).values():
        for _segment_id, timestamp in owners:
            latest = max(latest, timestamp)
    return latest

#: Snapshot format version; bump on incompatible changes.
SNAPSHOT_VERSION = 1


def snapshot_engine(engine: DisclosureEngine) -> dict:
    """Serialise an engine's databases to a JSON-compatible dict."""
    config = engine.config
    segments = []
    for record in engine.segment_db:
        segments.append(
            {
                "id": record.segment_id,
                "threshold": record.threshold,
                "kind": record.kind,
                "doc_id": record.doc_id,
                "last_updated": record.last_updated,
                "hashes": sorted(record.fingerprint.hashes),
                "selections": [
                    [s.value, s.orig_start, s.orig_end]
                    for s in record.fingerprint.selections
                ],
            }
        )
    observations = {}
    for hash_value in engine.hash_db.hashes():
        owners = engine.hash_db.owners(hash_value)
        observations[str(hash_value)] = [[seg, ts] for seg, ts in owners]
    return {
        "version": SNAPSHOT_VERSION,
        "config": {
            "ngram_size": config.ngram_size,
            "window_size": config.window_size,
            "hash_bits": config.hash_bits,
        },
        "authoritative": engine._authoritative,
        "kind": engine._kind,
        "segments": segments,
        "observations": observations,
    }


def restore_engine(
    data: dict, *, clock: Optional[Clock] = None
) -> DisclosureEngine:
    """Rebuild an engine from a snapshot dict.

    First-seen timestamps are restored verbatim, so the earliest-owner
    relation — and therefore every disclosure decision — is identical
    to the engine that was saved.
    """
    if data.get("version") != SNAPSHOT_VERSION:
        raise DisclosureError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    config = FingerprintConfig(**data["config"])
    if clock is None:
        # Resume the logical clock past every persisted timestamp:
        # otherwise a restarted process hands out timestamps at or
        # before the snapshot's, letting post-restart observations
        # steal authoritative ownership from the true first observers.
        clock = LogicalClock(start=int(_max_timestamp(data)) + 1)
    engine = DisclosureEngine(
        config,
        clock,
        authoritative=data.get("authoritative", True),
        kind=data.get("kind", "paragraph"),
    )
    for entry in data["segments"]:
        fingerprint = Fingerprint(
            hashes=frozenset(entry["hashes"]),
            selections=tuple(
                FingerprintHash(value, start, end)
                for value, start, end in entry["selections"]
            ),
            config=config,
        )
        engine.segment_db.put(
            SegmentRecord(
                segment_id=entry["id"],
                fingerprint=fingerprint,
                threshold=entry["threshold"],
                kind=entry["kind"],
                doc_id=entry["doc_id"],
                last_updated=entry["last_updated"],
            )
        )
    for hash_str, owners in data["observations"].items():
        hash_value = int(hash_str)
        for segment_id, timestamp in owners:
            engine.hash_db.record(hash_value, segment_id, timestamp)
    return engine


def save_engine(
    engine: DisclosureEngine, path, *, cipher: Optional[UploadCipher] = None
) -> None:
    """Write a snapshot to *path*, encrypted when a cipher is given."""
    payload = json.dumps(snapshot_engine(engine))
    if cipher is not None:
        payload = cipher.encrypt(payload)
    Path(path).write_text(payload, encoding="utf-8")


def load_engine(
    path, *, cipher: Optional[UploadCipher] = None, clock: Optional[Clock] = None
) -> DisclosureEngine:
    """Read a snapshot from *path*; decrypts when a cipher is given."""
    payload = Path(path).read_text(encoding="utf-8")
    if UploadCipher.is_encrypted(payload):
        if cipher is None:
            raise DisclosureError("snapshot is encrypted; a cipher is required")
        payload = cipher.decrypt(payload)
    return restore_engine(json.loads(payload), clock=clock)


def expire_segments(engine: DisclosureEngine, *, older_than: float) -> List[str]:
    """Remove segments whose last update predates *older_than*.

    The periodic-removal half of the §4.4 mitigation: stale fingerprints
    stop being an attack target, and their hash-ownership claims are
    released so younger copies become authoritative.
    """
    stale = [
        record.segment_id
        for record in engine.segment_db
        if record.last_updated < older_than
    ]
    for segment_id in stale:
        engine.remove(segment_id)
    return stale
