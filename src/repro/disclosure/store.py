"""The two engine databases from Algorithm 1 (paper §4.3).

``DBhash`` (:class:`HashDatabase`) associates fingerprint hashes with the
segments that have been observed to contain them, along with the
timestamp of each first observation. The earliest observer of a hash is
its *authoritative owner* — the overlap-correction mechanism of §4.3.

``DBpar`` (:class:`SegmentDatabase`) associates each segment with the
last fingerprint computed for it, plus its disclosure threshold and
metadata. Both are in-memory hash tables as the paper recommends for
lookup performance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnknownSegmentError
from repro.fingerprint import Fingerprint

#: Default paragraph/document disclosure threshold (paper §6.1 adopts 0.5).
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class SegmentRecord:
    """DBpar entry: one tracked text segment.

    Attributes:
        segment_id: unique id of the paragraph or document.
        fingerprint: the latest fingerprint computed for the segment.
        threshold: this segment's disclosure threshold (Tpar or Tdoc);
            disclosure *from* this segment is reported when at least this
            fraction of its authoritative hashes is found elsewhere.
        kind: ``"paragraph"`` or ``"document"``.
        doc_id: for paragraphs, the id of the containing document.
        last_updated: timestamp of the most recent observation.
    """

    segment_id: str
    fingerprint: Fingerprint
    threshold: float = DEFAULT_THRESHOLD
    kind: str = "paragraph"
    doc_id: Optional[str] = None
    last_updated: float = 0.0

    def with_fingerprint(self, fingerprint: Fingerprint, timestamp: float) -> "SegmentRecord":
        return replace(self, fingerprint=fingerprint, last_updated=timestamp)


class HashDatabase:
    """DBhash: fingerprint hash → {segment id → first-seen timestamp}.

    The earliest observer of a hash is its authoritative owner (§4.3).
    First-seen timestamps survive re-observation, so priority is stable
    across edits — but the engine withdraws a segment's claim on hashes
    an edit removed from its fingerprint, so authority migrates to the
    next-earliest observer that still holds the text (the Figure 6
    behaviour). Removing a segment entirely releases all its claims.
    """

    def __init__(self) -> None:
        self._observations: Dict[int, Dict[str, float]] = {}

    def __len__(self) -> int:
        """Number of distinct hashes ever observed."""
        return len(self._observations)

    def __contains__(self, hash_value: int) -> bool:
        return hash_value in self._observations

    def record(self, hash_value: int, segment_id: str, timestamp: float) -> bool:
        """Record that *segment_id* contains *hash_value*.

        Only the first observation per (hash, segment) pair is kept, so
        re-observing an unchanged paragraph never steals ownership.
        Returns True if this was a new observation.
        """
        seen_by = self._observations.setdefault(hash_value, {})
        if segment_id in seen_by:
            return False
        seen_by[segment_id] = timestamp
        return True

    def oldest_owner(self, hash_value: int) -> Optional[str]:
        """The segment that observed *hash_value* earliest, or None.

        Ties on timestamp break towards the lexicographically smallest
        segment id so the result is deterministic under logical clocks.
        """
        seen_by = self._observations.get(hash_value)
        if not seen_by:
            return None
        return min(seen_by.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def owners(self, hash_value: int) -> List[Tuple[str, float]]:
        """All (segment_id, first_seen) observations, earliest first."""
        seen_by = self._observations.get(hash_value, {})
        return sorted(seen_by.items(), key=lambda kv: (kv[1], kv[0]))

    def first_seen(self, hash_value: int, segment_id: str) -> Optional[float]:
        """When *segment_id* first contained *hash_value*, or None."""
        return self._observations.get(hash_value, {}).get(segment_id)

    def remove_observation(self, hash_value: int, segment_id: str) -> bool:
        """Release one (hash, segment) association.

        Called when an edit removes a hash from a segment's current
        fingerprint: the segment's claim is withdrawn, so authority over
        the hash falls to the next-earliest observer that still contains
        it — the behaviour behind the paper's Figure 6 (the Wiki becomes
        the authoritative source once the Interview Tool text changes).
        Returns True when an association was actually removed.
        """
        seen_by = self._observations.get(hash_value)
        if seen_by is None or segment_id not in seen_by:
            return False
        del seen_by[segment_id]
        if not seen_by:
            del self._observations[hash_value]
        return True

    def discard_segment(self, segment_id: str) -> int:
        """Remove every observation by *segment_id*; returns count removed.

        Hashes left with no observers are dropped from the table.
        """
        removed = 0
        empty_hashes = []
        for hash_value, seen_by in self._observations.items():
            if segment_id in seen_by:
                del seen_by[segment_id]
                removed += 1
                if not seen_by:
                    empty_hashes.append(hash_value)
        for hash_value in empty_hashes:
            del self._observations[hash_value]
        return removed


class SegmentDatabase:
    """DBpar: segment id → :class:`SegmentRecord` (latest fingerprint)."""

    def __init__(self) -> None:
        self._records: Dict[str, SegmentRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, segment_id: str) -> bool:
        return segment_id in self._records

    def __iter__(self) -> Iterator[SegmentRecord]:
        return iter(self._records.values())

    def put(self, record: SegmentRecord) -> None:
        self._records[record.segment_id] = record

    def get(self, segment_id: str) -> SegmentRecord:
        try:
            return self._records[segment_id]
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    def find(self, segment_id: str) -> Optional[SegmentRecord]:
        """Like :meth:`get` but returns None instead of raising."""
        return self._records.get(segment_id)

    def remove(self, segment_id: str) -> SegmentRecord:
        try:
            return self._records.pop(segment_id)
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    def ids(self) -> List[str]:
        return list(self._records)

    def in_document(self, doc_id: str) -> List[SegmentRecord]:
        """All paragraph records belonging to *doc_id*."""
        return [r for r in self._records.values() if r.doc_id == doc_id]
