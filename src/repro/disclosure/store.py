"""The two engine databases from Algorithm 1 (paper §4.3).

``DBhash`` (:class:`HashDatabase`) associates fingerprint hashes with the
segments that have been observed to contain them, along with the
timestamp of each first observation. The earliest observer of a hash is
its *authoritative owner* — the overlap-correction mechanism of §4.3.

``DBpar`` (:class:`SegmentDatabase`) associates each segment with the
last fingerprint computed for it, plus its disclosure threshold and
metadata. Both are in-memory hash tables as the paper recommends for
lookup performance.

Both databases maintain *inverted indexes* incrementally so the paper's
headline latency claim (Figures 12–13: decisions stay fast as the hash
table grows to millions of entries "thanks to index data structures")
holds for this implementation too:

* ``hash → oldest owner`` is cached and updated in O(1) on ``record``
  and in O(observers-of-hash) on ``remove_observation`` — never by
  scanning the whole table;
* ``segment → observed hashes`` lets ``discard_segment`` release a
  segment's claims in O(|F(segment)|) instead of O(all hashes);
* ``segment → authoritatively owned hashes`` makes the §4.3
  authoritative set an O(1) lookup for the engine's single-sweep query;
* ``doc → segment ids`` makes :meth:`SegmentDatabase.in_document`
  independent of the number of tracked segments.

Concurrency contract (DESIGN.md §8): the databases are *externally
synchronised* by the owning engine's reader–writer lock. They carry no
locks of their own because the engine's hot query sweep makes one
``oldest_owner`` call per target hash — per-call locking here would
dominate the query. Code that touches a database outside its engine
(persistence snapshots, tests) must hold the engine's lock, read side
for lookups and write side for any mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import UnknownSegmentError
from repro.fingerprint import Fingerprint

#: Default paragraph/document disclosure threshold (paper §6.1 adopts 0.5).
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class SegmentRecord:
    """DBpar entry: one tracked text segment.

    Attributes:
        segment_id: unique id of the paragraph or document.
        fingerprint: the latest fingerprint computed for the segment.
        threshold: this segment's disclosure threshold (Tpar or Tdoc);
            disclosure *from* this segment is reported when at least this
            fraction of its authoritative hashes is found elsewhere.
        kind: ``"paragraph"`` or ``"document"``.
        doc_id: for paragraphs, the id of the containing document.
        last_updated: timestamp of the most recent observation.
    """

    segment_id: str
    fingerprint: Fingerprint
    threshold: float = DEFAULT_THRESHOLD
    kind: str = "paragraph"
    doc_id: Optional[str] = None
    last_updated: float = 0.0

    def with_fingerprint(self, fingerprint: Fingerprint, timestamp: float) -> "SegmentRecord":
        return replace(self, fingerprint=fingerprint, last_updated=timestamp)


class HashDatabase:
    """DBhash: fingerprint hash → {segment id → first-seen timestamp}.

    The earliest observer of a hash is its authoritative owner (§4.3).
    First-seen timestamps survive re-observation, so priority is stable
    across edits — but the engine withdraws a segment's claim on hashes
    an edit removed from its fingerprint, so authority migrates to the
    next-earliest observer that still holds the text (the Figure 6
    behaviour). Removing a segment entirely releases all its claims.

    Ownership is indexed: :meth:`oldest_owner` is an O(1) dictionary
    lookup against a cache maintained on every mutation, and
    :meth:`owned_hashes` returns a segment's authoritative set without
    touching the per-hash observation maps. :attr:`ownership_changes`
    counts owner transitions (a hash gaining its first owner, changing
    owner, or losing its last one) for the engine's cache-invalidation
    stats.
    """

    def __init__(self) -> None:
        self._observations: Dict[int, Dict[str, float]] = {}
        # hash → (first_seen, segment_id) of the current authoritative
        # owner; the tuple ordering gives the deterministic tie-break.
        self._oldest: Dict[int, Tuple[float, str]] = {}
        # segment → hashes it currently observes (reverse index).
        self._by_segment: Dict[str, Set[int]] = {}
        # segment → hashes it authoritatively owns (oldest observer).
        self._owned: Dict[str, Set[int]] = {}
        # segment → bumped whenever its owned set changes; lets the
        # engine cache frozen authoritative sets safely.
        self._owner_epoch: Dict[str, int] = {}
        #: Total number of ownership transitions since creation.
        self.ownership_changes = 0

    def __len__(self) -> int:
        """Number of distinct hashes ever observed."""
        return len(self._observations)

    def __contains__(self, hash_value: int) -> bool:
        return hash_value in self._observations

    # ------------------------------------------------------------------
    # Ownership index maintenance
    # ------------------------------------------------------------------

    def _claim(self, segment_id: str, hash_value: int) -> None:
        self._owned.setdefault(segment_id, set()).add(hash_value)
        self._owner_epoch[segment_id] = self._owner_epoch.get(segment_id, 0) + 1
        self.ownership_changes += 1

    def _release(self, segment_id: str, hash_value: int) -> None:
        owned = self._owned.get(segment_id)
        if owned is not None:
            owned.discard(hash_value)
            if not owned:
                del self._owned[segment_id]
        self._owner_epoch[segment_id] = self._owner_epoch.get(segment_id, 0) + 1

    def record(self, hash_value: int, segment_id: str, timestamp: float) -> bool:
        """Record that *segment_id* contains *hash_value*.

        Only the first observation per (hash, segment) pair is kept, so
        re-observing an unchanged paragraph never steals ownership.
        Returns True if this was a new observation.
        """
        seen_by = self._observations.setdefault(hash_value, {})
        if segment_id in seen_by:
            return False
        seen_by[segment_id] = timestamp
        self._by_segment.setdefault(segment_id, set()).add(hash_value)
        current = self._oldest.get(hash_value)
        claim = (timestamp, segment_id)
        if current is None:
            self._oldest[hash_value] = claim
            self._claim(segment_id, hash_value)
        elif claim < current:
            self._oldest[hash_value] = claim
            self._release(current[1], hash_value)
            self._claim(segment_id, hash_value)
        return True

    def oldest_owner(self, hash_value: int) -> Optional[str]:
        """The segment that observed *hash_value* earliest, or None.

        Ties on timestamp break towards the lexicographically smallest
        segment id so the result is deterministic under logical clocks.
        O(1): served from the maintained ownership index.
        """
        entry = self._oldest.get(hash_value)
        return entry[1] if entry is not None else None

    def recompute_oldest_owner(self, hash_value: int) -> Optional[str]:
        """Oldest owner recomputed from the raw observation map.

        Deliberately ignores the ownership index — the reference path
        for differential tests that prove the index stays consistent.
        """
        seen_by = self._observations.get(hash_value)
        if not seen_by:
            return None
        return min(seen_by.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def owners(self, hash_value: int) -> List[Tuple[str, float]]:
        """All (segment_id, first_seen) observations, earliest first."""
        seen_by = self._observations.get(hash_value, {})
        return sorted(seen_by.items(), key=lambda kv: (kv[1], kv[0]))

    def observers(self, hash_value: int) -> Tuple[str, ...]:
        """Segment ids observing *hash_value*, in no particular order.

        Unlike :meth:`owners` this does not sort, so the non-authoritative
        query sweep can accumulate counts without O(k log k) per hash.
        """
        seen_by = self._observations.get(hash_value)
        return tuple(seen_by) if seen_by else ()

    def first_seen(self, hash_value: int, segment_id: str) -> Optional[float]:
        """When *segment_id* first contained *hash_value*, or None."""
        return self._observations.get(hash_value, {}).get(segment_id)

    def hashes(self) -> List[int]:
        """All distinct hash values currently observed."""
        return list(self._observations)

    def hashes_of(self, segment_id: str) -> Set[int]:
        """The hashes *segment_id* currently observes (index lookup)."""
        return set(self._by_segment.get(segment_id, ()))

    def owned_hashes(self, segment_id: str) -> Set[int]:
        """Hashes whose authoritative owner is *segment_id* (O(result))."""
        return set(self._owned.get(segment_id, ()))

    def owner_epoch(self, segment_id: str) -> int:
        """Version of *segment_id*'s owned set; bumps on every change."""
        return self._owner_epoch.get(segment_id, 0)

    def ownership_meta(self) -> Tuple[Dict[str, int], int]:
        """Exportable epoch state: (per-segment epochs, total changes).

        Persisted in snapshots so a recovered engine's cache-versioning
        counters are field-identical to the pre-crash engine's — a
        memoized verdict keyed on an epoch must not collide with a
        different post-recovery state that reuses the same number.
        """
        return dict(self._owner_epoch), self.ownership_changes

    def restore_ownership_meta(
        self, epochs: Dict[str, int], changes: int
    ) -> None:
        """Overwrite epoch counters with snapshot values (recovery only).

        Must run after the observation replay that rebuilt the indexes;
        the replay's own epoch bumps are replaced by the persisted
        counts so recovered and pre-crash engines agree exactly.
        """
        self._owner_epoch = dict(epochs)
        self.ownership_changes = changes

    def remove_observation(self, hash_value: int, segment_id: str) -> bool:
        """Release one (hash, segment) association.

        Called when an edit removes a hash from a segment's current
        fingerprint: the segment's claim is withdrawn, so authority over
        the hash falls to the next-earliest observer that still contains
        it — the behaviour behind the paper's Figure 6 (the Wiki becomes
        the authoritative source once the Interview Tool text changes).
        Returns True when an association was actually removed.
        """
        seen_by = self._observations.get(hash_value)
        if seen_by is None or segment_id not in seen_by:
            return False
        del seen_by[segment_id]
        observed = self._by_segment.get(segment_id)
        if observed is not None:
            observed.discard(hash_value)
            if not observed:
                del self._by_segment[segment_id]
        if not seen_by:
            # The removed segment was necessarily the sole owner.
            del self._observations[hash_value]
            del self._oldest[hash_value]
            self._release(segment_id, hash_value)
            self.ownership_changes += 1
        elif self._oldest[hash_value][1] == segment_id:
            ts, seg = min((ts, seg) for seg, ts in seen_by.items())
            self._oldest[hash_value] = (ts, seg)
            self._release(segment_id, hash_value)
            self._claim(seg, hash_value)
        return True

    def discard_segment(self, segment_id: str) -> int:
        """Remove every observation by *segment_id*; returns count removed.

        Hashes left with no observers are dropped from the table. Runs
        in O(|F(segment)|) via the segment → hashes reverse index, not
        O(all hashes).
        """
        hashes = self._by_segment.pop(segment_id, None)
        if not hashes:
            return 0
        removed = 0
        for hash_value in hashes:
            seen_by = self._observations[hash_value]
            del seen_by[segment_id]
            removed += 1
            if not seen_by:
                del self._observations[hash_value]
                del self._oldest[hash_value]
                self._release(segment_id, hash_value)
                self.ownership_changes += 1
            elif self._oldest[hash_value][1] == segment_id:
                ts, seg = min((ts, seg) for seg, ts in seen_by.items())
                self._oldest[hash_value] = (ts, seg)
                self._release(segment_id, hash_value)
                self._claim(seg, hash_value)
        return removed

    def check_invariants(self) -> None:
        """Assert the indexes agree with the raw observation map.

        Test-only sanity pass (O(table)): every differential test calls
        this so a silently-corrupt index cannot masquerade as a passing
        equivalence check.
        """
        for hash_value, seen_by in self._observations.items():
            assert seen_by, f"empty observer map retained for {hash_value}"
            expected = min(seen_by.items(), key=lambda kv: (kv[1], kv[0]))
            ts, seg = self._oldest[hash_value]
            assert (seg, ts) == expected, (hash_value, (seg, ts), expected)
        assert set(self._oldest) == set(self._observations)
        observed: Dict[str, Set[int]] = {}
        owned: Dict[str, Set[int]] = {}
        for hash_value, seen_by in self._observations.items():
            for seg in seen_by:
                observed.setdefault(seg, set()).add(hash_value)
            owned.setdefault(self._oldest[hash_value][1], set()).add(hash_value)
        assert observed == self._by_segment, "segment reverse index drifted"
        assert owned == self._owned, "ownership index drifted"


class SegmentDatabase:
    """DBpar: segment id → :class:`SegmentRecord` (latest fingerprint).

    Maintains a doc_id → segment-ids index so :meth:`in_document` is
    O(paragraphs of the document) instead of O(all records).
    """

    def __init__(self) -> None:
        self._records: Dict[str, SegmentRecord] = {}
        self._by_doc: Dict[str, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, segment_id: str) -> bool:
        return segment_id in self._records

    def __iter__(self) -> Iterator[SegmentRecord]:
        return iter(self._records.values())

    def put(self, record: SegmentRecord) -> None:
        old = self._records.get(record.segment_id)
        if old is not None and old.doc_id != record.doc_id and old.doc_id is not None:
            self._unindex_doc(old.doc_id, old.segment_id)
        self._records[record.segment_id] = record
        if record.doc_id is not None:
            self._by_doc.setdefault(record.doc_id, set()).add(record.segment_id)

    def _unindex_doc(self, doc_id: str, segment_id: str) -> None:
        members = self._by_doc.get(doc_id)
        if members is not None:
            members.discard(segment_id)
            if not members:
                del self._by_doc[doc_id]

    def get(self, segment_id: str) -> SegmentRecord:
        try:
            return self._records[segment_id]
        except KeyError:
            raise UnknownSegmentError(segment_id) from None

    def find(self, segment_id: str) -> Optional[SegmentRecord]:
        """Like :meth:`get` but returns None instead of raising."""
        return self._records.get(segment_id)

    def remove(self, segment_id: str) -> SegmentRecord:
        try:
            record = self._records.pop(segment_id)
        except KeyError:
            raise UnknownSegmentError(segment_id) from None
        if record.doc_id is not None:
            self._unindex_doc(record.doc_id, segment_id)
        return record

    def ids(self) -> List[str]:
        return list(self._records)

    def in_document(self, doc_id: str) -> List[SegmentRecord]:
        """All paragraph records belonging to *doc_id* (index lookup)."""
        return [self._records[sid] for sid in sorted(self._by_doc.get(doc_id, ()))]
