"""Disclosure metrics (paper §4.2–§4.3).

Raw disclosure is Broder containment over fingerprints:

    D(A, B) = |F(A) ∩ F(B)| / |F(A)|

The authoritative variant replaces the numerator's F(A) with only those
hashes whose *earliest* observer is A itself, compensating for overlapping
documents (Figure 7): when B is a superset copy of A, B's non-original
hashes are owned by A and therefore do not count towards disclosure
*from* B.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.disclosure.store import HashDatabase, SegmentRecord
from repro.fingerprint import Fingerprint


def raw_disclosure(source: Fingerprint, target: Fingerprint) -> float:
    """D(source, target) without the authoritative correction.

    Kept as a separate entry point for the ablation benchmark that
    quantifies how much §4.3 matters.
    """
    return source.containment_in(target)


def authoritative_hashes(record: SegmentRecord, hash_db: HashDatabase) -> FrozenSet[int]:
    """Hashes of *record*'s fingerprint that the segment owns.

    A hash is authoritative for a segment iff no other segment observed
    it earlier (`Fauthoritative` in the paper).
    """
    return frozenset(
        h
        for h in record.fingerprint.hashes
        if hash_db.oldest_owner(h) == record.segment_id
    )


def authoritative_disclosure(
    source: SegmentRecord, target: Fingerprint, hash_db: HashDatabase
) -> float:
    """D(source, target) = |F_auth(source) ∩ F(target)| / |F(source)|.

    Note the denominator stays |F(source)| (not |F_auth|), exactly as in
    §4.3: a segment that owns little of its own content cannot reach a
    high disclosure score, which is the desired Figure-7 behaviour.
    """
    total = len(source.fingerprint)
    if total == 0:
        return 0.0
    auth = authoritative_hashes(source, hash_db)
    return len(auth & target.hashes) / total


def meets_threshold(score: float, threshold: float) -> bool:
    """Disclosure requirement check: score ≥ threshold.

    A threshold of 0 means "any single matching hash violates", which per
    §4.2 still requires a *positive* score: with no overlap at all there
    is nothing to report.
    """
    if threshold <= 0.0:
        return score > 0.0
    return score >= threshold
