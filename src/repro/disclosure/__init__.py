"""Imprecise data flow tracking: the information disclosure engine (§4).

Given a database of previously observed text segments and a new segment,
the engine answers the *information disclosure problem*: which original
sources does the new segment currently disclose significant information
from?

* :mod:`repro.disclosure.store` — DBhash (hash → observing segments with
  first-seen timestamps) and DBpar (segment → latest fingerprint).
* :mod:`repro.disclosure.metrics` — document/paragraph disclosure, both
  raw containment and the authoritative variant of §4.3.
* :mod:`repro.disclosure.engine` — Algorithm 1 and incremental updates.
* :mod:`repro.disclosure.attribution` — maps matched hashes back to the
  source/target character spans that caused a disclosure report.
* :mod:`repro.disclosure.sharding` — hash-range sharding of DBhash with
  a scatter/gather sweep (DESIGN.md §11).
* :mod:`repro.disclosure.wal` — write-ahead logging, compaction, crash
  recovery, and standby log shipping (DESIGN.md §14).
"""

from repro.disclosure.attribution import AttributedMatch, attribute_disclosure
from repro.disclosure.engine import (
    DisclosureEngine,
    DisclosureReport,
    DisclosureTracker,
    SourceDisclosure,
)
from repro.disclosure.metrics import (
    authoritative_hashes,
    authoritative_disclosure,
    raw_disclosure,
)
from repro.disclosure.sharding import (
    ShardedDisclosureEngine,
    ShardedHashDatabase,
    partition,
    shard_of,
)
from repro.disclosure.store import HashDatabase, SegmentDatabase, SegmentRecord
from repro.disclosure.wal import (
    DurableEngine,
    EngineJournal,
    LogShipper,
    WALSet,
    WriteAheadLog,
)

__all__ = [
    "DurableEngine",
    "EngineJournal",
    "LogShipper",
    "WALSet",
    "WriteAheadLog",
    "AttributedMatch",
    "attribute_disclosure",
    "DisclosureEngine",
    "DisclosureReport",
    "DisclosureTracker",
    "SourceDisclosure",
    "authoritative_hashes",
    "authoritative_disclosure",
    "raw_disclosure",
    "HashDatabase",
    "SegmentDatabase",
    "SegmentRecord",
    "ShardedDisclosureEngine",
    "ShardedHashDatabase",
    "partition",
    "shard_of",
]
