"""DOM-style event dispatch with capture, target and bubble phases.

Form interception (paper §5.1) relies on two event semantics: listeners
fire in tree order, and a listener may cancel the default action of a
cancellable event (``prevent_default`` on ``submit`` suppresses the
outgoing request until policy allows it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

Listener = Callable[["Event"], None]

CAPTURE_PHASE = 1
AT_TARGET = 2
BUBBLE_PHASE = 3


@dataclass
class Event:
    """A dispatched event.

    Attributes:
        type: event name, e.g. ``"submit"`` or ``"input"``.
        target: node the event was dispatched on (set by dispatch).
        cancelable: whether ``prevent_default`` has any effect.
        detail: free-form payload for synthetic events.
    """

    type: str
    target: Optional["EventTarget"] = None
    cancelable: bool = False
    detail: Optional[dict] = None
    current_target: Optional["EventTarget"] = field(default=None, repr=False)
    event_phase: int = field(default=0, repr=False)
    default_prevented: bool = field(default=False, repr=False)
    propagation_stopped: bool = field(default=False, repr=False)

    def prevent_default(self) -> None:
        if self.cancelable:
            self.default_prevented = True

    def stop_propagation(self) -> None:
        self.propagation_stopped = True


class EventTarget:
    """Mixin giving a node listener registration and dispatch."""

    def __init__(self) -> None:
        self._listeners: Dict[str, List[tuple]] = {}

    def add_event_listener(
        self, event_type: str, listener: Listener, *, capture: bool = False
    ) -> None:
        entries = self._listeners.setdefault(event_type, [])
        if (listener, capture) not in entries:
            entries.append((listener, capture))

    def remove_event_listener(
        self, event_type: str, listener: Listener, *, capture: bool = False
    ) -> None:
        entries = self._listeners.get(event_type, [])
        if (listener, capture) in entries:
            entries.remove((listener, capture))

    def _invoke_listeners(self, event: Event, capture_phase: bool) -> None:
        event.current_target = self
        # Copy: a listener may add/remove listeners during dispatch.
        for listener, capture in list(self._listeners.get(event.type, [])):
            if event.event_phase == AT_TARGET or capture == capture_phase:
                listener(event)

    def _event_path(self) -> List["EventTarget"]:
        """Ancestors from the document root down to (excluding) self.

        Nodes override this via their parent chain; a bare EventTarget
        has no tree, so the path is empty.
        """
        path: List[EventTarget] = []
        node = getattr(self, "parent", None)
        while node is not None:
            path.append(node)
            node = getattr(node, "parent", None)
        path.reverse()
        return path

    def dispatch_event(self, event: Event) -> bool:
        """Dispatch through capture → target → bubble.

        Returns False when a listener called ``prevent_default`` (the
        caller must then skip the default action), mirroring the DOM's
        ``dispatchEvent`` contract.
        """
        event.target = self
        path = self._event_path()

        event.event_phase = CAPTURE_PHASE
        for node in path:
            if event.propagation_stopped:
                break
            node._invoke_listeners(event, capture_phase=True)

        if not event.propagation_stopped:
            event.event_phase = AT_TARGET
            self._invoke_listeners(event, capture_phase=False)

        event.event_phase = BUBBLE_PHASE
        for node in reversed(path):
            if event.propagation_stopped:
                break
            node._invoke_listeners(event, capture_phase=False)

        event.event_phase = 0
        return not event.default_prevented
