"""XMLHttpRequest with prototype-based method dispatch (paper §5.2).

"BrowserFlow intercepts communication to the remote back-end servers by
redefining the send method in JavaScript's XMLHttpRequest object. ...
If an object does not contain a method, the method call is dispatched to
its prototype object."

We reproduce that dispatch rule: an instance's ``send`` looks up the
implementation on its window's shared :class:`XHRPrototype` at call
time, so replacing ``prototype.send`` intercepts every request made by
any page script — exactly the interception point the plug-in uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import BrowserError, RequestBlocked

SendFn = Callable[["XMLHttpRequest", Optional[str]], HttpResponse]


class XHRPrototype:
    """The shared prototype holding the default ``send`` implementation.

    ``send`` is a plain attribute: assigning a new function over it is
    the Python analogue of ``XMLHttpRequest.prototype.send = wrapped``.
    The original implementation stays reachable as :attr:`original_send`
    so interceptors can chain to it.
    """

    def __init__(self, network) -> None:
        self._network = network
        self.send: SendFn = self._default_send
        self.original_send: SendFn = self._default_send

    def _default_send(self, xhr: "XMLHttpRequest", body: Optional[str]) -> HttpResponse:
        request = HttpRequest(
            method=xhr.method,
            url=xhr.url,
            body=body,
            headers=dict(xhr.request_headers),
        )
        return self._network.deliver(request)

    def restore(self) -> None:
        """Undo any patching (used when the plug-in detaches)."""
        self.send = self.original_send


class XMLHttpRequest:
    """A minimal XHR: open, set headers, send; response on the instance."""

    def __init__(self, window) -> None:
        self._window = window
        self.method: str = ""
        self.url: str = ""
        self.request_headers: Dict[str, str] = {}
        self.status: int = 0
        self.response_text: str = ""
        self.ready_state: int = 0  # 0 UNSENT .. 4 DONE
        self.blocked: bool = False

    def open(self, method: str, url: str) -> None:
        self.method = method.upper()
        self.url = url
        self.ready_state = 1

    def set_request_header(self, name: str, value: str) -> None:
        if self.ready_state != 1:
            raise BrowserError("set_request_header requires an opened request")
        self.request_headers[name] = value

    def send(self, body: Optional[str] = None) -> HttpResponse:
        """Dispatch through the window's prototype, like JS method lookup."""
        if self.ready_state != 1:
            raise BrowserError("send requires an opened, unsent request")
        self.ready_state = 2
        try:
            response = self._window.xhr_prototype.send(self, body)
        except RequestBlocked:
            self.blocked = True
            self.status = 0
            self.ready_state = 4
            raise
        self.status = response.status
        self.response_text = response.body
        self.ready_state = 4
        return response
