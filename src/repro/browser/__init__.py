"""A simulated web browser substrate.

BrowserFlow's prototype is a Chrome plug-in; what it needs from the
browser is a small set of observable interfaces (paper §5): a DOM tree
it can inspect, mutation observers for AJAX editors, a patchable
``XMLHttpRequest.prototype.send`` for outgoing-request interception, and
cancellable ``submit`` events for form-based services. This package
implements exactly those semantics in-process so that the plug-in code
path is exercised the way it would be inside a real browser.
"""

from repro.browser.clipboard import Clipboard, ClipboardEntry
from repro.browser.dom import Document, Element, Node, TextNode
from repro.browser.events import Event, EventTarget
from repro.browser.http import HttpRequest, HttpResponse
from repro.browser.mutation import MutationObserver, MutationRecord
from repro.browser.page import Browser, Page, Tab, Window
from repro.browser.readability import extract_main_text, score_element
from repro.browser.select import select, select_one
from repro.browser.xhr import XHRPrototype, XMLHttpRequest

__all__ = [
    "Clipboard",
    "ClipboardEntry",
    "Document",
    "Element",
    "Node",
    "TextNode",
    "Event",
    "EventTarget",
    "HttpRequest",
    "HttpResponse",
    "MutationObserver",
    "MutationRecord",
    "Browser",
    "Page",
    "Tab",
    "Window",
    "extract_main_text",
    "score_element",
    "select",
    "select_one",
    "XHRPrototype",
    "XMLHttpRequest",
]
