"""A DOM tree with mutation notification.

Implements the subset of the DOM that BrowserFlow's interception needs:
element/text nodes, attributes, tree manipulation, text content, id and
selector-ish lookups — and, crucially, every mutation is reported to the
owning document so that :class:`~repro.browser.mutation.MutationObserver`
registrations see child-list and character-data changes anywhere in the
subtrees they observe (paper §5.2).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional

from repro.browser.events import EventTarget
from repro.errors import DOMError

# Elements whose content never counts as prose for extraction purposes.
NON_TEXT_TAGS = {"script", "style", "head", "meta", "link", "title"}


class Node(EventTarget):
    """Base class for DOM nodes."""

    def __init__(self) -> None:
        super().__init__()
        self.parent: Optional["Element"] = None
        self.owner_document: Optional["Document"] = None
        self.node_id: Optional[str] = None

    # -- tree queries ---------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def contains(self, other: "Node") -> bool:
        """True if *other* is self or a descendant of self."""
        node: Optional[Node] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def text_content(self) -> str:
        raise NotImplementedError

    # -- document plumbing ----------------------------------------------

    def _adopt(self, document: Optional["Document"]) -> None:
        self.owner_document = document
        if document is not None and self.node_id is None:
            self.node_id = document._next_node_id()

    def _notify(self, record) -> None:
        if self.owner_document is not None:
            self.owner_document._mutation_occurred(record)


class TextNode(Node):
    """A leaf holding character data."""

    def __init__(self, text: str = "") -> None:
        super().__init__()
        self._text = text

    @property
    def text(self) -> str:
        return self._text

    @text.setter
    def text(self, new_text: str) -> None:
        from repro.browser.mutation import MutationRecord

        old = self._text
        if new_text == old:
            return
        self._text = new_text
        self._notify(
            MutationRecord(
                type="characterData", target=self, old_value=old, new_value=new_text
            )
        )

    def text_content(self) -> str:
        return self._text

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 30 else self._text[:27] + "..."
        return f"TextNode({preview!r})"


class Element(Node):
    """An element node with a tag, attributes, and children."""

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Node] = []

    # -- attributes ------------------------------------------------------

    def get_attribute(self, name: str) -> Optional[str]:
        return self.attrs.get(name)

    def set_attribute(self, name: str, value: str) -> None:
        from repro.browser.mutation import MutationRecord

        old = self.attrs.get(name)
        if old == value:
            return
        self.attrs[name] = value
        self._notify(
            MutationRecord(
                type="attributes",
                target=self,
                attribute_name=name,
                old_value=old,
                new_value=value,
            )
        )

    @property
    def id(self) -> Optional[str]:
        return self.attrs.get("id")

    @property
    def class_name(self) -> str:
        return self.attrs.get("class", "")

    def class_list(self) -> List[str]:
        return self.class_name.split()

    # -- tree manipulation -------------------------------------------------

    def append_child(self, child: Node) -> Node:
        return self.insert_before(child, None)

    def insert_before(self, child: Node, reference: Optional[Node]) -> Node:
        from repro.browser.mutation import MutationRecord

        if isinstance(child, Element) and child.contains(self):
            raise DOMError("cannot insert an ancestor into its descendant")
        if child.parent is not None:
            child.parent.remove_child(child)
        if reference is None:
            index = len(self.children)
        else:
            try:
                index = self.children.index(reference)
            except ValueError:
                raise DOMError("reference node is not a child") from None
        self.children.insert(index, child)
        child.parent = self
        self._adopt_subtree(child)
        self._notify(
            MutationRecord(type="childList", target=self, added_nodes=(child,))
        )
        return child

    def remove_child(self, child: Node) -> Node:
        from repro.browser.mutation import MutationRecord

        try:
            self.children.remove(child)
        except ValueError:
            raise DOMError("node is not a child of this element") from None
        child.parent = None
        self._notify(
            MutationRecord(type="childList", target=self, removed_nodes=(child,))
        )
        return child

    def replace_children(self, *new_children: Node) -> None:
        """Remove all children, then append the given nodes."""
        for child in list(self.children):
            self.remove_child(child)
        for child in new_children:
            self.append_child(child)

    def _adopt_subtree(self, node: Node) -> None:
        node._adopt(self.owner_document)
        if isinstance(node, Element):
            for child in node.children:
                node._adopt_subtree(child)

    def _adopt(self, document: Optional["Document"]) -> None:
        super()._adopt(document)
        for child in self.children:
            child._adopt(document)

    # -- text ------------------------------------------------------------

    def text_content(self) -> str:
        """All descendant text, skipping non-prose containers."""
        if self.tag in NON_TEXT_TAGS:
            return ""
        return "".join(child.text_content() for child in self.children)

    def set_text(self, text: str) -> None:
        """Replace the element's content with a single text node.

        Reuses an existing sole text child so that a keystroke appears
        as a characterData mutation (what an editor like Google Docs
        produces) rather than a childList churn.
        """
        if len(self.children) == 1 and isinstance(self.children[0], TextNode):
            self.children[0].text = text
        else:
            self.replace_children(TextNode(text))

    # -- queries -----------------------------------------------------------

    def iter_subtree(self) -> Iterator[Node]:
        """Depth-first pre-order iteration including self."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter_subtree()
            else:
                yield child

    def iter_elements(self) -> Iterator["Element"]:
        for node in self.iter_subtree():
            if isinstance(node, Element):
                yield node

    def find_all(self, predicate: Callable[["Element"], bool]) -> List["Element"]:
        return [el for el in self.iter_elements() if predicate(el)]

    def get_elements_by_tag(self, tag: str) -> List["Element"]:
        tag = tag.lower()
        return self.find_all(lambda el: el.tag == tag)

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        for el in self.iter_elements():
            if el.id == element_id:
                return el
        return None

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        return f"<{self.tag}{ident} children={len(self.children)}>"


class Document(Element):
    """The document: root element, node-id allocation, observer registry."""

    def __init__(self) -> None:
        super().__init__("document")
        self._node_counter = itertools.count(1)
        self._observers: List = []  # MutationObserver registrations
        self.owner_document = self
        self.node_id = self._next_node_id()
        self.body = Element("body")
        self.append_child(self.body)

    def _next_node_id(self) -> str:
        return f"node-{next(self._node_counter):05d}"

    def create_element(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> Element:
        el = Element(tag, attrs)
        el._adopt(self)
        return el

    def create_text_node(self, text: str) -> TextNode:
        node = TextNode(text)
        node._adopt(self)
        return node

    # -- mutation routing -------------------------------------------------

    def _register_observer(self, registration) -> None:
        self._observers.append(registration)

    def _unregister_observer(self, observer) -> None:
        self._observers = [r for r in self._observers if r.observer is not observer]

    def _mutation_occurred(self, record) -> None:
        """Route a mutation record to interested observer registrations."""
        for registration in list(self._observers):
            if registration.matches(record):
                registration.observer._enqueue(record)
        # Deliver after routing so one mutation reaching several
        # observers is observed by all before callbacks run.
        for registration in list(self._observers):
            registration.observer._deliver()
