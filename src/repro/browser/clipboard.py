"""A system clipboard with provenance (paper §1, challenge (i)).

Copy/paste between tabs is the main flow BrowserFlow exists for. The
clipboard records *where* text was copied from when the copy happened
inside the browser; copies made by native applications outside the
browser carry no provenance — which is exactly why precise taint
tracking breaks down and imprecise tracking is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.browser.dom import Element
from repro.errors import BrowserError


@dataclass(frozen=True)
class ClipboardEntry:
    """One clipboard state.

    Attributes:
        text: the copied text.
        source_origin: origin of the page the copy came from, or None
            when the copy was made outside the browser.
        source_node_id: DOM node the text was copied from, if any.
    """

    text: str
    source_origin: Optional[str] = None
    source_node_id: Optional[str] = None

    @property
    def from_browser(self) -> bool:
        return self.source_origin is not None


class Clipboard:
    """The machine-wide clipboard: one current entry plus history."""

    def __init__(self) -> None:
        self._current: Optional[ClipboardEntry] = None
        self.history: List[ClipboardEntry] = []

    def copy(
        self,
        text: str,
        *,
        source_origin: Optional[str] = None,
        source_node_id: Optional[str] = None,
    ) -> ClipboardEntry:
        """Place *text* on the clipboard with optional provenance."""
        entry = ClipboardEntry(
            text=text, source_origin=source_origin, source_node_id=source_node_id
        )
        self._current = entry
        self.history.append(entry)
        return entry

    def copy_from_element(self, element: Element, origin: str) -> ClipboardEntry:
        """Copy an element's text, recording browser provenance."""
        return self.copy(
            element.text_content(),
            source_origin=origin,
            source_node_id=element.node_id,
        )

    def paste(self) -> ClipboardEntry:
        """Read the current entry (clipboards are non-destructive)."""
        if self._current is None:
            raise BrowserError("clipboard is empty")
        return self._current

    @property
    def is_empty(self) -> bool:
        return self._current is None

    def clear(self) -> None:
        self._current = None
