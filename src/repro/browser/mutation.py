"""Mutation observers (paper §5.2, W3C DOM4 [36]).

"A mutation observer is an object that can be attached to an element in
the DOM tree and receives notifications when any change occurs in the
subtree rooted at that element." BrowserFlow attaches a *document
observer* for paragraph creation/deletion and a *paragraph observer* for
edits within paragraphs; both are built on this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.browser.dom import Document, Node
from repro.errors import BrowserError


@dataclass(frozen=True)
class MutationRecord:
    """One observed change.

    ``type`` is ``"childList"``, ``"characterData"`` or ``"attributes"``
    with the corresponding payload fields, matching the DOM spec shape.
    """

    type: str
    target: Node
    added_nodes: Tuple[Node, ...] = ()
    removed_nodes: Tuple[Node, ...] = ()
    attribute_name: Optional[str] = None
    old_value: Optional[str] = None
    new_value: Optional[str] = None


@dataclass
class _Registration:
    observer: "MutationObserver"
    target: Node
    subtree: bool = True
    child_list: bool = True
    character_data: bool = True
    attributes: bool = False

    def matches(self, record: MutationRecord) -> bool:
        if record.type == "childList" and not self.child_list:
            return False
        if record.type == "characterData" and not self.character_data:
            return False
        if record.type == "attributes" and not self.attributes:
            return False
        if record.target is self.target:
            return True
        return self.subtree and self.target.contains(record.target)


class MutationObserver:
    """Observes DOM changes in registered subtrees.

    The callback receives ``(records, observer)``. Records queue up and
    are delivered in a batch after each mutation completes; a callback
    of ``None`` makes the observer pull-only via :meth:`take_records`.
    """

    def __init__(
        self,
        callback: Optional[Callable[[List[MutationRecord], "MutationObserver"], None]] = None,
    ) -> None:
        self._callback = callback
        self._queue: List[MutationRecord] = []
        self._registrations: List[_Registration] = []
        self._delivering = False

    def observe(
        self,
        target: Node,
        *,
        subtree: bool = True,
        child_list: bool = True,
        character_data: bool = True,
        attributes: bool = False,
    ) -> None:
        """Start observing *target* (and optionally its subtree)."""
        document = target.owner_document
        if document is None or not isinstance(document, Document):
            raise BrowserError("cannot observe a node outside a document")
        registration = _Registration(
            observer=self,
            target=target,
            subtree=subtree,
            child_list=child_list,
            character_data=character_data,
            attributes=attributes,
        )
        self._registrations.append(registration)
        document._register_observer(registration)

    def disconnect(self) -> None:
        """Stop observing everywhere and drop queued records."""
        for registration in self._registrations:
            document = registration.target.owner_document
            if isinstance(document, Document):
                document._unregister_observer(self)
        self._registrations.clear()
        self._queue.clear()

    def take_records(self) -> List[MutationRecord]:
        """Drain and return queued records without invoking the callback."""
        records, self._queue = self._queue, []
        return records

    # -- document-side plumbing -------------------------------------------

    def _enqueue(self, record: MutationRecord) -> None:
        self._queue.append(record)

    def _deliver(self) -> None:
        if self._callback is None or not self._queue or self._delivering:
            return
        records = self.take_records()
        # Guard against re-entrant delivery when the callback itself
        # mutates the DOM; nested mutations queue and deliver after.
        self._delivering = True
        try:
            self._callback(records, self)
        finally:
            self._delivering = False
        if self._queue:
            self._deliver()
