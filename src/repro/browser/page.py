"""Windows, pages, tabs, and the browser shell.

A :class:`Window` binds a document to a network endpoint and owns the
shared :class:`~repro.browser.xhr.XHRPrototype`; a :class:`Tab` hosts
one page at a time; the :class:`Browser` holds tabs plus the hooks a
plug-in uses to attach to every page as it loads — the shape of the
Chrome extension content-script model the paper's prototype relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional
from urllib.parse import urlparse

from repro.browser.dom import Document, Element
from repro.browser.forms import submit_form
from repro.browser.http import HttpResponse
from repro.browser.xhr import XHRPrototype, XMLHttpRequest
from repro.errors import BrowserError


class Window:
    """One page's global object: document, location, network, XHR."""

    def __init__(self, document: Document, location: str, network) -> None:
        self.document = document
        self.location = location
        self.network = network
        self.xhr_prototype = XHRPrototype(network)

    @property
    def origin(self) -> str:
        parsed = urlparse(self.location)
        return f"{parsed.scheme}://{parsed.netloc}"

    def new_xhr(self) -> XMLHttpRequest:
        return XMLHttpRequest(self)

    def submit(self, form: Element) -> Optional[HttpResponse]:
        return submit_form(form, self)


class Page:
    """A loaded page: a window plus the service that rendered it."""

    def __init__(self, window: Window, service=None) -> None:
        self.window = window
        self.service = service

    @property
    def document(self) -> Document:
        return self.window.document

    @property
    def url(self) -> str:
        return self.window.location


class Tab:
    """A browser tab hosting at most one page."""

    def __init__(self, tab_id: str, browser: "Browser") -> None:
        self.tab_id = tab_id
        self._browser = browser
        self.page: Optional[Page] = None

    def navigate(self, url: str) -> Page:
        """Load *url* through the browser's network and run page hooks."""
        self.page = self._browser._load(url)
        for hook in self._browser.page_hooks:
            hook(self)
        return self.page

    @property
    def document(self) -> Document:
        if self.page is None:
            raise BrowserError(f"tab {self.tab_id!r} has no page loaded")
        return self.page.document

    @property
    def window(self) -> Window:
        if self.page is None:
            raise BrowserError(f"tab {self.tab_id!r} has no page loaded")
        return self.page.window


class Browser:
    """The browser shell: tabs, a network, and plug-in attach hooks.

    ``page_hooks`` run once per page load with the tab as argument —
    the moment a content script would be injected. The BrowserFlow
    plug-in registers itself here.
    """

    def __init__(self, network) -> None:
        from repro.browser.clipboard import Clipboard

        self.network = network
        self.tabs: Dict[str, Tab] = {}
        self.page_hooks: List[Callable[[Tab], None]] = []
        self.clipboard = Clipboard()
        self._tab_counter = 0

    def new_tab(self) -> Tab:
        self._tab_counter += 1
        tab = Tab(f"tab-{self._tab_counter}", self)
        self.tabs[tab.tab_id] = tab
        return tab

    def open(self, url: str) -> Tab:
        """Convenience: new tab + navigate."""
        tab = self.new_tab()
        tab.navigate(url)
        return tab

    def add_page_hook(self, hook: Callable[[Tab], None]) -> None:
        self.page_hooks.append(hook)

    def _load(self, url: str) -> Page:
        """Ask the network's service registry to render *url*."""
        document, service = self.network.render_page(url)
        window = Window(document, url, self.network)
        if service is not None:
            service.attach_window(window)
        return Page(window, service)
