"""A CSS-selector-lite query engine for the simulated DOM.

Supports the selector grammar the plug-in's heuristics (and tests)
actually need:

* ``div`` — tag name;
* ``#editor`` — id;
* ``.kix-paragraph`` — class;
* ``div.card`` / ``div#a.b.c`` — compound simple selectors;
* ``[data-par-id]`` / ``[data-par-id=p1]`` — attribute presence/value;
* ``ancestor descendant`` — descendant combinators (whitespace);
* ``a, b`` — selector lists (union).

Deliberately not a full CSS engine — no child/sibling combinators or
pseudo-classes — but enough to express every DOM query in this code
base declaratively.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.browser.dom import Element, Node
from repro.errors import DOMError

_SIMPLE_TOKEN = re.compile(
    r"(?P<tag>^[a-zA-Z][\w-]*)?"
    r"(?P<parts>(?:[#.][\w-]+|\[[\w-]+(?:=[^\]]*)?\])*)$"
)
_PART = re.compile(r"[#.][\w-]+|\[[\w-]+(?:=[^\]]*)?\]")


@dataclass(frozen=True)
class SimpleSelector:
    """One compound simple selector (tag, id, classes, attributes)."""

    tag: Optional[str] = None
    element_id: Optional[str] = None
    classes: Tuple[str, ...] = ()
    attributes: Tuple[Tuple[str, Optional[str]], ...] = ()

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        if self.element_id is not None and element.id != self.element_id:
            return False
        class_list = element.class_list()
        if any(cls not in class_list for cls in self.classes):
            return False
        for name, expected in self.attributes:
            actual = element.get_attribute(name)
            if actual is None:
                return False
            if expected is not None and actual != expected:
                return False
        return True


def _parse_simple(token: str) -> SimpleSelector:
    match = _SIMPLE_TOKEN.match(token)
    if not match or (match.group("tag") is None and not match.group("parts")):
        raise DOMError(f"unsupported selector: {token!r}")
    tag = match.group("tag")
    element_id = None
    classes: List[str] = []
    attributes: List[Tuple[str, Optional[str]]] = []
    for part in _PART.findall(match.group("parts") or ""):
        if part.startswith("#"):
            element_id = part[1:]
        elif part.startswith("."):
            classes.append(part[1:])
        else:  # [name] or [name=value]
            body = part[1:-1]
            name, _, value = body.partition("=")
            attributes.append((name, value if "=" in body else None))
    return SimpleSelector(
        tag=tag.lower() if tag else None,
        element_id=element_id,
        classes=tuple(classes),
        attributes=tuple(attributes),
    )


def _parse_chain(selector: str) -> List[SimpleSelector]:
    tokens = selector.split()
    if not tokens:
        raise DOMError("empty selector")
    return [_parse_simple(token) for token in tokens]


def _matches_chain(element: Element, chain: List[SimpleSelector]) -> bool:
    if not chain[-1].matches(element):
        return False
    # Remaining selectors must match successively higher ancestors.
    remaining = chain[:-1]
    node = element.parent
    while remaining and node is not None:
        if isinstance(node, Element) and remaining[-1].matches(node):
            remaining = remaining[:-1]
        node = node.parent
    return not remaining


def select(root: Node, selector: str) -> List[Element]:
    """All descendant elements of *root* matching *selector*.

    >>> select(document, "#editor div.kix-paragraph[data-par-id]")
    """
    chains = [_parse_chain(part) for part in selector.split(",") if part.strip()]
    if not chains:
        raise DOMError("empty selector")
    results: List[Element] = []
    seen = set()
    if not isinstance(root, Element):
        return []
    for element in root.iter_elements():
        if element is root:
            continue
        if id(element) in seen:
            continue
        if any(_matches_chain(element, chain) for chain in chains):
            seen.add(id(element))
            results.append(element)
    return results


def select_one(root: Node, selector: str) -> Optional[Element]:
    """First match in document order, or None."""
    matches = select(root, selector)
    return matches[0] if matches else None
