"""HTML forms and the form-submission default action (paper §5.1).

A ``<form>`` submission dispatches a cancellable ``submit`` event; if no
listener prevents the default, the form's non-hidden ``<input>`` and
``<textarea>`` values are collected and POSTed to the form's action URL.
BrowserFlow's form interception registers a ``submit`` listener that
suppresses the outgoing request until the TDM check passes.
"""

from __future__ import annotations

from typing import Dict, Optional
from urllib.parse import urljoin

from repro.browser.dom import Element
from repro.browser.events import Event
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import BrowserError


def is_form_input(element: Element) -> bool:
    return element.tag in ("input", "textarea")


def input_value(element: Element) -> str:
    """Current value of an input/textarea element."""
    if element.tag == "textarea":
        # A textarea's value is its text content unless overridden.
        return element.get_attribute("value") or element.text_content()
    return element.get_attribute("value") or ""


def is_hidden_input(element: Element) -> bool:
    return element.tag == "input" and element.get_attribute("type") == "hidden"


def collect_form_data(form: Element, *, include_hidden: bool = True) -> Dict[str, str]:
    """Name → value for the form's inputs, in document order.

    ``include_hidden=False`` matches the plug-in's *inspection* rule —
    only non-hidden inputs carry user text worth checking — while the
    actual submission still sends every field.
    """
    data: Dict[str, str] = {}
    for element in form.iter_elements():
        if not is_form_input(element):
            continue
        if not include_hidden and is_hidden_input(element):
            continue
        name = element.get_attribute("name")
        if name:
            data[name] = input_value(element)
    return data


def submit_form(form: Element, window) -> Optional[HttpResponse]:
    """Dispatch ``submit`` and, unless prevented, POST the form.

    Returns the response, or None when a listener cancelled submission.
    """
    if form.tag != "form":
        raise BrowserError(f"cannot submit a <{form.tag}> element")
    event = Event(type="submit", cancelable=True)
    if not form.dispatch_event(event):
        return None
    action = form.get_attribute("action") or "/"
    method = (form.get_attribute("method") or "post").upper()
    request = HttpRequest(
        method=method,
        url=urljoin(window.location, action),
        form_data=collect_form_data(form, include_hidden=True),
    )
    return window.network.deliver(request)
