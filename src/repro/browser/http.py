"""HTTP request/response values exchanged between browser and services.

The browser layer only defines the message shapes; routing and service
dispatch live in :mod:`repro.services.network`, keeping the browser
substrate independent of any particular cloud service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import urlparse


@dataclass
class HttpRequest:
    """One outgoing request as seen at the XHR/form interception point."""

    method: str
    url: str
    body: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)
    form_data: Dict[str, str] = field(default_factory=dict)

    @property
    def origin(self) -> str:
        """scheme://host of the target URL — how services are identified."""
        parsed = urlparse(self.url)
        return f"{parsed.scheme}://{parsed.netloc}"

    @property
    def path(self) -> str:
        return urlparse(self.url).path


@dataclass
class HttpResponse:
    """A service's reply."""

    status: int = 200
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300
