"""Readability-style main-text extraction (paper §5.1).

"The BrowserFlow plug-in inspects the DOM tree of each page after
loading, searching for HTML elements with significant text. We apply a
set of heuristics to rank elements according to how much 'interesting'
text they contain and select the element with the highest score. These
heuristics reward the existence of <p> tags, text that contains commas,
and id attributes, which have known representative values such as
article. Similarly, they penalise bad class attribute names such as
footer or meta and high number of links over text length."
"""

from __future__ import annotations

from typing import Optional

from repro.browser.dom import Document, Element, NON_TEXT_TAGS

# Id/class substrings that suggest main prose content.
POSITIVE_HINTS = ("article", "content", "main", "body", "post", "text", "entry")
# Id/class substrings that suggest boilerplate.
NEGATIVE_HINTS = ("footer", "meta", "nav", "sidebar", "comment", "menu", "header", "ad")

# Containers eligible as the "main text" element.
CANDIDATE_TAGS = {"div", "article", "section", "main", "td", "body"}


def _link_text_length(element: Element) -> int:
    return sum(len(a.text_content()) for a in element.get_elements_by_tag("a"))


def score_element(element: Element) -> float:
    """Heuristic interest score for one candidate container."""
    text = element.text_content()
    text_length = len(text.strip())
    if text_length == 0:
        return float("-inf")

    score = 0.0
    # Reward paragraph structure.
    score += 25.0 * len(element.get_elements_by_tag("p"))
    # Reward prose-like punctuation.
    score += text.count(",")
    # Mild reward for sheer prose volume.
    score += min(text_length / 100.0, 30.0)

    hints = f"{element.id or ''} {element.class_name}".lower()
    if any(h in hints for h in POSITIVE_HINTS):
        score += 50.0
    if any(h in hints for h in NEGATIVE_HINTS):
        score -= 50.0

    # Penalise link-heavy containers (navigation, link farms).
    link_density = _link_text_length(element) / text_length
    score -= 100.0 * link_density
    return score


def find_main_element(document: Document) -> Optional[Element]:
    """The highest-scoring candidate container, or None for empty pages."""
    best: Optional[Element] = None
    best_score = float("-inf")
    for element in document.iter_elements():
        if element.tag not in CANDIDATE_TAGS:
            continue
        if element.tag in NON_TEXT_TAGS:
            continue
        score = score_element(element)
        if score > best_score:
            best, best_score = element, score
    return best


def extract_main_text(document: Document) -> str:
    """Extract the page's main prose with paragraph structure preserved.

    Block children of the winning container become paragraphs separated
    by blank lines (which is what the disclosure tracker segments on);
    all markup is dropped.
    """
    main = find_main_element(document)
    if main is None:
        return ""
    blocks = []
    paragraphs = main.get_elements_by_tag("p")
    if paragraphs:
        for p in paragraphs:
            text = p.text_content().strip()
            if text:
                blocks.append(text)
    else:
        text = main.text_content().strip()
        if text:
            blocks.append(text)
    return "\n\n".join(blocks)
