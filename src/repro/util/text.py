"""Text segmentation helpers.

BrowserFlow tracks text at two granularities: paragraphs and whole
documents (paper §4.1). These helpers implement the document-to-paragraph
split used throughout the library, plus small conveniences for the
dataset generators.
"""

from __future__ import annotations

import re
from typing import List

_PARAGRAPH_SPLIT = re.compile(r"\n\s*\n")
_SENTENCE_SPLIT = re.compile(r"(?<=[.!?])\s+")
_WORD = re.compile(r"[\w']+")


def split_paragraphs(text: str) -> List[str]:
    """Split a document into paragraphs on blank lines.

    Leading/trailing whitespace is stripped from each paragraph and empty
    paragraphs are dropped, matching how a browser-rendered document is
    segmented into non-empty block elements.
    """
    return [p.strip() for p in _PARAGRAPH_SPLIT.split(text) if p.strip()]


def split_sentences(paragraph: str) -> List[str]:
    """Split a paragraph into sentences on terminal punctuation."""
    return [s.strip() for s in _SENTENCE_SPLIT.split(paragraph) if s.strip()]


def word_count(text: str) -> int:
    """Count word tokens in *text*."""
    return len(_WORD.findall(text))


def join_paragraphs(paragraphs: List[str]) -> str:
    """Inverse of :func:`split_paragraphs` for well-formed paragraphs."""
    return "\n\n".join(paragraphs)
