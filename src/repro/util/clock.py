"""Clock abstractions.

The disclosure engine orders hash observations by timestamp to decide
which text segment is the *authoritative* owner of a fingerprint hash
(paper §4.3). Tests and deterministic experiments need a controllable
clock, while interactive use wants wall time; both implement the same
tiny protocol.
"""

from __future__ import annotations

import itertools
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of monotonically non-decreasing timestamps."""

    @abstractmethod
    def now(self) -> float:
        """Return the current timestamp."""


class LogicalClock(Clock):
    """Deterministic clock that ticks by one on every read.

    Guarantees strictly increasing timestamps, which makes "earliest
    observer" queries unambiguous in tests and experiments.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def now(self) -> float:
        return float(next(self._counter))


class SystemClock(Clock):
    """Wall-clock time via :func:`time.monotonic`.

    Monotonic rather than ``time.time`` so that timestamp comparisons are
    immune to system clock adjustments during a session.
    """

    def now(self) -> float:
        return time.monotonic()
