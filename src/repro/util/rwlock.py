"""A write-preferring, reentrant reader–writer lock with counters.

The shared lookup service serves many clients from one set of
disclosure databases (paper §5: one hash database per enterprise,
consulted by every user's plug-in). Queries vastly outnumber updates —
one observation per page load or committed upload versus one decision
per keystroke — so the databases are guarded by a reader–writer lock:
disclosure queries share the lock, observations and discards take it
exclusively.

Design points:

* **Write-preferring**: new readers queue behind a waiting writer, so a
  steady stream of per-keystroke queries cannot starve an observation.
* **Reentrant**: a thread holding the write lock may re-enter both the
  write and the read side (the engine's compound operations — observe,
  check-document — nest reads inside writes on the same lock), and a
  reader may re-enter the read side. A read→write *upgrade* is refused
  with ``RuntimeError`` because two upgrading readers would deadlock.
* **Counted**: acquisition and contention counters feed the engine's
  ``stats()`` → ``format_counters`` reporting path so lock behaviour is
  visible next to latency numbers. Counter increments happen under the
  lock's own condition variable, so they are exact. The counters live
  in a :class:`~repro.obs.registry.MetricsRegistry` scope (a private
  one unless the owner passes a shared scope), and ``stats()`` plus the
  legacy public attributes are thin views over those instruments.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # deferred at runtime: obs.registry imports util.clock
    from repro.obs.registry import MetricsScope


class RWLock:
    """Reader–writer lock: shared readers, one exclusive writer.

    Args:
        scope: metrics scope for the acquisition counters. A private
            registry under the conventional ``lock.`` prefix is created
            when omitted, so standalone locks behave exactly as before;
            owners that share one registry (a tracker, the CLI) pass
            their own scope instead.
    """

    def __init__(self, *, scope: Optional["MetricsScope"] = None) -> None:
        self._cond = threading.Condition()
        # thread ident → read recursion depth (readers only).
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0
        if scope is None:
            from repro.obs.registry import MetricsRegistry

            scope = MetricsRegistry().scope("lock.")
        self.metrics = scope
        #: Exact acquisition counters (incremented under the condition).
        self._read_acquisitions = scope.counter("read_acquisitions")
        self._write_acquisitions = scope.counter("write_acquisitions")
        #: Acquisitions that had to wait at least once.
        self._read_contended = scope.counter("read_contended")
        self._write_contended = scope.counter("write_contended")

    # Legacy public counter attributes, now views over the registry.

    @property
    def read_acquisitions(self) -> int:
        return self._read_acquisitions.value

    @property
    def write_acquisitions(self) -> int:
        return self._write_acquisitions.value

    @property
    def read_contended(self) -> int:
        return self._read_contended.value

    @property
    def write_contended(self) -> int:
        return self._write_contended.value

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant read (including read-inside-write): must not
                # queue behind waiting writers or the thread deadlocks
                # against itself.
                self._readers[me] = self._readers.get(me, 0) + 1
                self._read_acquisitions.inc()
                return
            contended = False
            while self._writer is not None or self._waiting_writers:
                contended = True
                self._cond.wait()
            self._readers[me] = 1
            self._read_acquisitions.inc()
            if contended:
                self._read_contended.inc()

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without a matching acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self._write_acquisitions.inc()
                return
            if me in self._readers:
                raise RuntimeError(
                    "read->write upgrade would deadlock; acquire the write "
                    "lock before the read lock"
                )
            self._waiting_writers += 1
            contended = False
            try:
                while self._writer is not None or self._readers:
                    contended = True
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1
            self._write_acquisitions.inc()
            if contended:
                self._write_contended.inc()

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers and introspection
    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def held_for_write(self) -> bool:
        """True iff the *calling thread* holds the write lock."""
        with self._cond:
            return self._writer == threading.get_ident()

    def stats(self) -> Dict[str, int]:
        """Exact acquisition/contention counters for reporting.

        A thin view over the lock's registry scope: field-identical to
        ``metrics.snapshot()`` by construction (differential-tested).
        """
        with self._cond:
            return {
                "read_acquisitions": self._read_acquisitions.value,
                "write_acquisitions": self._write_acquisitions.value,
                "read_contended": self._read_contended.value,
                "write_contended": self._write_contended.value,
            }
