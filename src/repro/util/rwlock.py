"""A write-preferring, reentrant reader–writer lock with counters.

The shared lookup service serves many clients from one set of
disclosure databases (paper §5: one hash database per enterprise,
consulted by every user's plug-in). Queries vastly outnumber updates —
one observation per page load or committed upload versus one decision
per keystroke — so the databases are guarded by a reader–writer lock:
disclosure queries share the lock, observations and discards take it
exclusively.

Design points:

* **Write-preferring**: new readers queue behind a waiting writer, so a
  steady stream of per-keystroke queries cannot starve an observation.
* **Reentrant**: a thread holding the write lock may re-enter both the
  write and the read side (the engine's compound operations — observe,
  check-document — nest reads inside writes on the same lock), and a
  reader may re-enter the read side. A read→write *upgrade* is refused
  with ``RuntimeError`` because two upgrading readers would deadlock.
* **Counted**: acquisition and contention counters feed the engine's
  ``stats()`` → ``format_counters`` reporting path so lock behaviour is
  visible next to latency numbers. Counter increments happen under the
  lock's own condition variable, so they are exact.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class RWLock:
    """Reader–writer lock: shared readers, one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # thread ident → read recursion depth (readers only).
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0
        #: Exact acquisition counters (maintained under the condition).
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        #: Acquisitions that had to wait at least once.
        self.read_contended = 0
        self.write_contended = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant read (including read-inside-write): must not
                # queue behind waiting writers or the thread deadlocks
                # against itself.
                self._readers[me] = self._readers.get(me, 0) + 1
                self.read_acquisitions += 1
                return
            contended = False
            while self._writer is not None or self._waiting_writers:
                contended = True
                self._cond.wait()
            self._readers[me] = 1
            self.read_acquisitions += 1
            if contended:
                self.read_contended += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without a matching acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                self.write_acquisitions += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read->write upgrade would deadlock; acquire the write "
                    "lock before the read lock"
                )
            self._waiting_writers += 1
            contended = False
            try:
                while self._writer is not None or self._readers:
                    contended = True
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1
            self.write_acquisitions += 1
            if contended:
                self.write_contended += 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers and introspection
    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def held_for_write(self) -> bool:
        """True iff the *calling thread* holds the write lock."""
        with self._cond:
            return self._writer == threading.get_ident()

    def stats(self) -> Dict[str, int]:
        """Exact acquisition/contention counters for reporting."""
        with self._cond:
            return {
                "read_acquisitions": self.read_acquisitions,
                "write_acquisitions": self.write_acquisitions,
                "read_contended": self.read_contended,
                "write_contended": self.write_contended,
            }
