"""Shared utilities: clocks, ids, text/stats helpers, locks, faults."""

from repro.util.clock import Clock, LogicalClock, SystemClock
from repro.util.faults import Fault, FaultInjector
from repro.util.idgen import IdGenerator
from repro.util.rwlock import RWLock
from repro.util.stats import cdf_points, percentile, summarize
from repro.util.text import split_paragraphs, split_sentences, word_count

__all__ = [
    "Clock",
    "LogicalClock",
    "SystemClock",
    "Fault",
    "FaultInjector",
    "IdGenerator",
    "RWLock",
    "cdf_points",
    "percentile",
    "summarize",
    "split_paragraphs",
    "split_sentences",
    "word_count",
]
