"""Shared utilities: logical clocks, id generation, text and stats helpers."""

from repro.util.clock import Clock, LogicalClock, SystemClock
from repro.util.idgen import IdGenerator
from repro.util.stats import cdf_points, percentile, summarize
from repro.util.text import split_paragraphs, split_sentences, word_count

__all__ = [
    "Clock",
    "LogicalClock",
    "SystemClock",
    "IdGenerator",
    "cdf_points",
    "percentile",
    "summarize",
    "split_paragraphs",
    "split_sentences",
    "word_count",
]
