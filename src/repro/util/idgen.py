"""Deterministic id generation for documents, paragraphs, and requests."""

from __future__ import annotations

import itertools


class IdGenerator:
    """Produce unique, human-readable ids with a common prefix.

    Ids look like ``doc-0001``; the zero padding keeps lexicographic and
    numeric order consistent which makes test output and audit logs easy
    to scan.
    """

    def __init__(self, prefix: str, width: int = 4) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self._prefix = prefix
        self._width = width
        self._counter = itertools.count(1)

    @property
    def prefix(self) -> str:
        return self._prefix

    def next(self) -> str:
        """Return the next id in the sequence."""
        return f"{self._prefix}-{next(self._counter):0{self._width}d}"

    def __iter__(self):
        while True:
            yield self.next()
