"""Deterministic fault injection for the lookup service and network.

The paper's deployment puts a shared hash database behind the network
(§5, Fig. 1): a disclosure decision can now be delayed, dropped, or
refused by an overloaded backend, and §6.2's latency requirement means
a slow lookup must not wedge the editor. To test those paths the repo
injects faults *deterministically*: either from an explicit schedule
(one fault per request, in order — used by tests that assert exact
retry/timeout counters) or from a seeded RNG with configured rates
(used by the multi-client load driver).

Latency faults carry a duration but nothing here sleeps; the consumer
compares the injected latency against its timeout budget, which keeps
fault tests instantaneous and repeatable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # deferred at runtime: obs.registry imports util.clock
    from repro.obs.registry import MetricsScope

#: Fault kinds, in reporting order.
KINDS = ("none", "latency", "drop", "error")


@dataclass(frozen=True)
class Fault:
    """One injected fault decision for one request.

    Attributes:
        kind: ``"none"`` (healthy), ``"latency"`` (slow response),
            ``"drop"`` (request lost, observed as a timeout), or
            ``"error"`` (backend refused with an HTTP 5xx).
        latency: injected service latency in seconds (latency kind).
        status: HTTP status for the error kind.
    """

    kind: str = "none"
    latency: float = 0.0
    status: int = 503

    @classmethod
    def none(cls) -> "Fault":
        return cls(kind="none")

    @classmethod
    def slow(cls, latency: float) -> "Fault":
        return cls(kind="latency", latency=latency)

    @classmethod
    def drop(cls) -> "Fault":
        return cls(kind="drop")

    @classmethod
    def error(cls, status: int = 503) -> "Fault":
        return cls(kind="error", status=status)


class FaultInjector:
    """Thread-safe source of per-request :class:`Fault` decisions.

    Exactly one of two modes:

    * **schedule**: an explicit sequence of faults consumed in request
      order; once exhausted every further request is healthy. This is
      what the fault-mode tests use so retry/backoff counters can be
      asserted against the schedule exactly.
    * **seeded rates**: a ``random.Random(seed)`` draws each request's
      fate from ``drop_rate`` / ``error_rate`` / ``latency_rate`` (the
      remainder is healthy); latency durations are uniform over
      ``latency_range``. Deterministic for a fixed seed and request
      order; the injector serialises draws under a mutex so concurrent
      clients cannot tear the RNG state.

    ``injected`` counts decisions per kind (exact, mutex-guarded). The
    counts live in a :class:`~repro.obs.registry.MetricsRegistry` scope
    (a private ``faults.``-prefixed one unless the owner passes its
    own); ``injected`` and ``stats()`` are thin views over those
    instruments.
    """

    def __init__(
        self,
        *,
        schedule: Optional[Sequence[Fault]] = None,
        seed: int = 0,
        drop_rate: float = 0.0,
        error_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_range: Tuple[float, float] = (0.0, 0.0),
        statuses: Sequence[int] = (500, 502, 503),
        scope: Optional["MetricsScope"] = None,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("error_rate", error_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if drop_rate + error_rate + latency_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1.0")
        self._mutex = threading.Lock()
        self._schedule = list(schedule) if schedule is not None else None
        self._position = 0
        self._rng = random.Random(seed)
        self._drop_rate = drop_rate
        self._error_rate = error_rate
        self._latency_rate = latency_rate
        self._latency_range = latency_range
        self._statuses = tuple(statuses)
        if scope is None:
            from repro.obs.registry import MetricsRegistry

            scope = MetricsRegistry().scope("faults.")
        self.metrics = scope
        self._injected = {
            kind: scope.counter(f"injected_{kind}") for kind in KINDS
        }

    @classmethod
    def for_shards(
        cls,
        n_shards: int,
        schedules: Dict[int, Sequence[Fault]],
        *,
        scope: Optional["MetricsScope"] = None,
    ) -> Tuple["FaultInjector", ...]:
        """One injector per shard; shards absent from *schedules* stay healthy.

        The returned tuple plugs straight into
        :meth:`~repro.disclosure.sharding.ShardedHashDatabase.set_faults`,
        so a test can degrade shard 2 of 4 while the other three keep
        serving — the per-shard half of the fail-open/fail-closed story.
        When *scope* is given each injector counts under
        ``<scope>.<shard>.``; otherwise each gets its own private scope.
        """
        unknown = sorted(i for i in schedules if not 0 <= i < n_shards)
        if unknown:
            raise ValueError(f"schedule for nonexistent shard(s) {unknown}")
        return tuple(
            cls(
                schedule=schedules.get(i, ()),
                scope=None if scope is None else scope.registry.scope(
                    f"{scope.prefix}{i}."
                ),
            )
            for i in range(n_shards)
        )

    @property
    def injected(self) -> Dict[str, int]:
        """Per-kind injected counts (legacy view over the registry)."""
        with self._mutex:
            return {kind: c.value for kind, c in self._injected.items()}

    def next_fault(self) -> Fault:
        """The fault decision for the next request (thread-safe)."""
        with self._mutex:
            fault = self._draw()
            self._injected[fault.kind].inc()
            return fault

    def _draw(self) -> Fault:
        if self._schedule is not None:
            if self._position >= len(self._schedule):
                return Fault.none()
            fault = self._schedule[self._position]
            self._position += 1
            return fault
        roll = self._rng.random()
        if roll < self._drop_rate:
            return Fault.drop()
        roll -= self._drop_rate
        if roll < self._error_rate:
            return Fault.error(self._rng.choice(self._statuses))
        roll -= self._error_rate
        if roll < self._latency_rate:
            return Fault.slow(self._rng.uniform(*self._latency_range))
        return Fault.none()

    def stats(self) -> Dict[str, int]:
        """Injected-fault counts per kind, prefixed for reporting.

        A thin view over the injector's registry scope, field-identical
        to ``metrics.snapshot()`` by construction.
        """
        with self._mutex:
            return {f"injected_{kind}": c.value for kind, c in self._injected.items()}
