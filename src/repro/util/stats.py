"""Small statistics helpers used by the evaluation harness.

These cover the summaries the paper reports: cumulative distributions
(Figures 8 and 12), percentiles (Figure 13 uses the 95th percentile), and
basic descriptive summaries for tables.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Return the *q*-th percentile of *values* using linear interpolation.

    ``q`` is in [0, 100]. Raises ``ValueError`` for empty input so callers
    cannot silently average nothing.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    # a + frac*(b-a) rather than a*(1-frac) + b*frac: the latter can
    # underflow below min(values) for subnormal inputs.
    return ordered[lower] + frac * (ordered[upper] - ordered[lower])


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return (value, cumulative_fraction) points for an empirical CDF.

    Points are sorted by value; the fraction at each point is the share of
    samples less than or equal to that value. Duplicate values collapse to
    a single point carrying the highest fraction.
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(ordered, start=1):
        frac = i / n
        if points and points[-1][0] == v:
            points[-1] = (v, frac)
        else:
            points.append((v, frac))
    return points


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* that are <= *threshold*."""
    if not values:
        raise ValueError("cdf_at of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Return min/max/mean/median/p95/p99 for *values*."""
    data = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return {
        "count": float(len(data)),
        "min": min(data),
        "max": max(data),
        "mean": sum(data) / len(data),
        "median": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "p99": percentile(data, 99.0),
    }
