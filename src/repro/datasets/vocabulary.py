"""Deterministic vocabulary for text synthesis.

A base list of common English words plus per-topic jargon. Topic words
make documents about different subjects share little incidental n-gram
overlap, while documents on the *same* topic (e.g. revisions of one
article) remain plausibly similar — the property the disclosure
experiments rely on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ~340 common words: enough variety that random sentences rarely repeat
# 15-character n-grams by chance, which keeps the false-positive floor
# of the experiments near zero.
VOCABULARY: Tuple[str, ...] = (
    "ability", "account", "across", "action", "active", "actual", "address",
    "advance", "advice", "affect", "afford", "against", "agency", "agree",
    "airport", "almost", "already", "although", "always", "amount", "analysis",
    "ancient", "animal", "announce", "another", "answer", "anyone", "appear",
    "apply", "approach", "argue", "around", "arrange", "arrive", "article",
    "artist", "aspect", "assume", "attack", "attempt", "attend", "attract",
    "audience", "author", "autumn", "average", "balance", "barrier", "battle",
    "beauty", "because", "become", "before", "begin", "behind", "believe",
    "belong", "benefit", "better", "between", "beyond", "border", "bottle",
    "bottom", "branch", "breath", "bridge", "brief", "bright", "broad",
    "brother", "budget", "build", "business", "camera", "campaign", "cancel",
    "capital", "captain", "capture", "carbon", "career", "careful", "carry",
    "castle", "casual", "catch", "cause", "center", "central", "century",
    "certain", "chance", "change", "channel", "chapter", "charge", "choice",
    "citizen", "claim", "classic", "clear", "climate", "close", "coach",
    "coast", "collect", "college", "colour", "combine", "comment", "common",
    "company", "compare", "complete", "concept", "concern", "conclude",
    "confirm", "connect", "consider", "contain", "content", "contest",
    "context", "continue", "contract", "control", "convert", "corner",
    "correct", "cotton", "council", "country", "couple", "courage", "course",
    "cover", "create", "credit", "critic", "crowd", "culture", "current",
    "custom", "damage", "danger", "debate", "decade", "decide", "declare",
    "decline", "deep", "defend", "define", "degree", "deliver", "demand",
    "depend", "describe", "desert", "design", "desire", "detail", "detect",
    "develop", "device", "differ", "digital", "direct", "discuss", "display",
    "distance", "divide", "doctor", "domain", "double", "draft", "dream",
    "drive", "during", "early", "earn", "easily", "economy", "editor",
    "effect", "effort", "either", "elect", "element", "emerge", "employ",
    "enable", "energy", "engage", "engine", "enhance", "enjoy", "enough",
    "ensure", "enter", "entire", "equal", "escape", "estate", "evening",
    "event", "evidence", "exact", "examine", "example", "exceed", "except",
    "exchange", "exist", "expand", "expect", "expert", "explain", "explore",
    "export", "express", "extend", "extra", "factor", "fail", "fairly",
    "famous", "fashion", "feature", "figure", "final", "finance", "finish",
    "flight", "focus", "follow", "foreign", "forest", "formal", "former",
    "fortune", "forward", "frame", "freedom", "fresh", "friend", "further",
    "future", "garden", "gather", "general", "gentle", "genuine", "global",
    "govern", "gradual", "ground", "growth", "guard", "guess", "guide",
    "handle", "happen", "harbour", "hardly", "health", "height", "history",
    "holiday", "honest", "however", "humour", "hundred", "ignore", "image",
    "imagine", "impact", "import", "improve", "include", "income", "increase",
    "indeed", "indicate", "industry", "inform", "initial", "inside", "insist",
    "install", "instance", "instead", "intend", "interest", "invest",
    "involve", "island", "issue", "journey", "judge", "junior", "justice",
    "keen", "kitchen", "knowledge", "labour", "language", "largely", "launch",
    "leader", "league", "learn", "leave", "legal", "length", "lesson",
    "letter", "level", "likely", "limit", "listen", "little", "local",
    "locate", "longer", "machine", "magazine", "maintain", "major", "manage",
    "manner", "market", "master", "match", "matter", "measure", "medium",
    "member", "memory", "mention", "method", "middle", "million", "minister",
    "minute", "mirror", "mission", "mobile", "model", "modern", "moment",
    "monitor", "morning", "mountain", "movement", "museum", "nation",
    "native", "nature", "nearly", "network", "nobody", "normal", "notice",
    "notion", "number", "object", "observe", "obtain", "obvious", "occasion",
    "occur", "offer", "office", "often", "opinion", "oppose", "option",
    "order", "organ", "origin", "other", "outcome", "output", "outside",
    "overall", "owner", "package", "paint", "panel", "paper", "parent",
    "partner", "patient", "pattern", "people", "perform", "perhaps",
    "period", "permit", "person", "picture", "place", "plan", "platform",
    "player", "please", "plenty", "pocket", "point", "policy", "popular",
    "portion", "position", "possible", "power", "practice", "prefer",
    "prepare", "present", "press", "pretty", "prevent", "price", "primary",
    "prince", "print", "private", "problem", "process", "produce", "profit",
    "project", "promise", "proper", "propose", "protect", "proud", "provide",
    "public", "purpose", "quality", "quarter", "question", "quick", "quiet",
    "raise", "range", "rather", "reach", "reader", "reason", "recall",
    "receive", "recent", "record", "reduce", "refer", "reflect", "reform",
    "refuse", "regard", "region", "regular", "relate", "release", "remain",
    "remember", "remove", "repeat", "replace", "report", "request", "require",
    "research", "reserve", "resource", "respect", "respond", "result",
    "return", "reveal", "review", "reward", "rhythm", "rural", "safety",
    "sample", "scheme", "school", "science", "screen", "search", "season",
    "second", "secret", "section", "sector", "secure", "select", "senior",
    "sense", "series", "serious", "serve", "service", "settle", "several",
    "shadow", "share", "sharp", "shelter", "short", "should", "signal",
    "silver", "similar", "simple", "single", "slight", "smooth", "social",
    "society", "source", "speak", "special", "spirit", "spread", "spring",
    "square", "stable", "standard", "station", "status", "steady", "still",
    "stock", "story", "straight", "strange", "stream", "street", "strength",
    "stress", "strike", "strong", "struggle", "student", "studio", "study",
    "subject", "succeed", "sudden", "suffer", "suggest", "summer", "supply",
    "support", "suppose", "surface", "surround", "survey", "survive",
    "switch", "symbol", "system", "table", "talent", "target", "teach",
    "television", "tension", "theatre", "theory", "thing", "think", "thought",
    "through", "ticket", "timber", "tissue", "together", "tomorrow", "tonight",
    "topic", "total", "touch", "toward", "tradition", "traffic", "train",
    "transfer", "travel", "treat", "trend", "trial", "trouble", "trust",
    "truth", "under", "union", "unique", "unit", "unless", "until", "upper",
    "urban", "useful", "usual", "value", "variety", "various", "vehicle",
    "venture", "version", "victory", "village", "vision", "visit", "volume",
    "wealth", "weather", "weekend", "welcome", "welfare", "western", "whole",
    "window", "winter", "wonder", "worker", "worth", "write", "yellow",
    "yesterday", "young",
)

# Per-topic jargon injected into sentences of documents on that topic.
TOPIC_WORDS: Dict[str, Tuple[str, ...]] = {
    "chicago": ("chicago", "illinois", "skyline", "lakefront", "metropolis",
                "downtown", "suburb", "railway", "michigan"),
    "cpp": ("compiler", "template", "pointer", "runtime", "header",
            "namespace", "overload", "iterator", "linker"),
    "ip-address": ("subnet", "routing", "packet", "gateway", "protocol",
                   "address", "octet", "prefix", "datagram"),
    "liverpool-fc": ("anfield", "striker", "midfield", "fixture", "league",
                     "transfer", "defender", "manager", "derby"),
    "chemotherapy": ("dosage", "tumour", "clinical", "remission", "infusion",
                     "oncology", "cytotoxic", "protocol", "biopsy"),
    "dementia": ("cognitive", "memory", "diagnosis", "caregiver", "symptom",
                 "neurology", "decline", "therapy", "patient"),
    "dow-jones": ("index", "equity", "trading", "dividend", "futures",
                  "market", "earnings", "volatility", "portfolio"),
    "radiotherapy": ("radiation", "dosimetry", "beam", "fraction", "target",
                     "imaging", "planning", "linac", "margin"),
    "camera": ("shutter", "aperture", "focus", "exposure", "flash",
               "panorama", "zoom", "lens", "photo"),
    "message": ("conversation", "attachment", "recipient", "inbox",
                "notification", "thread", "emoji", "delivery", "contact"),
    "mysql": ("query", "index", "storage", "replication", "schema",
              "transaction", "engine", "buffer", "statement"),
    "fiction": ("captain", "voyage", "harbour", "stranger", "letter",
                "evening", "garden", "winter", "fortune"),
}


def vocabulary_for(topic: str) -> List[str]:
    """Base vocabulary enriched with the topic's jargon (if known)."""
    words = list(VOCABULARY)
    words.extend(TOPIC_WORDS.get(topic, ()))
    return words
