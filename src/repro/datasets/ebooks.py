"""Synthetic e-book corpus (paper §6.2, Figures 12 and 13).

The paper loads 180 Project Gutenberg e-books (90 MB, 10 million
distinct hashes) into the fingerprint database and measures disclosure
response times while editing. The generator produces seeded long-form
"books" with the same role: bulk fingerprint volume plus pages that can
be pasted, modified, and restored for the three §6.2 workflows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.datasets.synthesis import TextSynthesizer
from repro.errors import DatasetError


@dataclass(frozen=True)
class Ebook:
    """One book: a title and its paragraphs."""

    book_id: str
    title: str
    paragraphs: Tuple[str, ...]

    def text(self) -> str:
        return "\n\n".join(self.paragraphs)

    def size_bytes(self) -> int:
        return len(self.text())

    def page(self, index: int = 0, paragraphs_per_page: int = 5) -> List[str]:
        """A contiguous run of paragraphs standing in for one page."""
        start = index * paragraphs_per_page
        page = list(self.paragraphs[start:start + paragraphs_per_page])
        if not page:
            raise DatasetError(
                f"book {self.book_id!r} has no page {index} "
                f"({len(self.paragraphs)} paragraphs)"
            )
        return page


class EbookCorpus:
    """A list of books with size accounting."""

    def __init__(self, books: Sequence[Ebook]) -> None:
        self.books = list(books)

    def __len__(self) -> int:
        return len(self.books)

    def __iter__(self):
        return iter(self.books)

    def __getitem__(self, index: int) -> Ebook:
        return self.books[index]

    def total_bytes(self) -> int:
        return sum(book.size_bytes() for book in self.books)

    def total_paragraphs(self) -> int:
        return sum(len(book.paragraphs) for book in self.books)

    @classmethod
    def generate(
        cls,
        *,
        n_books: int = 20,
        paragraphs_per_book: int = 120,
        seed: int = 2016,
    ) -> "EbookCorpus":
        """Generate *n_books* fiction-topic books.

        Defaults produce a corpus in the low single-digit MB range so
        that tests stay fast; the scalability benchmark passes larger
        values to approach the paper's regime.
        """
        if n_books < 1 or paragraphs_per_book < 1:
            raise DatasetError("corpus dimensions must be positive")
        books = []
        for i in range(n_books):
            rng = random.Random(f"{seed}:book:{i}")
            synth = TextSynthesizer("fiction", rng)
            paragraphs = tuple(
                synth.paragraph(min_sentences=4, max_sentences=8)
                for _ in range(paragraphs_per_book)
            )
            books.append(
                Ebook(
                    book_id=f"book-{i:04d}",
                    title=f"Collected Stories Volume {i + 1}",
                    paragraphs=paragraphs,
                )
            )
        return cls(books)
