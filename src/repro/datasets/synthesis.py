"""Seeded text synthesis and a paragraph edit model.

:class:`TextSynthesizer` produces sentences/paragraphs/documents from a
topic vocabulary; :class:`EditModel` evolves paragraphs the way document
revisions do — word substitutions, sentence insertion/deletion and
reordering — with a single ``intensity`` knob controlling how much of
the original survives. Both are driven by a caller-provided
``random.Random`` so every corpus is reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.datasets.vocabulary import vocabulary_for
from repro.errors import DatasetError
from repro.util.text import split_sentences


class TextSynthesizer:
    """Generates deterministic prose for one topic."""

    def __init__(self, topic: str, rng: random.Random) -> None:
        self._topic = topic
        self._rng = rng
        self._words = vocabulary_for(topic)

    @property
    def topic(self) -> str:
        return self._topic

    def word(self) -> str:
        return self._rng.choice(self._words)

    def sentence(self, min_words: int = 8, max_words: int = 18) -> str:
        """One sentence: capitalised word sequence with a full stop."""
        if min_words < 1 or max_words < min_words:
            raise DatasetError("invalid sentence length bounds")
        count = self._rng.randint(min_words, max_words)
        words = [self.word() for _ in range(count)]
        words[0] = words[0].capitalize()
        return " ".join(words) + "."

    def paragraph(self, min_sentences: int = 3, max_sentences: int = 6) -> str:
        count = self._rng.randint(min_sentences, max_sentences)
        return " ".join(self.sentence() for _ in range(count))

    def document(self, min_paragraphs: int = 5, max_paragraphs: int = 12) -> List[str]:
        count = self._rng.randint(min_paragraphs, max_paragraphs)
        return [self.paragraph() for _ in range(count)]


class EditModel:
    """Applies revision-style edits to paragraphs.

    ``intensity`` in [0, 1] is (approximately) the fraction of words
    replaced; 0 returns the text unchanged and 1 rewrites essentially
    everything. Structural edits (sentence insert/delete/shuffle) are
    applied on top for moderate and heavy intensities, mimicking how
    real revisions restructure rather than only re-word.
    """

    def __init__(self, synthesizer: TextSynthesizer, rng: random.Random) -> None:
        self._synth = synthesizer
        self._rng = rng

    def substitute_words(self, text: str, fraction: float) -> str:
        """Replace roughly *fraction* of the words with fresh ones."""
        if not 0.0 <= fraction <= 1.0:
            raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
        words = text.split()
        if not words:
            return text
        n_swap = round(len(words) * fraction)
        indices = self._rng.sample(range(len(words)), min(n_swap, len(words)))
        for i in indices:
            replacement = self._synth.word()
            # Preserve capitalisation and trailing punctuation so the
            # edited text still reads like prose.
            original = words[i]
            if original[:1].isupper():
                replacement = replacement.capitalize()
            trailing = ""
            while original and not original[-1].isalnum():
                trailing = original[-1] + trailing
                original = original[:-1]
            words[i] = replacement + trailing
        return " ".join(words)

    def shuffle_sentences(self, text: str) -> str:
        sentences = split_sentences(text)
        if len(sentences) < 2:
            return text
        self._rng.shuffle(sentences)
        return " ".join(sentences)

    def drop_sentence(self, text: str) -> str:
        sentences = split_sentences(text)
        if len(sentences) < 2:
            return text
        sentences.pop(self._rng.randrange(len(sentences)))
        return " ".join(sentences)

    def insert_sentence(self, text: str) -> str:
        sentences = split_sentences(text)
        sentences.insert(self._rng.randint(0, len(sentences)), self._synth.sentence())
        return " ".join(sentences)

    def edit_paragraph(self, text: str, intensity: float) -> str:
        """Apply a bundle of edits scaled by *intensity*."""
        if intensity <= 0.0:
            return text
        edited = self.substitute_words(text, min(intensity, 1.0))
        if intensity >= 0.3:
            if self._rng.random() < 0.5:
                edited = self.drop_sentence(edited)
            if self._rng.random() < 0.5:
                edited = self.insert_sentence(edited)
        if intensity >= 0.6 and self._rng.random() < 0.5:
            edited = self.shuffle_sentences(edited)
        return edited

    def evolve_document(
        self,
        paragraphs: Sequence[str],
        *,
        edit_prob: float,
        edit_intensity: float,
        replace_prob: float = 0.0,
        append_prob: float = 0.0,
        delete_prob: float = 0.0,
    ) -> List[str]:
        """Produce the next revision of a paragraph list.

        Each paragraph is independently edited (with probability
        ``edit_prob``), replaced wholesale, or deleted; a fresh
        paragraph may be appended. Probabilities compose the two
        regimes of the Wikipedia experiment: stable articles use low
        values, volatile articles high ones.
        """
        out: List[str] = []
        for paragraph in paragraphs:
            roll = self._rng.random()
            if roll < delete_prob:
                continue
            if roll < delete_prob + replace_prob:
                out.append(self._synth.paragraph())
                continue
            if self._rng.random() < edit_prob:
                out.append(self.edit_paragraph(paragraph, edit_intensity))
            else:
                out.append(paragraph)
        if self._rng.random() < append_prob or not out:
            out.append(self._synth.paragraph())
        return out
