"""Synthetic Wikipedia revision corpus (paper §6.1, Figures 8 and 9).

The paper uses the last 1000 revisions of 100 popular articles and
splits them into two regimes by length change: stable articles
("Chicago", "C++", "IP address", "Liverpool FC") whose paragraphs
survive nearly unchanged, and volatile articles ("Chemotherapy",
"Dementia", "Dow Jones", "Radiotherapy") whose content churns. The
generator reproduces both regimes with seeded edit processes, giving the
same experimental structure with exact provenance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.errors import DatasetError

#: The named articles from Figure 9a (low length variation).
STABLE_TITLES: Tuple[str, ...] = ("Chicago", "C++", "IP address", "Liverpool FC")
#: The named articles from Figure 9b (high length variation).
VOLATILE_TITLES: Tuple[str, ...] = (
    "Chemotherapy",
    "Dementia",
    "Dow Jones",
    "Radiotherapy",
)

_TITLE_TOPICS: Dict[str, str] = {
    "Chicago": "chicago",
    "C++": "cpp",
    "IP address": "ip-address",
    "Liverpool FC": "liverpool-fc",
    "Chemotherapy": "chemotherapy",
    "Dementia": "dementia",
    "Dow Jones": "dow-jones",
    "Radiotherapy": "radiotherapy",
}


@dataclass(frozen=True)
class Revision:
    """One article revision."""

    index: int
    paragraphs: Tuple[str, ...]

    def text(self) -> str:
        return "\n\n".join(self.paragraphs)

    def length(self) -> int:
        return len(self.text())


@dataclass
class Article:
    """An article with its full revision history."""

    title: str
    volatility: str  # "stable" | "volatile"
    revisions: List[Revision] = field(default_factory=list)

    @property
    def base(self) -> Revision:
        return self.revisions[0]

    @property
    def latest(self) -> Revision:
        return self.revisions[-1]

    def relative_length_change(self) -> float:
        """|len(latest) − len(base)| / len(base) — the Figure 8 metric."""
        base_len = self.base.length()
        if base_len == 0:
            raise DatasetError(f"article {self.title!r} has an empty base revision")
        return abs(self.latest.length() - base_len) / base_len


# Edit-process parameters per regime. Stable articles receive rare,
# light touch-ups; volatile articles see frequent rewrites, wholesale
# paragraph replacement and growth — producing the low/high length
# variation split of Figure 8.
_REGIMES = {
    "stable": dict(
        edit_prob=0.015, edit_intensity=0.03, replace_prob=0.0,
        append_prob=0.005, delete_prob=0.0,
    ),
    "volatile": dict(
        edit_prob=0.10, edit_intensity=0.12, replace_prob=0.006,
        append_prob=0.15, delete_prob=0.005,
    ),
}


class WikipediaCorpus:
    """A set of articles with revision histories."""

    def __init__(self, articles: Sequence[Article]) -> None:
        self.articles = list(articles)

    def __len__(self) -> int:
        return len(self.articles)

    def __iter__(self):
        return iter(self.articles)

    def by_title(self, title: str) -> Article:
        for article in self.articles:
            if article.title == title:
                return article
        raise DatasetError(f"no article titled {title!r}")

    def stable_articles(self) -> List[Article]:
        return [a for a in self.articles if a.volatility == "stable"]

    def volatile_articles(self) -> List[Article]:
        return [a for a in self.articles if a.volatility == "volatile"]

    def total_paragraphs(self) -> int:
        return sum(
            len(rev.paragraphs) for a in self.articles for rev in a.revisions
        )

    def total_bytes(self) -> int:
        return sum(rev.length() for a in self.articles for rev in a.revisions)

    @classmethod
    def generate(
        cls,
        *,
        n_extra_articles: int = 0,
        n_revisions: int = 60,
        seed: int = 2016,
        base_paragraphs: Tuple[int, int] = (8, 14),
    ) -> "WikipediaCorpus":
        """Generate the corpus.

        Always includes the eight named Figure-9 articles; additional
        anonymous articles (half stable, half volatile) pad the corpus
        towards the paper's 100-article scale when requested.
        """
        if n_revisions < 2:
            raise DatasetError("need at least 2 revisions (base + one)")
        titles: List[Tuple[str, str]] = [(t, "stable") for t in STABLE_TITLES]
        titles += [(t, "volatile") for t in VOLATILE_TITLES]
        for i in range(n_extra_articles):
            volatility = "stable" if i % 2 == 0 else "volatile"
            titles.append((f"Article {i:03d}", volatility))

        articles = []
        for article_index, (title, volatility) in enumerate(titles):
            # String seeds hash deterministically in random.Random
            # (unlike built-in str hash, which is salted per process).
            rng = random.Random(f"{seed}:{title}:{volatility}")
            topic = _TITLE_TOPICS.get(title, f"topic-{article_index}")
            synth = TextSynthesizer(topic, rng)
            editor = EditModel(synth, rng)
            params = _REGIMES[volatility]

            paragraphs = synth.document(*base_paragraphs)
            revisions = [Revision(index=0, paragraphs=tuple(paragraphs))]
            for rev_index in range(1, n_revisions):
                paragraphs = editor.evolve_document(paragraphs, **params)
                revisions.append(
                    Revision(index=rev_index, paragraphs=tuple(paragraphs))
                )
            articles.append(
                Article(title=title, volatility=volatility, revisions=revisions)
            )
        return cls(articles)
