"""Synthetic corpora standing in for the paper's datasets (Table 1).

The paper evaluates on (i) 100 Wikipedia articles × 1000 revisions,
(ii) two chapters each from the iPhone and MySQL manuals across 4
versions with human-expert ground truth, and (iii) 180 Project Gutenberg
e-books (90 MB). None are available offline, so each generator here
produces a seeded corpus with the same *structure*: revision streams
with controlled overlap, versioned chapters with exact machine ground
truth, and bulk long-form text for scalability runs. See DESIGN.md §2
for the substitution argument.
"""

from repro.datasets.ebooks import Ebook, EbookCorpus
from repro.datasets.manuals import Chapter, ChapterVersion, ManualsCorpus
from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.datasets.vocabulary import VOCABULARY, vocabulary_for
from repro.datasets.wikipedia import Article, Revision, WikipediaCorpus

__all__ = [
    "Ebook",
    "EbookCorpus",
    "Chapter",
    "ChapterVersion",
    "ManualsCorpus",
    "EditModel",
    "TextSynthesizer",
    "VOCABULARY",
    "vocabulary_for",
    "Article",
    "Revision",
    "WikipediaCorpus",
]
