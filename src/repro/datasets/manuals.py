"""Synthetic manuals corpus with exact ground truth (Figures 10 and 11).

The paper uses two chapters each from the iPhone and MySQL manuals
across four versions, with a human expert labelling which base-version
paragraphs are still disclosed by each later version ("similar content
or concepts ... regardless of the actual words used").

Our generator scripts each paragraph's fate per version, so the ground
truth is known exactly and reproduces the expert's semantics:

* ``kept`` — unchanged: expert yes, BrowserFlow yes;
* ``light`` — ~10% of words replaced: expert yes, BrowserFlow yes;
* ``rephrased`` — ~75% of words replaced (same concept, new words):
  expert yes, BrowserFlow **no** — the paper's systematic
  false-negative class;
* ``dropped`` — removed and replaced by new content: expert no,
  BrowserFlow no.

The four chapters follow the paper's shapes: both iPhone chapters decay
to near zero by the last version, MySQL "New Features" drops sharply
after version 4.1, and "What's MySQL" stays essentially unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.errors import DatasetError

#: Paragraph fates, per paper semantics above.
FATES = ("kept", "light", "rephrased", "dropped")

#: Fraction of base paragraphs in each fate, per chapter and version.
#: Tuples are (kept, light, rephrased, dropped) and must sum to 1.
_CHAPTER_PLANS: Dict[str, Dict[str, Tuple[float, float, float, float]]] = {
    "iphone-camera": {
        "iOS4": (0.60, 0.20, 0.05, 0.15),
        "iOS5": (0.33, 0.15, 0.07, 0.45),
        "iOS7": (0.07, 0.05, 0.05, 0.83),
    },
    "iphone-message": {
        "iOS4": (0.50, 0.15, 0.05, 0.30),
        "iOS5": (0.22, 0.10, 0.05, 0.63),
        "iOS7": (0.02, 0.05, 0.03, 0.90),
    },
    "mysql-new-features": {
        "4.1": (0.72, 0.20, 0.03, 0.05),
        "5.0": (0.40, 0.15, 0.05, 0.40),
        "5.1": (0.22, 0.10, 0.05, 0.63),
    },
    "mysql-whats-mysql": {
        "4.1": (0.90, 0.10, 0.00, 0.00),
        "5.0": (0.85, 0.15, 0.00, 0.00),
        "5.1": (0.85, 0.12, 0.03, 0.00),
    },
}

_CHAPTER_META = {
    # chapter id -> (display name, base version, topic, base paragraph count)
    "iphone-camera": ("IPhone Camera", "iOS3", "camera", 40),
    "iphone-message": ("IPhone Message", "iOS3", "message", 20),
    "mysql-new-features": ("MySQL New Features", "4.0", "mysql", 28),
    "mysql-whats-mysql": ("MySQL What's MySQL", "4.0", "mysql", 8),
}

#: Word-substitution fractions realising each fate.
_LIGHT_EDIT = 0.05
_REPHRASE_EDIT = 0.75


@dataclass(frozen=True)
class ChapterVersion:
    """One version of a chapter with per-paragraph provenance.

    ``fates[i]`` is the fate of base paragraph *i* in this version;
    ``paragraphs`` holds the version's actual content (surviving
    paragraphs in base order, then any brand-new paragraphs).
    """

    version: str
    paragraphs: Tuple[str, ...]
    fates: Tuple[str, ...]

    def text(self) -> str:
        return "\n\n".join(self.paragraphs)

    def ground_truth_disclosed(self) -> Tuple[int, ...]:
        """Indices of base paragraphs the human expert marks disclosed."""
        return tuple(
            i for i, fate in enumerate(self.fates) if fate in ("kept", "light", "rephrased")
        )


@dataclass
class Chapter:
    """A manual chapter across versions, base first."""

    chapter_id: str
    name: str
    base_version: str
    base_paragraphs: Tuple[str, ...]
    versions: List[ChapterVersion] = field(default_factory=list)

    def version(self, name: str) -> ChapterVersion:
        for v in self.versions:
            if v.version == name:
                return v
        raise DatasetError(f"chapter {self.chapter_id!r} has no version {name!r}")

    def version_names(self) -> List[str]:
        return [v.version for v in self.versions]


class ManualsCorpus:
    """The four chapters of the paper's Manuals dataset."""

    def __init__(self, chapters: Sequence[Chapter]) -> None:
        self.chapters = list(chapters)

    def __iter__(self):
        return iter(self.chapters)

    def __len__(self) -> int:
        return len(self.chapters)

    def by_id(self, chapter_id: str) -> Chapter:
        for chapter in self.chapters:
            if chapter.chapter_id == chapter_id:
                return chapter
        raise DatasetError(f"no chapter {chapter_id!r}")

    @classmethod
    def generate(cls, *, seed: int = 2016, scale: float = 1.0) -> "ManualsCorpus":
        """Generate all four chapters.

        ``scale`` multiplies the base paragraph counts (the paper's
        counts at 1.0); the per-version fate fractions are fixed by the
        chapter plans.
        """
        chapters = []
        for chapter_id, (name, base_version, topic, base_count) in _CHAPTER_META.items():
            rng = random.Random(f"{seed}:{chapter_id}")
            synth = TextSynthesizer(topic, rng)
            editor = EditModel(synth, rng)
            n_base = max(4, round(base_count * scale))
            base_paragraphs = tuple(
                synth.paragraph(min_sentences=3, max_sentences=6)
                for _ in range(n_base)
            )
            chapter = Chapter(
                chapter_id=chapter_id,
                name=name,
                base_version=base_version,
                base_paragraphs=base_paragraphs,
            )
            chapter.versions.append(
                ChapterVersion(
                    version=base_version,
                    paragraphs=base_paragraphs,
                    fates=tuple("kept" for _ in base_paragraphs),
                )
            )
            for version, fractions in _CHAPTER_PLANS[chapter_id].items():
                chapter.versions.append(
                    _make_version(
                        version, base_paragraphs, fractions, editor, synth, rng
                    )
                )
            chapters.append(chapter)
        return cls(chapters)


def _make_version(
    version: str,
    base_paragraphs: Tuple[str, ...],
    fractions: Tuple[float, float, float, float],
    editor: EditModel,
    synth: TextSynthesizer,
    rng: random.Random,
) -> ChapterVersion:
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise DatasetError(f"fate fractions for {version!r} must sum to 1")
    n = len(base_paragraphs)
    # Deterministically assign fates to paragraph indices by quota.
    quotas = [round(f * n) for f in fractions]
    while sum(quotas) < n:
        quotas[0] += 1
    while sum(quotas) > n:
        for i in range(len(quotas) - 1, -1, -1):
            if quotas[i] > 0:
                quotas[i] -= 1
                break
    indices = list(range(n))
    rng.shuffle(indices)
    fates = ["kept"] * n
    cursor = 0
    for fate, quota in zip(FATES, quotas):
        for i in indices[cursor:cursor + quota]:
            fates[i] = fate
        cursor += quota

    paragraphs: List[str] = []
    for i, base in enumerate(base_paragraphs):
        fate = fates[i]
        if fate == "kept":
            paragraphs.append(base)
        elif fate == "light":
            paragraphs.append(editor.substitute_words(base, _LIGHT_EDIT))
        elif fate == "rephrased":
            paragraphs.append(editor.substitute_words(base, _REPHRASE_EDIT))
        # dropped: nothing survives
    n_new = sum(1 for f in fates if f == "dropped")
    for _ in range(n_new):
        paragraphs.append(synth.paragraph())
    return ChapterVersion(
        version=version, paragraphs=tuple(paragraphs), fates=tuple(fates)
    )
