"""Extract inspectable text from an outgoing request's wire format.

A network DLP system sees only what is on the wire. For classic
form-encoded services that is the full field values; for JSON APIs it
is whatever string fields the payload happens to contain — which for a
delta-syncing editor is a single character per request. The extractor
is deliberately *generous* (it digs strings out of arbitrarily nested
JSON), so any failure of the wire-level baseline in the benchmarks is
due to the protocol's shape, not a weak scanner.
"""

from __future__ import annotations

import json
from typing import List

from repro.browser.http import HttpRequest


def _strings_from_json(value, out: List[str]) -> None:
    if isinstance(value, str):
        out.append(value)
    elif isinstance(value, dict):
        for item in value.values():
            _strings_from_json(item, out)
    elif isinstance(value, list):
        for item in value:
            _strings_from_json(item, out)


def extract_wire_text(request: HttpRequest) -> List[str]:
    """All text fragments visible in *request*'s wire format."""
    fragments: List[str] = []
    for value in request.form_data.values():
        if value:
            fragments.append(value)
    if request.body:
        try:
            payload = json.loads(request.body)
        except (json.JSONDecodeError, TypeError):
            fragments.append(request.body)
        else:
            _strings_from_json(payload, fragments)
    return [f for f in fragments if f.strip()]
