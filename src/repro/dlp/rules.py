"""Keyword / regex DLP rules — the simplest classic baseline.

Most commercial DLP products start from pattern rules: keywords
("CONFIDENTIAL"), identifiers (credit-card regexes), project codenames.
They catch verbatim markers but know nothing about similarity, so any
paraphrase or marker-free copy sails through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence

from repro.browser.http import HttpRequest
from repro.dlp.extractor import extract_wire_text


@dataclass(frozen=True)
class KeywordRule:
    """Case-insensitive substring match."""

    name: str
    keyword: str

    def matches(self, text: str) -> bool:
        return self.keyword.lower() in text.lower()


@dataclass(frozen=True)
class RegexRule:
    """Regular-expression match."""

    name: str
    pattern: str

    def matches(self, text: str) -> bool:
        return re.search(self.pattern, text) is not None


class RuleScanner:
    """Scans wire text against a rule set; usable as an interceptor."""

    def __init__(self, rules: Sequence = ()) -> None:
        self.rules = list(rules)
        self.matches: List[tuple] = []

    def add_rule(self, rule) -> None:
        self.rules.append(rule)

    def scan_text(self, text: str) -> List[str]:
        """Names of rules that match *text*."""
        return [rule.name for rule in self.rules if rule.matches(text)]

    def scan_request(self, request: HttpRequest) -> List[str]:
        hits: List[str] = []
        for fragment in extract_wire_text(request):
            hits.extend(self.scan_text(fragment))
        return hits

    def __call__(self, request: HttpRequest) -> None:
        """Interceptor protocol: record matches, never block.

        Rule scanners in monitor mode log incidents for review; the
        fingerprint firewall handles blocking.
        """
        for name in self.scan_request(request):
            self.matches.append((name, request.url))
