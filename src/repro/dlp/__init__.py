"""Network-level data leakage prevention baselines (paper §2.2).

Classic DLP systems "protect sensitive data on client endpoints by
inspecting outgoing network traffic", from application-level firewalls
monitoring for confidential files to specialised solutions employing
text similarity on network streams. BrowserFlow's pitch is that the
*browser* is the right interception point: inside the browser the text
is available in the clear, whereas on the wire modern AJAX services
ship obfuscated per-character deltas that no stream scanner can
reassemble without reverse-engineering every service's protocol.

This package implements those baselines so the comparison can be
measured rather than asserted: a keyword/regex rule scanner and a
fingerprint-based stream scanner, both deployable as network
interceptors, plus the wire-text extractor they share.
"""

from repro.dlp.extractor import extract_wire_text
from repro.dlp.firewall import Detection, DlpMode, NetworkDlpFirewall
from repro.dlp.rules import KeywordRule, RegexRule, RuleScanner

__all__ = [
    "extract_wire_text",
    "Detection",
    "DlpMode",
    "NetworkDlpFirewall",
    "KeywordRule",
    "RegexRule",
    "RuleScanner",
]
