"""A fingerprint-based network DLP firewall (paper §2.2's strong
baseline: "specialised solutions, which employ text similarity
techniques to detect information disclosure in network streams").

The firewall shares BrowserFlow's winnowing engine but sits at the
network layer: it registers known-sensitive documents, extracts text
from every outgoing request's wire format, and reports/blocks when any
fragment discloses a registered document. Against form-based services
this is as strong as BrowserFlow; against delta-syncing AJAX editors it
sees one character per request and is structurally blind — the
measured motivation for in-browser interception.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.browser.http import HttpRequest
from repro.disclosure import DisclosureEngine
from repro.dlp.extractor import extract_wire_text
from repro.errors import RequestBlocked
from repro.fingerprint import FingerprintConfig
from repro.obs.registry import MetricsRegistry


class DlpMode(enum.Enum):
    MONITOR = "monitor"  # record detections, let traffic through
    BLOCK = "block"      # veto requests containing sensitive text


@dataclass(frozen=True)
class Detection:
    """One sensitive-content hit on the wire."""

    document_id: str
    score: float
    url: str
    fragment_preview: str


class NetworkDlpFirewall:
    """Similarity-scanning middlebox, usable as a network interceptor.

    Args:
        config: fingerprinting parameters for the internal engine.
        threshold: disclosure threshold for registered documents.
        mode: MONITOR (record only) or BLOCK (veto violating requests).
        registry: metrics registry; the firewall's counters register
            under ``dlp_firewall.`` and the internal engine's under
            ``engine.paragraph.``. A private one is created when
            omitted.
    """

    def __init__(
        self,
        config: Optional[FingerprintConfig] = None,
        *,
        threshold: float = 0.5,
        mode: DlpMode = DlpMode.MONITOR,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.metrics = self.registry.scope("dlp_firewall.")
        self._engine = DisclosureEngine(config, registry=self.registry)
        self._threshold = threshold
        self.mode = mode
        self.detections: List[Detection] = []
        self._c_requests_seen = self.metrics.counter("requests_seen")
        self.metrics.gauge("detections", fn=lambda: len(self.detections))

    @property
    def requests_seen(self) -> int:
        return self._c_requests_seen.value

    def register_sensitive(self, document_id: str, text: str) -> None:
        """Add a document to the firewall's sensitive-content corpus."""
        self._engine.observe(document_id, text, threshold=self._threshold)

    def scan_request(self, request: HttpRequest) -> List[Detection]:
        """Scan one request's wire text; returns (without recording)."""
        found: List[Detection] = []
        for fragment in extract_wire_text(request):
            fingerprint = self._engine.fingerprint(fragment)
            if fingerprint.is_empty():
                # Single-character deltas and other short fragments
                # carry too little text to fingerprint — the structural
                # blind spot of stream scanning.
                continue
            report = self._engine.disclosing_sources(fingerprint=fingerprint)
            for source in report.sources:
                found.append(
                    Detection(
                        document_id=source.segment_id,
                        score=source.score,
                        url=request.url,
                        fragment_preview=fragment[:60],
                    )
                )
        return found

    def __call__(self, request: HttpRequest) -> None:
        """Interceptor protocol: inspect and (in BLOCK mode) veto."""
        self._c_requests_seen.inc()
        found = self.scan_request(request)
        self.detections.extend(found)
        if found and self.mode is DlpMode.BLOCK:
            raise RequestBlocked(
                request.url,
                f"DLP: wire content discloses {found[0].document_id!r}",
            )

    def stats(self) -> Dict[str, int]:
        """Named counters for reporting, a thin view over the registry.

        Previously returned a bare ``(requests_seen, detections)``
        tuple; callers that unpacked it positionally should move to the
        named fields (:meth:`stats_tuple` keeps the old shape during
        the transition).
        """
        return {
            "requests_seen": self._c_requests_seen.value,
            "detections": len(self.detections),
        }

    def stats_tuple(self) -> Tuple[int, int]:
        """Deprecated: the pre-dict ``(requests_seen, detections)`` shape."""
        warnings.warn(
            "NetworkDlpFirewall.stats_tuple() is deprecated; use the "
            "named fields of stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.requests_seen, len(self.detections)
