"""Whole-model persistence: policies, labels, audit, and databases.

The engine-level snapshots in :mod:`repro.disclosure.persistence` cover
the fingerprint databases; a deployment also needs the Text Disclosure
Model's state to survive a browser restart — segment labels (including
suppressed tags, which are the audit anchor), segment locations, the
audit log, and the policy store. This module snapshots and restores the
complete :class:`~repro.tdm.model.TextDisclosureModel`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.disclosure.persistence import restore_engine, snapshot_engine
from repro.errors import PolicyError
from repro.plugin.crypto import UploadCipher
from repro.tdm.audit import SuppressionEvent
from repro.tdm.labels import SegmentLabel
from repro.tdm.model import TextDisclosureModel
from repro.tdm.serialization import policy_from_dict, policy_to_dict
from repro.tdm.tags import Tag

MODEL_STATE_VERSION = 1


def _label_to_dict(label: SegmentLabel) -> dict:
    return {
        "explicit": sorted(t.name for t in label.explicit),
        "implicit": sorted(t.name for t in label.implicit),
        "suppressed": sorted(t.name for t in label.suppressed),
    }


def _label_from_dict(data: dict) -> SegmentLabel:
    return SegmentLabel.of(
        explicit=data.get("explicit", ()),
        implicit=data.get("implicit", ()),
        suppressed=data.get("suppressed", ()),
    )


def model_to_dict(model: TextDisclosureModel) -> dict:
    """Serialise the complete model state."""
    return {
        "version": MODEL_STATE_VERSION,
        "policy": policy_to_dict(model.policies),
        "labels": {
            segment_id: _label_to_dict(label)
            for segment_id, label in sorted(model._labels.items())
        },
        "locations": {
            segment_id: sorted(services)
            for segment_id, services in sorted(model._locations.items())
        },
        "audit": [
            {
                "user": event.user,
                "tag": event.tag.name,
                "segment_id": event.segment_id,
                "justification": event.justification,
                "timestamp": event.timestamp,
                "target_service": event.target_service,
            }
            for event in model.audit
        ],
        "paragraph_engine": snapshot_engine(model.tracker.paragraphs),
        "document_engine": snapshot_engine(model.tracker.documents),
        "thresholds": {
            "paragraph": model.tracker.paragraph_threshold,
            "document": model.tracker.document_threshold,
        },
    }


def model_from_dict(data: dict) -> TextDisclosureModel:
    """Rebuild a model; disclosure decisions and audits are preserved."""
    if data.get("version") != MODEL_STATE_VERSION:
        raise PolicyError(f"unsupported model state version {data.get('version')!r}")

    policies = policy_from_dict(data["policy"])
    paragraph_engine = restore_engine(data["paragraph_engine"])
    document_engine = restore_engine(data["document_engine"])

    model = TextDisclosureModel(
        policies,
        paragraph_engine.config,
        paragraph_threshold=data["thresholds"]["paragraph"],
        document_threshold=data["thresholds"]["document"],
    )
    # Swap in the restored engines wholesale; labels and locations next.
    model.tracker.paragraphs = paragraph_engine
    model.tracker.documents = document_engine

    for segment_id, label_data in data.get("labels", {}).items():
        model.set_label(segment_id, _label_from_dict(label_data))
    for segment_id, services in data.get("locations", {}).items():
        model._locations[segment_id] = set(services)
    for entry in data.get("audit", []):
        model.audit.record(
            SuppressionEvent(
                user=entry["user"],
                tag=Tag(entry["tag"]),
                segment_id=entry["segment_id"],
                justification=entry["justification"],
                timestamp=entry["timestamp"],
                target_service=entry.get("target_service"),
            )
        )
    return model


def save_model(
    model: TextDisclosureModel, path, *, cipher: Optional[UploadCipher] = None
) -> None:
    """Write the model state to *path*, optionally encrypted at rest."""
    payload = json.dumps(model_to_dict(model))
    if cipher is not None:
        payload = cipher.encrypt(payload)
    Path(path).write_text(payload, encoding="utf-8")


def load_model(path, *, cipher: Optional[UploadCipher] = None) -> TextDisclosureModel:
    payload = Path(path).read_text(encoding="utf-8")
    if UploadCipher.is_encrypted(payload):
        if cipher is None:
            raise PolicyError("model state is encrypted; a cipher is required")
        payload = cipher.decrypt(payload)
    return model_from_dict(json.loads(payload))
