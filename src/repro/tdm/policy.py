"""Service policies and the enterprise-wide policy store (paper §3.1).

An administrator assigns each cloud service a pair of labels: a privilege
label ``Lp`` (the highest level of confidential data the service may
receive) and a confidentiality label ``Lc`` (the default label of text
created within the service). Users can later adjust privilege labels for
their own custom tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import PolicyError, UnknownServiceError
from repro.tdm.labels import EMPTY_LABEL, Label
from repro.tdm.tags import Tag, as_tag


@dataclass(frozen=True)
class ServicePolicy:
    """Labels assigned to one cloud service.

    Attributes:
        service_id: stable identifier (we use the service origin/URL
            prefix, as the plug-in matches services by origin).
        privilege: ``Lp`` — data with label ⊆ Lp may be uploaded.
        confidentiality: ``Lc`` — default label for text created here.
        display_name: human-readable name for warnings and reports.
    """

    service_id: str
    privilege: Label = EMPTY_LABEL
    confidentiality: Label = EMPTY_LABEL
    display_name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.service_id:
            raise PolicyError("service_id must be non-empty")

    @property
    def name(self) -> str:
        return self.display_name or self.service_id

    def is_trusted_for(self, label: Label) -> bool:
        """Whether data labelled *label* may be uploaded in plain text."""
        return label.is_subset_of(self.privilege)

    def with_privilege_tag(self, tag) -> "ServicePolicy":
        return ServicePolicy(
            self.service_id,
            self.privilege.with_tag(tag),
            self.confidentiality,
            self.display_name,
        )

    def without_privilege_tag(self, tag) -> "ServicePolicy":
        return ServicePolicy(
            self.service_id,
            self.privilege.without_tag(tag),
            self.confidentiality,
            self.display_name,
        )


class PolicyStore:
    """Registry of service policies plus allocated tags.

    Unknown services default to the untrusted-external policy
    (``Lp = Lc = {}``) when ``default_untrusted`` is on: data created
    there is public, and no tagged data may flow there — exactly how the
    paper treats Google Docs.
    """

    def __init__(self, *, default_untrusted: bool = True) -> None:
        self._policies: Dict[str, ServicePolicy] = {}
        self._tags: Dict[str, Tag] = {}
        self._default_untrusted = default_untrusted

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[ServicePolicy]:
        return iter(self._policies.values())

    # ------------------------------------------------------------------
    # Service registration
    # ------------------------------------------------------------------

    def register(self, policy: ServicePolicy) -> ServicePolicy:
        """Register (or replace) a service policy; records its tags."""
        self._policies[policy.service_id] = policy
        for tag in list(policy.privilege) + list(policy.confidentiality):
            self._tags.setdefault(tag.name, tag)
        return policy

    def register_service(
        self,
        service_id: str,
        *,
        privilege: Label = EMPTY_LABEL,
        confidentiality: Label = EMPTY_LABEL,
        display_name: Optional[str] = None,
    ) -> ServicePolicy:
        return self.register(
            ServicePolicy(service_id, privilege, confidentiality, display_name)
        )

    def get(self, service_id: str) -> ServicePolicy:
        policy = self._policies.get(service_id)
        if policy is None:
            if self._default_untrusted:
                return ServicePolicy(
                    service_id, EMPTY_LABEL, EMPTY_LABEL, display_name=service_id
                )
            raise UnknownServiceError(service_id)
        return policy

    def is_registered(self, service_id: str) -> bool:
        return service_id in self._policies

    def services(self) -> List[str]:
        return sorted(self._policies)

    # ------------------------------------------------------------------
    # Tag management
    # ------------------------------------------------------------------

    def allocate_tag(self, name: str, owner: Optional[str] = None) -> Tag:
        """Allocate a new (custom or administrative) tag.

        Tag names are unique across the store; re-allocating an existing
        name is an error so users cannot hijack an administrator's tag.
        """
        if name in self._tags:
            raise PolicyError(f"tag {name!r} is already allocated")
        tag = Tag(name, owner=owner)
        self._tags[name] = tag
        return tag

    def tag(self, name: str) -> Tag:
        try:
            return self._tags[name]
        except KeyError:
            raise PolicyError(f"unknown tag {name!r}") from None

    def known_tags(self) -> List[Tag]:
        return sorted(self._tags.values())

    def grant_privilege(self, service_id: str, tag, *, user: Optional[str] = None) -> None:
        """Add *tag* to a service's Lp.

        Only the tag's owner (or an administrator, ``user=None``) may
        change privileges for a custom tag (paper §3.1: the allocator
        controls which services may process data with their tag).
        """
        tag = as_tag(tag)
        self._check_tag_authority(tag, user)
        policy = self.get(service_id)
        self.register(policy.with_privilege_tag(tag))

    def revoke_privilege(self, service_id: str, tag, *, user: Optional[str] = None) -> None:
        """Remove *tag* from a service's Lp."""
        tag = as_tag(tag)
        self._check_tag_authority(tag, user)
        policy = self.get(service_id)
        self.register(policy.without_privilege_tag(tag))

    def _check_tag_authority(self, tag: Tag, user: Optional[str]) -> None:
        known = self._tags.get(tag.name)
        owner = known.owner if known is not None else tag.owner
        if user is not None and owner is not None and owner != user:
            raise PolicyError(
                f"user {user!r} may not manage tag {tag.name!r} owned by {owner!r}"
            )
