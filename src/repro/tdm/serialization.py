"""Policy (de)serialisation.

Administrators "specify an enterprise-wide data disclosure policy"
(paper §1); in a deployment that policy lives in configuration files
pushed to every device. This module converts a
:class:`~repro.tdm.policy.PolicyStore` to and from a JSON-compatible
dict, including custom-tag ownership, so policies survive restarts and
can be distributed.

Format::

    {
      "version": 1,
      "tags": [{"name": "ti", "owner": null}, ...],
      "services": [
        {"id": "https://itool.xyz.com", "name": "Interview Tool",
         "privilege": ["ti"], "confidentiality": ["ti"]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.errors import PolicyError
from repro.tdm.labels import Label
from repro.tdm.policy import PolicyStore, ServicePolicy

POLICY_FORMAT_VERSION = 1


def policy_to_dict(store: PolicyStore) -> dict:
    """Serialise a policy store."""
    return {
        "version": POLICY_FORMAT_VERSION,
        "tags": [
            {"name": tag.name, "owner": tag.owner} for tag in store.known_tags()
        ],
        "services": [
            {
                "id": policy.service_id,
                "name": policy.display_name,
                "privilege": policy.privilege.names(),
                "confidentiality": policy.confidentiality.names(),
            }
            for policy in sorted(store, key=lambda p: p.service_id)
        ],
    }


def policy_from_dict(data: dict) -> PolicyStore:
    """Rebuild a policy store; validates tag references."""
    if data.get("version") != POLICY_FORMAT_VERSION:
        raise PolicyError(f"unsupported policy version {data.get('version')!r}")
    store = PolicyStore()
    tags = {}
    for entry in data.get("tags", []):
        tag = store.allocate_tag(entry["name"], owner=entry.get("owner"))
        tags[tag.name] = tag

    def to_label(names: List[str], service_id: str) -> Label:
        missing = [n for n in names if n not in tags]
        if missing:
            raise PolicyError(
                f"service {service_id!r} references undeclared tags: {missing}"
            )
        return Label(frozenset(tags[n] for n in names))

    for entry in data.get("services", []):
        service_id = entry["id"]
        store.register(
            ServicePolicy(
                service_id=service_id,
                privilege=to_label(entry.get("privilege", []), service_id),
                confidentiality=to_label(
                    entry.get("confidentiality", []), service_id
                ),
                display_name=entry.get("name"),
            )
        )
    return store


def save_policy(store: PolicyStore, path) -> None:
    Path(path).write_text(
        json.dumps(policy_to_dict(store), indent=2), encoding="utf-8"
    )


def load_policy(path) -> PolicyStore:
    return policy_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
