"""The Text Disclosure Model engine (paper §3).

:class:`TextDisclosureModel` ties the label algebra to the imprecise
disclosure engine:

* when text first appears in a service, its segment gets the service's
  confidentiality label ``Lc`` as *explicit* tags;
* when a segment is found (by fingerprint similarity) to disclose other
  segments, the sources' propagating tags attach to it as *implicit*
  tags — which are flow-checked but never propagate onwards (§3.2);
* an upload of a segment to a service is compliant iff the segment's
  effective label is a subset of the service's privilege label ``Lp``;
* users may suppress tags case-by-case (recorded in the audit log) and
  allocate custom tags, whose addition back-propagates privileges to
  services that already store the segment (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.disclosure import DisclosureTracker, SourceDisclosure
from repro.errors import PolicyError, SuppressionError
from repro.fingerprint import Fingerprint, FingerprintConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import span
from repro.tdm.audit import AuditLog, SuppressionEvent
from repro.tdm.labels import Label, SegmentLabel
from repro.tdm.policy import PolicyStore, ServicePolicy
from repro.tdm.tags import Tag, as_tag
from repro.util.clock import Clock, LogicalClock

#: (paragraph_id, text) pairs, the document representation used throughout.
Paragraphs = Sequence[Tuple[str, str]]


@dataclass(frozen=True)
class Suppression:
    """A one-shot declassification request for one tag of one segment."""

    tag: Tag
    user: str
    justification: str

    @classmethod
    def of(cls, tag, user: str, justification: str) -> "Suppression":
        if not user:
            raise SuppressionError("suppression requires a user id")
        if not justification:
            raise SuppressionError("suppression requires a justification")
        return cls(as_tag(tag), user, justification)


@dataclass(frozen=True)
class FlowViolation:
    """One segment whose upload would violate the disclosure policy."""

    segment_id: str
    label: SegmentLabel
    offending: Label
    sources: Tuple[SourceDisclosure, ...] = ()
    granularity: str = "paragraph"

    def describe(self) -> str:
        origins = ", ".join(sorted({s.segment_id for s in self.sources})) or "itself"
        return (
            f"{self.granularity} {self.segment_id!r} carries "
            f"{self.offending} (via {origins})"
        )


@dataclass(frozen=True)
class FlowDecision:
    """Result of a policy check for one upload to one service."""

    service_id: str
    allowed: bool
    violations: Tuple[FlowViolation, ...] = ()
    labels: Mapping[str, SegmentLabel] = field(default_factory=dict)

    def violating_segments(self) -> List[str]:
        return [v.segment_id for v in self.violations]


class TextDisclosureModel:
    """Policy lookup + reasoning for the BrowserFlow middleware.

    Args:
        policies: the enterprise policy store; a fresh one (all services
            untrusted by default) is created when omitted.
        config: fingerprinting parameters for the disclosure tracker.
        clock: timestamp source shared by disclosure DBs and audit log.
        paragraph_threshold / document_threshold: default Tpar and Tdoc.
        authoritative: apply the §4.3 overlap correction.
        registry: metrics registry shared down the stack (both engines,
            the shared lock, and — via the plug-in — the decision
            cache). A private one is created when omitted.
        n_shards: hash-range shard the disclosure databases into this
            many independently locked shards (DESIGN.md §11); None keeps
            the classic single-store engines.
        router: scatter strategy for sharded sweeps (an object with
            ``map(fn, items)``); ignored when unsharded.
    """

    def __init__(
        self,
        policies: Optional[PolicyStore] = None,
        config: Optional[FingerprintConfig] = None,
        clock: Optional[Clock] = None,
        *,
        paragraph_threshold: float = 0.5,
        document_threshold: float = 0.5,
        authoritative: bool = True,
        registry: Optional[MetricsRegistry] = None,
        n_shards: Optional[int] = None,
        router=None,
    ) -> None:
        self.policies = policies or PolicyStore()
        self._clock = clock or LogicalClock()
        self.tracker = DisclosureTracker(
            config,
            self._clock,
            paragraph_threshold=paragraph_threshold,
            document_threshold=document_threshold,
            authoritative=authoritative,
            registry=registry,
            n_shards=n_shards,
            router=router,
        )
        #: The tracker's registry — the composition root's single
        #: namespace, reused by the plug-in's decision cache and the
        #: lookup service above.
        self.registry = self.tracker.registry
        self.audit = AuditLog()
        #: The tracker's reader–writer lock, shared by both granularity
        #: engines; model operations reuse it (reentrantly) so label and
        #: location maps stay consistent with the disclosure databases.
        self.lock = self.tracker.lock
        self._labels: Dict[str, SegmentLabel] = {}
        self._locations: Dict[str, set] = {}
        self._label_epoch = 0
        # Durability hook: a WAL-backed journal (see
        # repro.disclosure.wal.EngineJournal) that mirrors consumed
        # suppressions into the log, so a standby replica inherits the
        # audit obligation along with the fingerprint state.
        self._journal = None

    def attach_journal(self, journal) -> None:
        """Mirror consumed suppressions into *journal* (``log_suppress``).

        Engine-level mutations are journaled by the tracker's engines
        themselves (:meth:`~repro.disclosure.engine.DisclosureEngine.
        attach_journal`); this hook covers the one policy-level event a
        standby must not lose — a user's declassification decision.
        """
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None

    # ------------------------------------------------------------------
    # Label access
    # ------------------------------------------------------------------

    def label_of(self, segment_id: str) -> SegmentLabel:
        """Current label of a segment (empty label if never seen)."""
        return self._labels.get(segment_id, SegmentLabel())

    def label_epoch(self) -> int:
        """Version of the label store; bumps only on *effective* change.

        A check verdict depends on the label store twice — the upload
        segments' own stored labels and the inherited tags of every
        matching source — so any memoized verdict must be keyed on this
        epoch alongside the disclosure-database epochs (DESIGN.md §13).
        Storing a label equal to what was already there (the common case:
        re-observing public text keeps its empty label) does not bump,
        so public churn never invalidates cached verdicts; creating or
        inheriting confidential tags, declassification via
        :meth:`set_label`, and :meth:`add_tag_to_segment` all do.
        """
        return self._label_epoch

    def _store_label(self, segment_id: str, label: SegmentLabel) -> None:
        if self._labels.get(segment_id, SegmentLabel()) != label:
            self._label_epoch += 1
        self._labels[segment_id] = label

    def set_label(self, segment_id: str, label: SegmentLabel) -> None:
        # Write-locked like every other label mutator: concurrent
        # lookups read the label store and its epoch under the read
        # lock, and a bare dict write here could slip between the two.
        with self.lock.write_locked():
            self._store_label(segment_id, label)

    def locations_of(self, segment_id: str) -> FrozenSet[str]:
        """Services known to store a copy of the segment."""
        return frozenset(self._locations.get(segment_id, ()))

    # ------------------------------------------------------------------
    # Observation: text appearing inside a service
    # ------------------------------------------------------------------

    def observe(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Paragraphs,
        *,
        paragraph_threshold: Optional[float] = None,
        document_threshold: Optional[float] = None,
    ) -> Dict[str, SegmentLabel]:
        """Record text observed in *service_id* and label it.

        New segments get the service's ``Lc`` as explicit tags. Segments
        found to disclose existing sources additionally inherit those
        sources' propagating tags as implicit tags. Returns the resolved
        label per paragraph id (the document label is stored under
        ``doc_id``).
        """
        policy = self.policies.get(service_id)
        # The whole check-then-store sequence runs under the write lock:
        # the disclosure lookup must see the databases *without* the copy
        # we are about to store, and no concurrent client may observe the
        # labels before the fingerprints (or vice versa).
        with self.lock.write_locked():
            report = self.tracker.check_document(doc_id, paragraphs)
            resolved: Dict[str, SegmentLabel] = {}

            for (par_id, _text), (_pid, par_report) in zip(
                paragraphs, report.paragraph_reports
            ):
                label = self._labels.get(par_id)
                if label is None:
                    label = SegmentLabel.of(explicit=policy.confidentiality)
                inherited = self._inherited_tags(par_report.sources)
                label = label.add_implicit(inherited)
                self._store_label(par_id, label)
                self._locations.setdefault(par_id, set()).add(service_id)
                resolved[par_id] = label

            doc_label = self._labels.get(doc_id)
            if doc_label is None:
                doc_label = SegmentLabel.of(explicit=policy.confidentiality)
            if report.document_report is not None:
                doc_label = doc_label.add_implicit(
                    self._inherited_tags(report.document_report.sources)
                )
            self._store_label(doc_id, doc_label)
            self._locations.setdefault(doc_id, set()).add(service_id)
            resolved[doc_id] = doc_label

            self.tracker.observe_document(
                doc_id,
                paragraphs,
                paragraph_threshold=paragraph_threshold,
                document_threshold=document_threshold,
            )
            return resolved

    def _inherited_tags(self, sources: Iterable[SourceDisclosure]) -> FrozenSet[Tag]:
        tags: set = set()
        for source in sources:
            tags |= self.label_of(source.segment_id).propagating()
        return frozenset(tags)

    # ------------------------------------------------------------------
    # Enforcement: checking an upload
    # ------------------------------------------------------------------

    def check_upload(
        self,
        service_id: str,
        doc_id: str,
        paragraphs: Paragraphs,
        *,
        suppressions: Optional[Mapping[str, Sequence[Suppression]]] = None,
        fingerprints: Optional[Sequence[Fingerprint]] = None,
    ) -> FlowDecision:
        """Decide whether uploading *paragraphs* to *service_id* complies.

        This is the policy-lookup + policy-enforcement pipeline: resolve
        each segment's label (own label plus implicit tags from detected
        disclosure), apply any one-shot suppressions (audited), then
        check the effective label against the service's ``Lp``.

        ``fingerprints`` optionally carries precomputed per-paragraph
        fingerprints (aligned with *paragraphs*); the batch lookup path
        passes the ones it computed for its cache keys so each item is
        fingerprinted once end to end.
        """
        policy = self.policies.get(service_id)
        suppressions = suppressions or {}
        # Read lock: the dual-granularity report and the label resolution
        # below must describe one consistent database state. Suppression
        # audit appends are safe under the shared lock (append-only log).
        with self.lock.read_locked(), span(
            "label_check", service=service_id, doc=doc_id
        ) as sp:
            report = self.tracker.check_document(
                doc_id, paragraphs, fingerprints=fingerprints
            )
            decision = self._decision_for(
                policy, service_id, doc_id, paragraphs, report, suppressions
            )
            sp.set(
                allowed=decision.allowed,
                violations=len(decision.violations),
                segments=len(decision.labels),
            )
            return decision

    def check_uploads(
        self,
        service_id: str,
        docs: Sequence[Tuple[str, Paragraphs]],
        *,
        fingerprints: Optional[Sequence[Sequence[Fingerprint]]] = None,
    ) -> List[FlowDecision]:
        """Batched :meth:`check_upload`: one decision per document.

        Field-identical to checking each document alone (the label
        resolution and violation assembly are the same code), but the
        whole batch shares one read-lock acquisition, one trace span,
        and the tracker's fused engine queries
        (:meth:`~repro.disclosure.engine.DisclosureTracker.check_documents`).
        Suppressions are deliberately not accepted: a suppression is a
        one-shot audited consume that the single path owns.

        ``fingerprints`` optionally carries per-document lists of
        precomputed paragraph fingerprints, aligned with *docs*.
        """
        policy = self.policies.get(service_id)
        with self.lock.read_locked(), span(
            "label_check", service=service_id, batch=len(docs)
        ) as sp:
            reports = self.tracker.check_documents(
                docs, fingerprints=fingerprints
            )
            decisions = [
                self._decision_for(
                    policy, service_id, doc_id, paragraphs, report, {}
                )
                for (doc_id, paragraphs), report in zip(docs, reports)
            ]
            sp.set(
                allowed=sum(1 for d in decisions if d.allowed),
                violations=sum(len(d.violations) for d in decisions),
            )
            return decisions

    def _decision_for(
        self,
        policy: ServicePolicy,
        service_id: str,
        doc_id: str,
        paragraphs: Paragraphs,
        report,
        suppressions: Mapping[str, Sequence[Suppression]],
    ) -> FlowDecision:
        """Assemble one document's flow decision from its tracker report.

        The shared core of :meth:`check_upload` and
        :meth:`check_uploads`; the caller holds the read lock.
        """
        violations: List[FlowViolation] = []
        resolved: Dict[str, SegmentLabel] = {}

        for (par_id, _text), (_pid, par_report) in zip(
            paragraphs, report.paragraph_reports
        ):
            label = self._resolve_for_check(
                par_id, par_report.sources, policy, suppressions.get(par_id, ())
            )
            resolved[par_id] = label
            if not label.flows_to(policy.privilege):
                violations.append(
                    FlowViolation(
                        segment_id=par_id,
                        label=label,
                        offending=label.offending_tags(policy.privilege),
                        sources=par_report.sources,
                        granularity="paragraph",
                    )
                )

        doc_sources = (
            report.document_report.sources if report.document_report else ()
        )
        doc_label = self._resolve_for_check(
            doc_id, doc_sources, policy, suppressions.get(doc_id, ())
        )
        resolved[doc_id] = doc_label
        if not doc_label.flows_to(policy.privilege):
            violations.append(
                FlowViolation(
                    segment_id=doc_id,
                    label=doc_label,
                    offending=doc_label.offending_tags(policy.privilege),
                    sources=doc_sources,
                    granularity="document",
                )
            )

        return FlowDecision(
            service_id=service_id,
            allowed=not violations,
            violations=tuple(violations),
            labels=resolved,
        )

    def _resolve_for_check(
        self,
        segment_id: str,
        sources: Tuple[SourceDisclosure, ...],
        policy: ServicePolicy,
        suppressions: Sequence[Suppression],
    ) -> SegmentLabel:
        label = self._labels.get(segment_id)
        if label is None:
            label = SegmentLabel()
        label = label.add_implicit(self._inherited_tags(sources))
        for suppression in suppressions:
            if suppression.tag not in label.full().tags:
                raise SuppressionError(
                    f"tag {suppression.tag.name!r} is not attached to "
                    f"segment {segment_id!r}"
                )
            label = label.suppress(suppression.tag)
            event = SuppressionEvent(
                user=suppression.user,
                tag=suppression.tag,
                segment_id=segment_id,
                justification=suppression.justification,
                timestamp=self._clock.now(),
                target_service=policy.service_id,
            )
            self.audit.record(event)
            if self._journal is not None:
                self._journal.log_suppress(
                    user=event.user,
                    tag=event.tag.name,
                    segment_id=event.segment_id,
                    justification=event.justification,
                    timestamp=event.timestamp,
                    target_service=event.target_service,
                )
        return label

    def commit_upload(
        self, service_id: str, doc_id: str, paragraphs: Paragraphs, decision: FlowDecision
    ) -> None:
        """Record that an allowed (or overridden) upload happened.

        The resolved labels from the decision — including suppressed
        tags, which stay attached in the target (§3.1) — become the
        stored labels, and the segments are observed as present in the
        target service.
        """
        if decision.service_id != service_id:
            raise PolicyError(
                f"decision is for {decision.service_id!r}, not {service_id!r}"
            )
        # Once stored, the text is "created within" the target service
        # too, so it additionally carries that service's Lc (§3.1).
        with self.lock.write_locked():
            confidentiality = self.policies.get(service_id).confidentiality
            for segment_id, label in decision.labels.items():
                self._store_label(segment_id, label.add_explicit(confidentiality))
                self._locations.setdefault(segment_id, set()).add(service_id)
            self.tracker.observe_document(doc_id, paragraphs)

    # ------------------------------------------------------------------
    # Custom tags (§3.1)
    # ------------------------------------------------------------------

    def allocate_custom_tag(self, name: str, owner: str) -> Tag:
        """Allocate a user-owned tag via the policy store."""
        return self.policies.allocate_tag(name, owner=owner)

    def add_tag_to_segment(self, segment_id: str, tag, *, user: Optional[str] = None) -> None:
        """Attach a tag to a segment's explicit label.

        Per §3.1, every service that already stores the segment receives
        the tag in its privilege label automatically, so protecting old
        text never cuts off services that legitimately hold it.
        """
        tag = as_tag(tag)
        with self.lock.write_locked():
            label = self.label_of(segment_id).add_explicit([tag])
            self._store_label(segment_id, label)
            for service_id in self.locations_of(segment_id):
                policy = self.policies.get(service_id)
                if tag not in policy.privilege:
                    self.policies.register(policy.with_privilege_tag(tag))
