"""Audit trail for tag suppression (paper §3.1) and service degradation.

"Tag suppression incurs an audit trail because it may result in sensitive
data disclosure. ... Along with a suppressed tag, we also store an
identifier of the user who initiated the suppression and a justification
to facilitate future audits."

The shared lookup service extends the same trail with *degradation*
events: when the lookup backend stays unavailable through every retry,
the fail-open/fail-closed decision that was taken in its place is itself
a security-relevant act (fail-open may disclose, fail-closed denies
service) and must be auditable afterwards.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.tdm.tags import Tag


@dataclass(frozen=True)
class SuppressionEvent:
    """One user-initiated declassification."""

    user: str
    tag: Tag
    segment_id: str
    justification: str
    timestamp: float
    target_service: Optional[str] = None


@dataclass(frozen=True)
class DegradationEvent:
    """One lookup-unavailable incident and the degradation applied.

    Attributes:
        kind: what went wrong; currently always ``"lookup_unavailable"``.
        failure_mode: ``"fail-open"`` or ``"fail-closed"``.
        service_id: target service of the upload being checked.
        doc_id: document whose upload hit the degraded path.
        attempts: lookup attempts made before degrading (1 + retries).
        faults: per-attempt fault descriptions, e.g. ``("timeout",
            "http-503")``, in attempt order.
        timestamp: when the degradation decision was taken.
    """

    kind: str
    failure_mode: str
    service_id: str
    doc_id: str
    attempts: int
    faults: Tuple[str, ...]
    timestamp: float


class AuditLog:
    """Append-only, thread-safe log of audit events with simple queries.

    Suppression and degradation events share one chronological log;
    the typed accessors below split them back out.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._events: List[object] = []

    def record(self, event) -> None:
        with self._mutex:
            self._events.append(event)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def events(self) -> List[object]:
        with self._mutex:
            return list(self._events)

    def suppressions(self) -> List[SuppressionEvent]:
        return [e for e in self.events() if isinstance(e, SuppressionEvent)]

    def degradations(self) -> List[DegradationEvent]:
        return [e for e in self.events() if isinstance(e, DegradationEvent)]

    def by_user(self, user: str) -> List[SuppressionEvent]:
        return [e for e in self.suppressions() if e.user == user]

    def by_tag(self, tag: Tag) -> List[SuppressionEvent]:
        return [e for e in self.suppressions() if e.tag == tag]

    def by_segment(self, segment_id: str) -> List[SuppressionEvent]:
        return [e for e in self.suppressions() if e.segment_id == segment_id]
