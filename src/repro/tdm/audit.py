"""Audit trail for tag suppression (paper §3.1).

"Tag suppression incurs an audit trail because it may result in sensitive
data disclosure. ... Along with a suppressed tag, we also store an
identifier of the user who initiated the suppression and a justification
to facilitate future audits."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.tdm.tags import Tag


@dataclass(frozen=True)
class SuppressionEvent:
    """One user-initiated declassification."""

    user: str
    tag: Tag
    segment_id: str
    justification: str
    timestamp: float
    target_service: Optional[str] = None


class AuditLog:
    """Append-only log of suppression events with simple queries."""

    def __init__(self) -> None:
        self._events: List[SuppressionEvent] = []

    def record(self, event: SuppressionEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self) -> List[SuppressionEvent]:
        return list(self._events)

    def by_user(self, user: str) -> List[SuppressionEvent]:
        return [e for e in self._events if e.user == user]

    def by_tag(self, tag: Tag) -> List[SuppressionEvent]:
        return [e for e in self._events if e.tag == tag]

    def by_segment(self, segment_id: str) -> List[SuppressionEvent]:
        return [e for e in self._events if e.segment_id == segment_id]
