"""Administrative queries over model state.

IT departments deploying BrowserFlow need answers beyond per-upload
decisions: where does data tagged *X* currently live, who declassified
what, and why is a given segment labelled the way it is. These queries
read the :class:`~repro.tdm.model.TextDisclosureModel` without mutating
it, and back the audits the paper's suppression mechanism exists to
enable (§3.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.tdm.model import TextDisclosureModel
from repro.tdm.tags import Tag, as_tag


@dataclass(frozen=True)
class SegmentExplanation:
    """Human-auditable provenance of one segment's label."""

    segment_id: str
    explicit: Tuple[str, ...]
    implicit: Tuple[str, ...]
    suppressed: Tuple[str, ...]
    locations: Tuple[str, ...]
    suppression_events: Tuple[str, ...]

    def describe(self) -> str:
        lines = [f"segment {self.segment_id}"]
        if self.explicit:
            lines.append(f"  explicit tags: {', '.join(self.explicit)}")
        if self.implicit:
            lines.append(
                f"  implicit tags (inherited via similarity): "
                f"{', '.join(self.implicit)}"
            )
        if self.suppressed:
            lines.append(f"  suppressed tags: {', '.join(self.suppressed)}")
        if self.locations:
            lines.append(f"  stored at: {', '.join(self.locations)}")
        for event in self.suppression_events:
            lines.append(f"  audit: {event}")
        return "\n".join(lines)


def segments_tagged(model: TextDisclosureModel, tag) -> List[str]:
    """Segment ids whose effective label carries *tag*."""
    tag = as_tag(tag)
    return sorted(
        segment_id
        for segment_id in model._labels
        if tag in model.label_of(segment_id).effective().tags
    )


def services_holding(model: TextDisclosureModel, tag) -> FrozenSet[str]:
    """Services that store at least one segment tagged *tag*.

    The exposure surface of a tag: every origin an attacker (or an
    auditor) would need to look at to find data in that category.
    """
    tag = as_tag(tag)
    services = set()
    for segment_id in segments_tagged(model, tag):
        services |= model.locations_of(segment_id)
    return frozenset(services)


def suppression_summary(model: TextDisclosureModel) -> Dict[str, Counter]:
    """Declassification activity grouped by user and by tag."""
    by_user: Counter = Counter()
    by_tag: Counter = Counter()
    for event in model.audit:
        by_user[event.user] += 1
        by_tag[event.tag.name] += 1
    return {"by_user": by_user, "by_tag": by_tag}


def explain_segment(model: TextDisclosureModel, segment_id: str) -> SegmentExplanation:
    """Full provenance of one segment's current label."""
    label = model.label_of(segment_id)
    events = tuple(
        f"{event.user} suppressed {event.tag.name} for "
        f"{event.target_service or 'unknown service'} ({event.justification!r})"
        for event in model.audit.by_segment(segment_id)
    )
    return SegmentExplanation(
        segment_id=segment_id,
        explicit=tuple(sorted(t.name for t in label.explicit)),
        implicit=tuple(sorted(t.name for t in label.implicit)),
        suppressed=tuple(sorted(t.name for t in label.suppressed)),
        locations=tuple(sorted(model.locations_of(segment_id))),
        suppression_events=events,
    )


def exposure_report(model: TextDisclosureModel) -> List[Tuple[str, int, int]]:
    """Per tag: (tag, tagged segments, services holding it), sorted.

    The at-a-glance dashboard row: a tag held by many services has a
    wide disclosure surface and deserves a policy review.
    """
    tags = set()
    for segment_id in model._labels:
        tags |= model.label_of(segment_id).effective().tags
    rows = []
    for tag in sorted(tags):
        tagged = segments_tagged(model, tag)
        rows.append((tag.name, len(tagged), len(services_holding(model, tag))))
    return rows
