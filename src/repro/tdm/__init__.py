"""The Text Disclosure Model (paper §3).

Data disclosure policies are decentralised labels: services carry a
privilege label ``Lp`` and a confidentiality label ``Lc``; text segments
carry labels split into *explicit* tags (assigned by ``Lc`` or by users)
and *implicit* tags (inherited through detected similarity, §3.2). A
segment may flow to a service only when its effective label is a subset
of the service's ``Lp``. Users may *suppress* tags case-by-case
(declassification with an audit trail, §3.1) or allocate *custom* tags
to restrict propagation further.
"""

from repro.tdm.audit import AuditLog, DegradationEvent, SuppressionEvent
from repro.tdm.labels import EMPTY_LABEL, Label, SegmentLabel
from repro.tdm.model import FlowDecision, FlowViolation, TextDisclosureModel
from repro.tdm.policy import PolicyStore, ServicePolicy
from repro.tdm.tags import Tag

__all__ = [
    "AuditLog",
    "DegradationEvent",
    "SuppressionEvent",
    "EMPTY_LABEL",
    "Label",
    "SegmentLabel",
    "FlowDecision",
    "FlowViolation",
    "TextDisclosureModel",
    "PolicyStore",
    "ServicePolicy",
    "Tag",
]
