"""Security tags (paper §3.1).

A tag is a unique, human-readable string expressing one disclosure
concern — broad (``interview-data``) or specific
(``product-announcement-x``). Tags compare by name only; the optional
owner records who allocated a custom tag, which matters for audits but
not for label algebra.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TagError

_TAG_NAME = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")


@dataclass(frozen=True)
class Tag:
    """One security tag.

    Attributes:
        name: the tag's identity; lowercase alphanumeric plus ``-_.``.
        owner: user id of the allocator for custom tags; None for tags
            created by administrators as part of the default policy.
    """

    name: str
    owner: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _TAG_NAME.match(self.name):
            raise TagError(
                f"invalid tag name {self.name!r}: must be lowercase "
                "alphanumeric with '-', '_' or '.' separators"
            )

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "Tag") -> bool:
        return self.name < other.name


def as_tag(value) -> Tag:
    """Coerce a string or Tag to a Tag."""
    if isinstance(value, Tag):
        return value
    if isinstance(value, str):
        return Tag(value)
    raise TagError(f"cannot interpret {value!r} as a tag")
