"""Label algebra (paper §3.1–§3.2).

A :class:`Label` is an immutable set of tags with the subset-based flow
rule: a segment labelled ``Li`` may be released to a service with
privilege label ``Lp`` only if ``Li ⊆ Lp``.

A :class:`SegmentLabel` is the richer per-segment structure that splits
tags into *explicit* (from a service's ``Lc`` or user-assigned) and
*implicit* (inherited when the segment was found to disclose another
segment). Implicit tags take part in flow checks but never propagate
onwards — the mechanism that prevents outdated-tag false positives in
the paper's Figure 6. Suppressed tags stay attached (for audit) but are
ignored by flow checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List

from repro.tdm.tags import Tag, as_tag


def _tagset(tags: Iterable) -> FrozenSet[Tag]:
    return frozenset(as_tag(t) for t in tags)


@dataclass(frozen=True)
class Label:
    """An immutable set of tags with subset-based flow semantics."""

    tags: FrozenSet[Tag] = frozenset()

    @classmethod
    def of(cls, *tags) -> "Label":
        """Build a label from tag names or Tag values.

        >>> Label.of("ti", "tw") == Label.of("tw", "ti")
        True
        """
        return cls(_tagset(tags))

    def __iter__(self) -> Iterator[Tag]:
        return iter(sorted(self.tags))

    def __len__(self) -> int:
        return len(self.tags)

    def __contains__(self, tag) -> bool:
        return as_tag(tag) in self.tags

    def __or__(self, other: "Label") -> "Label":
        return Label(self.tags | other.tags)

    def __sub__(self, other: "Label") -> "Label":
        return Label(self.tags - other.tags)

    def __le__(self, other: "Label") -> bool:
        """Flow check: ``self <= other`` means self may flow to other."""
        return self.tags <= other.tags

    def is_subset_of(self, other: "Label") -> bool:
        """Named alias of the subset flow check."""
        return self.tags <= other.tags

    def with_tag(self, tag) -> "Label":
        return Label(self.tags | {as_tag(tag)})

    def without_tag(self, tag) -> "Label":
        return Label(self.tags - {as_tag(tag)})

    def names(self) -> List[str]:
        return sorted(t.name for t in self.tags)

    def __str__(self) -> str:
        return "{" + ", ".join(self.names()) + "}"


#: The public label: data carrying it may flow anywhere (e.g. Google
#: Docs' Lc in the paper's running example).
EMPTY_LABEL = Label()


@dataclass(frozen=True)
class SegmentLabel:
    """Per-segment label split into explicit/implicit/suppressed parts.

    Attributes:
        explicit: tags assigned by the origin service's ``Lc`` or by
            users; these propagate to similar segments (as implicit).
        implicit: tags inherited because the segment disclosed another
            segment in the past; checked for flow but never propagated.
        suppressed: tags a user has declassified for this segment in the
            target service; they remain attached for accountability but
            are ignored in flow checks.
    """

    explicit: FrozenSet[Tag] = frozenset()
    implicit: FrozenSet[Tag] = frozenset()
    suppressed: FrozenSet[Tag] = frozenset()

    @classmethod
    def of(
        cls,
        explicit: Iterable = (),
        implicit: Iterable = (),
        suppressed: Iterable = (),
    ) -> "SegmentLabel":
        return cls(_tagset(explicit), _tagset(implicit), _tagset(suppressed))

    def effective(self) -> Label:
        """The label used in flow checks: explicit ∪ implicit − suppressed."""
        return Label((self.explicit | self.implicit) - self.suppressed)

    def full(self) -> Label:
        """Every attached tag including suppressed ones (for audits)."""
        return Label(self.explicit | self.implicit)

    def propagating(self) -> FrozenSet[Tag]:
        """Tags that flow onwards when this segment discloses elsewhere.

        Only explicit, non-suppressed tags propagate (paper §3.2):
        implicit tags mark non-authoritative copies and stop here.
        """
        return self.explicit - self.suppressed

    def add_explicit(self, tags: Iterable) -> "SegmentLabel":
        return SegmentLabel(
            self.explicit | _tagset(tags), self.implicit, self.suppressed
        )

    def add_implicit(self, tags: Iterable) -> "SegmentLabel":
        """Attach inherited tags; a tag already explicit stays explicit."""
        incoming = _tagset(tags) - self.explicit
        return SegmentLabel(self.explicit, self.implicit | incoming, self.suppressed)

    def suppress(self, tag) -> "SegmentLabel":
        return SegmentLabel(
            self.explicit, self.implicit, self.suppressed | {as_tag(tag)}
        )

    def flows_to(self, privilege: Label) -> bool:
        return self.effective().is_subset_of(privilege)

    def offending_tags(self, privilege: Label) -> Label:
        """Tags blocking a flow to *privilege* (empty when allowed)."""
        return self.effective() - privilege

    def __str__(self) -> str:
        parts = sorted(t.name for t in self.explicit - self.suppressed)
        parts += [f"{t.name}?" for t in sorted(self.implicit - self.suppressed)]
        parts += [f"~{t.name}" for t in sorted(self.suppressed)]
        return "{" + ", ".join(parts) + "}"
