"""Throughput measurement for the sharded, batched lookup tier.

One module owns the comparison so the pytest benchmark
(``benchmarks/bench_sharded_service.py``) and the trajectory tool
(``tools/bench_to_json.py``) cannot drift apart: both call
:func:`measure` and report the same numbers, and both go through
:func:`check_equivalence` first, so a throughput figure is never
produced for a sharded tier that disagrees with the single-engine
reference on any decision.

The comparison is the deployment question ISSUE 7 asks: N plug-in
clients hammering one shared enterprise service — is the *sharded
engine + batched wire protocol* worth deploying over the plain
single-engine ``LookupServer``? Both sides answer the identical
workload (same texts, same per-item decisions, healthy injectors, cold
decision cache) on the same thread count; what differs is the tier:

* **single** — one :class:`~repro.plugin.server.LookupClient` request
  per item against an unsharded engine: each item pays a read-lock
  acquisition, a trace span, a version read, and fingerprints its text
  twice (cache key + engine check).
* **sharded_batched** — items travel ``batch_size`` per round trip to a
  server whose hash store is partitioned across ``n_shards`` shards;
  the batch amortises the per-request machinery and each text is
  fingerprinted exactly once, with the fingerprint handed down the
  stack.

Per-item latency for a batch is the round-trip wall time divided by the
batch size — the amortised figure a queueing plug-in actually pays per
paragraph it needed checked.

Timing protocol: each tier is driven for several independent rounds
(fresh server, cold decision cache, garbage collector paused during the
timed section) and the best round per tier is reported — the standard
microbenchmark convention for suppressing scheduler and allocator
noise, applied symmetrically to both tiers.

Throughput comes from the 8-client fleet; the latency percentiles that
gate "p95 no worse" come from a separate single-client run. The two
loads answer different questions and mixing them corrupts the second:
under the contended fleet a closed-loop thread's per-item stopwatch
mostly measures interpreter scheduling — whichever thread holds the
GIL completes a convoy of sub-millisecond checks while the rest wait,
so a handful of items absorb multi-millisecond waits and the single
tier's p95 flips between ~0.3 ms and ~12 ms run to run depending on
whether the convoy fraction crosses 5%. (The fleet sections still
record their percentiles for inspection; the single tier's fleet p99
— tens of milliseconds of convoy wait — is why they are not the
gate.) The uncontended run measures the service itself: what one
plug-in pays per checked paragraph when a millisecond means a
millisecond.

Everything here is standard library, so ``tools/bench_to_json.py``
stays dependency-free.
"""

from __future__ import annotations

import gc
import platform
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import EbookCorpus
from repro.fingerprint.config import PAPER_CONFIG
from repro.plugin.lookup import PolicyLookup
from repro.plugin.server import BatchLookupClient, LookupClient, LookupServer
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.stats import percentile

#: Schema version of BENCH_shard.json; bump on shape changes.
SCHEMA_VERSION = 1

#: The measured deployment shape (acceptance gate configuration).
N_CLIENTS = 8
N_SHARDS = 4
BATCH_SIZE = 32

#: Timed rounds per tier; the best round is reported.
ROUNDS = 3

LIBRARY = "https://library.example.com"
DOCS = "https://docs.example.com"

WorkItem = Tuple[str, str]  # (doc_id, text)


def build_corpus(smoke: bool, seed: int) -> EbookCorpus:
    if smoke:
        return EbookCorpus.generate(n_books=4, paragraphs_per_book=25, seed=seed)
    return EbookCorpus.generate(n_books=10, paragraphs_per_book=60, seed=seed)


def build_server(
    corpus: EbookCorpus,
    *,
    n_shards: Optional[int] = None,
    router=None,
) -> LookupServer:
    """A healthy (no injected faults) lookup service over *corpus*."""
    policies = PolicyStore()
    policies.register_service(
        LIBRARY, privilege=Label.of("lib"), confidentiality=Label.of("lib")
    )
    policies.register_service(DOCS)
    model = TextDisclosureModel(
        policies, PAPER_CONFIG, n_shards=n_shards, router=router
    )
    for book in corpus:
        doc_id = f"{LIBRARY}|{book.book_id}"
        model.observe(
            LIBRARY,
            doc_id,
            [(f"{doc_id}#p{i}", text) for i, text in enumerate(book.paragraphs)],
        )
    return LookupServer(PolicyLookup(model))


def _sentences(corpus: EbookCorpus) -> List[str]:
    """Sentence-sized fragments of the observed corpus (checkable units).

    The plug-in's hot path is the per-keystroke / per-edit check (paper
    §6.2): what travels to the lookup tier is the short segment under
    the cursor, not whole documents. Sentence-sized uploads make the
    workload match that, and they are where the tiers differ most —
    per-request machinery dominates short checks, so batching it
    matters.
    """
    out: List[str] = []
    for book in corpus:
        for paragraph in book.paragraphs:
            for sentence in paragraph.split("."):
                sentence = sentence.strip()
                if len(sentence) > 40:
                    out.append(sentence + ".")
    return out


def build_workloads(
    corpus: EbookCorpus, seed: int, requests_per_client: int
) -> List[List[WorkItem]]:
    """Per-client edit-check streams: half disclosure hits, half misses.

    Each item is one sentence being edited — either verbatim from an
    observed book (library n-grams match) or the same words shuffled
    (same vocabulary, fresh fingerprint). Every item carries a unique
    doc_id, so the decision cache never short-circuits the comparison —
    both tiers do the full fingerprint and sweep for every item.
    """
    import random

    sentences = _sentences(corpus)
    workloads: List[List[WorkItem]] = []
    for cid in range(N_CLIENTS):
        rng = random.Random(f"{seed}:client:{cid}")
        items: List[WorkItem] = []
        for i in range(requests_per_client):
            sentence = sentences[rng.randrange(len(sentences))]
            if rng.random() < 0.5:
                text = sentence  # verbatim edit: library n-grams match
            else:
                words = sentence.split()
                rng.shuffle(words)  # same vocabulary, fresh fingerprint
                text = " ".join(words)
            items.append((f"{DOCS}|c{cid}-d{i}", text))
        workloads.append(items)
    return workloads


def _chunks(items: Sequence[WorkItem], size: int):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def check_equivalence(
    corpus: EbookCorpus,
    workloads: Sequence[Sequence[WorkItem]],
    *,
    n_shards: int = N_SHARDS,
    router=None,
    sample: int = 40,
) -> int:
    """Assert batched-sharded decisions == single-engine decisions.

    Takes a fresh server pair (so the timing runs later start with cold
    caches) and compares a deterministic sample of the workload item by
    item. Returns the number of decisions compared. Raises
    ``AssertionError`` on the first diverging decision — a throughput
    number must never be reported for a diverging tier.
    """
    single = build_server(corpus)
    sharded = build_server(corpus, n_shards=n_shards, router=router)
    flat = [item for workload in workloads for item in workload]
    sampled = flat[:: max(1, len(flat) // sample)][:sample]
    batched = sharded.lookup.lookup_batch(
        DOCS, [(doc_id, [(f"{doc_id}#p0", text)]) for doc_id, text in sampled]
    )
    for (doc_id, text), got in zip(sampled, batched):
        want = single.lookup.lookup(DOCS, doc_id, [(f"{doc_id}#p0", text)])
        assert got == want, (
            f"sharded/batched decision diverges from single-engine "
            f"reference for {doc_id}: {got} != {want}"
        )
    return len(sampled)


def _run_threads(worker, n_clients: int) -> float:
    """Start one thread per client, return wall seconds across the fleet."""
    errors: List[Tuple[int, Exception]] = []
    barrier = threading.Barrier(n_clients + 1)

    def wrapped(cid: int) -> None:
        try:
            barrier.wait(timeout=60)
            worker(cid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((cid, exc))
            barrier.abort()

    threads = [
        threading.Thread(target=wrapped, args=(cid,)) for cid in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)  # release the fleet; timing starts now
    start = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    seconds = time.perf_counter() - start
    assert not errors, errors
    assert not any(t.is_alive() for t in threads), "client wedged"
    return seconds


def drive_single(
    server: LookupServer, workloads: Sequence[Sequence[WorkItem]]
) -> Tuple[List[float], float]:
    """One request per item; returns (per-item latencies ms, wall seconds)."""
    latencies: List[List[float]] = [[] for _ in workloads]

    def worker(cid: int) -> None:
        client = LookupClient(server)
        for doc_id, text in workloads[cid]:
            start = time.perf_counter()
            outcome = client.lookup(DOCS, doc_id, [(f"{doc_id}#p0", text)])
            latencies[cid].append((time.perf_counter() - start) * 1000.0)
            assert not outcome.degraded

    seconds = _run_threads(worker, len(workloads))
    return [ms for per_client in latencies for ms in per_client], seconds


def drive_batched(
    server: LookupServer,
    workloads: Sequence[Sequence[WorkItem]],
    *,
    batch_size: int = BATCH_SIZE,
) -> Tuple[List[float], float]:
    """batch_size items per round trip; per-item latency is amortised."""
    latencies: List[List[float]] = [[] for _ in workloads]

    def worker(cid: int) -> None:
        client = BatchLookupClient(server)
        for chunk in _chunks(workloads[cid], batch_size):
            items = [(doc_id, [(f"{doc_id}#p0", text)]) for doc_id, text in chunk]
            start = time.perf_counter()
            outcomes = client.lookup_batch(DOCS, items)
            per_item_ms = (time.perf_counter() - start) * 1000.0 / len(chunk)
            latencies[cid].extend([per_item_ms] * len(chunk))
            assert all(not outcome.degraded for outcome in outcomes)

    seconds = _run_threads(worker, len(workloads))
    return [ms for per_client in latencies for ms in per_client], seconds


def serial_single(
    server: LookupServer, items: Sequence[WorkItem]
) -> Tuple[List[float], float]:
    """Uncontended per-check latency through a ``LookupClient``."""
    client = LookupClient(server)
    latencies: List[float] = []
    begin = time.perf_counter()
    for doc_id, text in items:
        start = time.perf_counter()
        outcome = client.lookup(DOCS, doc_id, [(f"{doc_id}#p0", text)])
        latencies.append((time.perf_counter() - start) * 1000.0)
        assert not outcome.degraded
    return latencies, time.perf_counter() - begin


def serial_batched(
    server: LookupServer,
    items: Sequence[WorkItem],
    *,
    batch_size: int = BATCH_SIZE,
) -> Tuple[List[float], float]:
    """Uncontended amortised per-check latency via batched round trips."""
    client = BatchLookupClient(server)
    latencies: List[float] = []
    begin = time.perf_counter()
    for chunk in _chunks(items, batch_size):
        batch = [(doc_id, [(f"{doc_id}#p0", text)]) for doc_id, text in chunk]
        start = time.perf_counter()
        outcomes = client.lookup_batch(DOCS, batch)
        per_item_ms = (time.perf_counter() - start) * 1000.0 / len(chunk)
        latencies.extend([per_item_ms] * len(chunk))
        assert all(not outcome.degraded for outcome in outcomes)
    return latencies, time.perf_counter() - begin


def _summarise(latencies_ms: List[float], seconds: float) -> Dict[str, float]:
    return {
        "requests": len(latencies_ms),
        "seconds": seconds,
        "throughput_rps": len(latencies_ms) / seconds if seconds > 0 else 0.0,
        "p50_ms": percentile(latencies_ms, 50),
        "p95_ms": percentile(latencies_ms, 95),
        "p99_ms": percentile(latencies_ms, 99),
    }


def _best_round(build, drive, rounds: int, *, by: str = "throughput_rps"):
    """Drive *rounds* fresh servers, return (summary, server) of the best.

    Each round gets a cold server (empty decision cache — items reuse
    doc_ids across rounds, so a warm server would answer from cache)
    and runs with the garbage collector paused, so neither tier is
    charged for collector pauses or for the other round's leftovers.
    Best round = highest throughput (or lowest p95 for latency runs);
    both tiers get the identical treatment.
    """
    best = None
    for _ in range(max(1, rounds)):
        server = build()
        gc.collect()
        gc.disable()
        try:
            latencies_ms, seconds = drive(server)
        finally:
            gc.enable()
        summary = _summarise(latencies_ms, seconds)
        better = (
            summary[by] > best[0][by]
            if by == "throughput_rps"
            else summary[by] < best[0][by]
        ) if best is not None else True
        if better:
            best = (summary, server)
    return best


def measure(
    smoke: bool,
    seed: int,
    *,
    requests_per_client: Optional[int] = None,
    n_shards: int = N_SHARDS,
    batch_size: int = BATCH_SIZE,
    router=None,
    rounds: int = ROUNDS,
) -> dict:
    """The full comparison document (the BENCH_shard.json payload)."""
    if requests_per_client is None:
        requests_per_client = 64 if smoke else 200
    corpus = build_corpus(smoke, seed)
    workloads = build_workloads(corpus, seed, requests_per_client)
    compared = check_equivalence(
        corpus, workloads, n_shards=n_shards, router=router
    )

    single, single_server = _best_round(
        lambda: build_server(corpus),
        lambda server: drive_single(server, workloads),
        rounds,
    )
    sharded_batched, sharded_server = _best_round(
        lambda: build_server(corpus, n_shards=n_shards, router=router),
        lambda server: drive_batched(server, workloads, batch_size=batch_size),
        rounds,
    )

    # Uncontended service latency (the "p95 no worse" gate): one client,
    # same items, fresh servers so the decision cache stays cold.
    flat = [item for workload in workloads for item in workload]
    latency_single, _ = _best_round(
        lambda: build_server(corpus),
        lambda server: serial_single(server, flat),
        rounds,
        by="p95_ms",
    )
    latency_batched, _ = _best_round(
        lambda: build_server(corpus, n_shards=n_shards, router=router),
        lambda server: serial_batched(server, flat, batch_size=batch_size),
        rounds,
        by="p95_ms",
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "sharded_lookup",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "config": {
            "n_clients": N_CLIENTS,
            "n_shards": n_shards,
            "batch_size": batch_size,
            "rounds": rounds,
            "ngram_size": PAPER_CONFIG.ngram_size,
            "window_size": PAPER_CONFIG.window_size,
            "hash_bits": PAPER_CONFIG.hash_bits,
        },
        "workload": {
            "requests_per_client": requests_per_client,
            "total_requests": N_CLIENTS * requests_per_client,
            "corpus_bytes": corpus.total_bytes(),
            "corpus_paragraphs": corpus.total_paragraphs(),
        },
        "equivalence_checked": compared,
        "single": single,
        "sharded_batched": sharded_batched,
        "service_latency": {
            "single": latency_single,
            "sharded_batched": latency_batched,
        },
        "speedup": {
            "throughput": (
                sharded_batched["throughput_rps"] / single["throughput_rps"]
                if single["throughput_rps"] > 0
                else 0.0
            ),
            "p95": (
                latency_single["p95_ms"] / latency_batched["p95_ms"]
                if latency_batched["p95_ms"] > 0
                else 0.0
            ),
        },
        "server_stats": {
            "single": {
                k: v
                for k, v in single_server.stats().items()
                if isinstance(v, int)
            },
            "sharded_batched": {
                k: v
                for k, v in sharded_server.stats().items()
                if isinstance(v, int)
            },
        },
    }
