"""One-shot evaluation runner: regenerate every exhibit in one call.

Produces a single text report covering Table 1 and Figures 8–13 at a
configurable scale — the programmatic equivalent of running the whole
benchmark harness, handy for the CLI (``python -m repro experiment
all``) and for quickly sanity-checking changes to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datasets import EbookCorpus, ManualsCorpus, WikipediaCorpus
from repro.eval.charts import series_plot
from repro.eval.experiments import (
    figure8_length_change_cdf,
    figure9_paragraph_disclosure,
    figure10_manuals_disclosure,
    figure11_threshold_sweep,
    figure12_response_times,
    figure13_scalability,
    table1_dataset_stats,
)
from repro.eval.reporting import format_cdf_summary, format_series, format_table
from repro.fingerprint import FingerprintConfig
from repro.fingerprint.config import PAPER_CONFIG
from repro.util.stats import percentile


@dataclass
class EvaluationScale:
    """Corpus sizing for one evaluation run."""

    wikipedia_revisions: int = 40
    wikipedia_extra_articles: int = 0
    ebooks: int = 10
    paragraphs_per_book: int = 60
    fig13_books: int = 20
    fig13_paragraphs_per_book: int = 80
    seed: int = 2016


class EvaluationRunner:
    """Generates corpora once and runs every experiment over them."""

    def __init__(
        self,
        scale: EvaluationScale | None = None,
        config: FingerprintConfig = PAPER_CONFIG,
    ) -> None:
        self.scale = scale or EvaluationScale()
        self.config = config
        self.sections: List[str] = []

    # -- corpora -----------------------------------------------------------

    def _corpora(self):
        s = self.scale
        wikipedia = WikipediaCorpus.generate(
            n_extra_articles=s.wikipedia_extra_articles,
            n_revisions=s.wikipedia_revisions,
            seed=s.seed,
        )
        manuals = ManualsCorpus.generate(seed=s.seed)
        ebooks = EbookCorpus.generate(
            n_books=s.ebooks, paragraphs_per_book=s.paragraphs_per_book,
            seed=s.seed,
        )
        return wikipedia, manuals, ebooks

    # -- run ----------------------------------------------------------------

    def run(self) -> str:
        """Run everything; returns the combined report text."""
        wikipedia, manuals, ebooks = self._corpora()
        self.sections = []

        rows = table1_dataset_stats(wikipedia, manuals, ebooks)
        self.sections.append(format_table(
            ["Dataset", "Name", "Docs", "Versions", "Paragraphs", "KB"],
            [[r["dataset"], r["name"], r["documents"], r["versions"],
              r["paragraphs"], r["size_kb"]] for r in rows],
            title="Table 1",
        ))

        cdf = figure8_length_change_cdf(wikipedia)
        self.sections.append(format_series(
            {"length change": cdf}, title="Figure 8 (CDF of length change)",
            x_label="%", y_label="fraction",
        ))

        fig9 = figure9_paragraph_disclosure(
            wikipedia, config=self.config,
            revision_step=max(1, self.scale.wikipedia_revisions // 8),
        )
        series = {t: [(float(i), p) for i, p in s] for t, s in fig9.items()}
        self.sections.append(
            format_series(series, title="Figure 9 (paragraph disclosure)",
                          x_label="revision", y_label="%")
            + "\n" + series_plot(series, width=60, height=10, y_label="%")
        )

        fig10 = figure10_manuals_disclosure(manuals, config=self.config)
        rows = []
        for chapter_id, points in fig10.items():
            for p in points:
                rows.append([chapter_id, p.version, p.ground_truth_pct,
                             p.browserflow_pct])
        self.sections.append(format_table(
            ["Chapter", "Version", "Truth %", "BrowserFlow %"], rows,
            title="Figure 10 (manuals vs ground truth)",
        ))

        fig11 = figure11_threshold_sweep(manuals, config=self.config)
        self.sections.append(format_series(
            {"ratio": fig11}, title="Figure 11 (threshold sweep)",
            x_label="Tpar", y_label="detected/truth",
        ))

        fig12 = figure12_response_times(ebooks, config=self.config)
        lines = ["Figure 12 (response times)"]
        for workflow, times in fig12.items():
            ms = [t * 1000 for t in times]
            lines.append(format_cdf_summary(workflow, ms, (1.0, 5.0, 30.0, 200.0)))
            lines.append(f"  median={percentile(ms, 50):.3f} ms "
                         f"p95={percentile(ms, 95):.3f} ms")
        self.sections.append("\n".join(lines))

        fig13_corpus = EbookCorpus.generate(
            n_books=self.scale.fig13_books,
            paragraphs_per_book=self.scale.fig13_paragraphs_per_book,
            seed=self.scale.seed + 1,
        )
        fig13 = figure13_scalability(
            fig13_corpus, config=self.config, steps=4, samples_per_step=10
        )
        self.sections.append(format_series(
            {"p95 ms": [(float(n), ms) for n, ms in fig13]},
            title="Figure 13 (scalability)",
            x_label="hashes", y_label="p95 ms",
        ))

        return self.report()

    def report(self) -> str:
        rule = "=" * 70
        return ("\n" + rule + "\n").join(self.sections)
