"""Keystroke-level workload simulation for the §6.2 experiments.

Figure 12 measures "the time between the request and the disclosure
decision" as a user edits a Google Docs document with BrowserFlow
loaded. We reproduce the workload at the decision layer: every
keystroke produces a new paragraph state, and the policy lookup runs on
each state exactly as the plug-in's mutation-observer/XHR path would.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Sequence

from repro.plugin.lookup import PolicyLookup


def keystroke_states(text: str, *, start: str = "") -> Iterator[str]:
    """Paragraph states produced by typing *text* after *start*."""
    current = start
    for ch in text:
        current += ch
        yield current


def edit_toward(modified: str, original: str) -> Iterator[str]:
    """States produced by word-by-word editing *modified* into *original*.

    Workflow W3: the user fixes up a previously modified page until it
    matches the original. Each step replaces the leftmost differing
    word, yielding the intermediate paragraph state.
    """
    target_words = original.split()
    words = modified.split()
    # Align lengths first: truncate or extend, one step per word.
    while len(words) > len(target_words):
        words.pop()
        yield " ".join(words)
    for i in range(len(words), len(target_words)):
        words.append(target_words[i])
        yield " ".join(words)
    for i, target in enumerate(target_words):
        if words[i] != target:
            words[i] = target
            yield " ".join(words)


def decision_times(
    lookup: PolicyLookup,
    service_id: str,
    doc_id: str,
    segment_id: str,
    states: Sequence[str],
) -> List[float]:
    """Run the policy lookup on every state; return seconds per decision."""
    times: List[float] = []
    for state in states:
        started = time.perf_counter()
        lookup.lookup(service_id, doc_id, [(segment_id, state)])
        times.append(time.perf_counter() - started)
    return times


def typing_decision_times(
    lookup: PolicyLookup,
    service_id: str,
    doc_id: str,
    segment_id: str,
    text: str,
    *,
    start: str = "",
) -> List[float]:
    """Decision latency per keystroke while typing *text*."""
    return decision_times(
        lookup, service_id, doc_id, segment_id, list(keystroke_states(text, start=start))
    )
