"""Evaluation harness reproducing the paper's tables and figures (§6).

Each ``figureNN``/``tableN`` function in :mod:`repro.eval.experiments`
regenerates the data behind one exhibit of the paper's evaluation;
:mod:`repro.eval.reporting` renders the same rows/series the paper
reports, and :mod:`repro.eval.timing` provides the keystroke-level
workload simulation used by the §6.2 performance experiments.
"""

from repro.eval.experiments import (
    figure8_length_change_cdf,
    figure9_paragraph_disclosure,
    figure10_manuals_disclosure,
    figure11_threshold_sweep,
    figure12_response_times,
    figure13_scalability,
    table1_dataset_stats,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.timing import edit_toward, typing_decision_times

__all__ = [
    "figure8_length_change_cdf",
    "figure9_paragraph_disclosure",
    "figure10_manuals_disclosure",
    "figure11_threshold_sweep",
    "figure12_response_times",
    "figure13_scalability",
    "table1_dataset_stats",
    "format_series",
    "format_table",
    "edit_toward",
    "typing_decision_times",
]
