"""Durability cost: WAL journaling overhead and recovery time (§14).

One module owns the measurement so the trajectory tool
(``tools/bench_to_json.py``) and CI's durability job cannot drift
apart: both call :func:`measure`, and both go through
:func:`check_equivalence` first, so an overhead figure is never
produced for a durable engine whose recovered state disagrees with the
plain engine it claims to mirror.

Two questions, matching how the layer is deployed:

* **Steady-state journaling overhead** — the same mixed
  observe-and-scan workload is driven through a plain
  :class:`~repro.disclosure.engine.DisclosureEngine` and through a
  :class:`~repro.disclosure.wal.DurableEngine` under the default
  ``fsync="batch"`` policy. The gate statistic is the wall-clock ratio
  ``durable / plain``; the write-ahead records ride the mutation path,
  so the ratio bounds what durability costs every observe. CI gates it
  at < 1.15 (under 15% overhead).
* **Recovery time** — after the workload, constructing a fresh
  :class:`DurableEngine` on the same directory *is* crash recovery
  (scan + truncate + snapshot load + tail replay). Reported as seconds
  and records/second, once against the full log and once after a
  compaction folded the log into a snapshot — the two ends of the
  recovery-time spectrum the compaction policy trades between.

Timing protocol mirrors the other benches: several independent rounds
per path (fresh directory, cold caches, garbage collector paused
during the timed section), best round reported — with the two paths'
rounds interleaved so host-noise drift cannot masquerade as (or hide)
journaling overhead. Standard library only.
"""

from __future__ import annotations

import gc
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.datasets import EbookCorpus
from repro.disclosure.engine import DisclosureEngine
from repro.disclosure.wal import (
    DEFAULT_FSYNC_INTERVAL,
    DurableEngine,
    read_wal_directory,
)
from repro.fingerprint.config import PAPER_CONFIG
from repro.util.clock import LogicalClock

#: Schema version of BENCH_wal.json; bump on shape changes.
SCHEMA_VERSION = 1

#: Timed rounds per path; the best round (lowest seconds) is reported.
#: Plain and durable rounds are interleaved (see :func:`measure`).
ROUNDS = 5

#: Disclosure queries per observe. The plugin's steady state is
#: check-dominated — every page load and keystroke is a scan, while
#: observes happen only when confidential text is uploaded — and scans
#: never touch the WAL, so the mix decides how much journaling shows
#: up in the aggregate. 3:1 is conservative; real deployments are far
#: more scan-heavy (§6).
SCANS_PER_OBSERVE = 3

#: One workload op: ("observe", id, text, threshold) or ("scan", text).
Op = Tuple


def build_corpus(smoke: bool, seed: int) -> EbookCorpus:
    # Smoke stays big enough that the timed sections are tens of
    # milliseconds: much smaller and the overhead ratio is dominated by
    # per-round fixed costs and scheduler noise rather than journaling.
    if smoke:
        return EbookCorpus.generate(n_books=4, paragraphs_per_book=24, seed=seed)
    return EbookCorpus.generate(n_books=6, paragraphs_per_book=40, seed=seed)


def build_workload(corpus: EbookCorpus) -> List[Op]:
    """A deterministic mixed mutation/query script from the corpus."""
    ops: List[Op] = []
    pool = [p for book in corpus for p in book.paragraphs]
    for book in corpus:
        for i, text in enumerate(book.paragraphs):
            ops.append(("observe", f"{book.book_id}#p{i}", text, 0.5))
            for j in range(SCANS_PER_OBSERVE):
                probe = pool[(i * SCANS_PER_OBSERVE + j) % len(pool)]
                ops.append(("scan", probe))
    return ops


def drive(engine, ops: List[Op]) -> int:
    """Run the workload against either engine flavour; returns #scans."""
    scans = 0
    for op in ops:
        if op[0] == "observe":
            _kind, segment_id, text, threshold = op
            engine.observe(segment_id, text, threshold=threshold)
        else:
            fingerprint = engine.fingerprint(op[1])
            engine.disclosing_sources(fingerprint=fingerprint)
            scans += 1
    return scans


def _plain_engine() -> DisclosureEngine:
    return DisclosureEngine(PAPER_CONFIG, LogicalClock())


def _durable_engine(directory, **kwargs) -> DurableEngine:
    return DurableEngine(directory, config=PAPER_CONFIG, **kwargs)


def check_equivalence(ops: List[Op], directory) -> int:
    """Durable, plain, and *recovered* engines must agree everywhere.

    Runs the workload through a plain engine and a durable engine, then
    recovers the durable directory, and asserts all three report the
    same segments, the same hash-ownership, and the same verdicts on
    every confidential paragraph. Returns the number of verdicts
    compared. Raises ``AssertionError`` on the first divergence; an
    overhead figure must never be reported for a diverging WAL path.
    """
    plain = _plain_engine()
    drive(plain, ops)
    durable = _durable_engine(directory)
    drive(durable, ops)
    durable.close()
    recovered = _durable_engine(directory)

    compared = 0
    try:
        for engine in (durable.engine, recovered.engine):
            assert sorted(engine.segment_db.ids()) == sorted(
                plain.segment_db.ids()
            ), "segment sets diverge"
            for segment_id in plain.segment_db.ids():
                ours = engine.segment_db.get(segment_id)
                theirs = plain.segment_db.get(segment_id)
                assert ours.fingerprint.hashes == theirs.fingerprint.hashes
                assert ours.last_updated == theirs.last_updated
                assert engine.hash_db.owned_hashes(segment_id) == (
                    plain.hash_db.owned_hashes(segment_id)
                )
        probes = [op for op in ops if op[0] == "observe"]
        for _kind, segment_id, text, _threshold in probes:
            want = plain.disclosing_sources(
                fingerprint=plain.fingerprint(text)
            )
            got = recovered.disclosing_sources(
                fingerprint=recovered.fingerprint(text)
            )
            assert [(s.segment_id, s.score) for s in got.sources] == [
                (s.segment_id, s.score) for s in want.sources
            ], f"recovered verdict diverges for {segment_id!r}"
            compared += 1
    finally:
        recovered.close()
    return compared


def _best_seconds(build: Callable[[], object], run: Callable[[object], None],
                  teardown: Callable[[object], None], rounds: int) -> float:
    best: Optional[float] = None
    for _ in range(max(1, rounds)):
        subject = build()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run(subject)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
            teardown(subject)
        if best is None or elapsed < best:
            best = elapsed
    return best or 0.0


def measure(smoke: bool, seed: int, *, rounds: int = ROUNDS) -> dict:
    """The full durability-cost measurement (the BENCH_wal.json payload)."""
    corpus = build_corpus(smoke, seed)
    ops = build_workload(corpus)
    observes = sum(1 for op in ops if op[0] == "observe")
    scans = len(ops) - observes
    chars = sum(len(op[2]) for op in ops if op[0] == "observe")

    root = Path(tempfile.mkdtemp(prefix="wal_bench."))
    try:
        compared = check_equivalence(ops, root / "equiv")

        # The two paths are timed in *interleaved* rounds (plain,
        # durable, plain, durable, ...): host noise drifts on the scale
        # of a whole phase, so timing all plain rounds and then all
        # durable rounds lets a frequency shift masquerade as (or hide)
        # journaling overhead. Interleaving hits both paths with the
        # same weather; best round per path is reported.
        durable_dirs: List[Path] = []
        plain_s = float("inf")
        durable_s = float("inf")
        for _ in range(max(1, rounds)):
            plain_s = min(
                plain_s,
                _best_seconds(
                    _plain_engine, lambda e: drive(e, ops),
                    lambda e: None, 1,
                ),
            )

            def build_durable():
                directory = root / f"durable{len(durable_dirs)}"
                durable_dirs.append(directory)
                return _durable_engine(directory)

            durable_s = min(
                durable_s,
                _best_seconds(
                    build_durable, lambda e: drive(e, ops),
                    lambda e: e.close(), 1,
                ),
            )

        # Recovery: replay the full log of one of the timed directories.
        log_dir = durable_dirs[0]
        records, _torn = read_wal_directory(log_dir)
        recovery_s = _best_seconds(
            lambda: None,
            lambda _s: _durable_engine(log_dir).close(),
            lambda _s: None,
            rounds,
        )

        # ...and again after compaction folds the log into a snapshot.
        compactor = _durable_engine(log_dir)
        compactor.compact()
        compactor.close()
        compacted_recovery_s = _best_seconds(
            lambda: None,
            lambda _s: _durable_engine(log_dir).close(),
            lambda _s: None,
            rounds,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    overhead = durable_s / plain_s if plain_s > 0 else 0.0
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "wal",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "config": {
            "fsync": "batch",
            "fsync_interval": DEFAULT_FSYNC_INTERVAL,
            "rounds": rounds,
            "ngram_size": PAPER_CONFIG.ngram_size,
            "window_size": PAPER_CONFIG.window_size,
            "hash_bits": PAPER_CONFIG.hash_bits,
        },
        "workload": {
            "observes": observes,
            "scans": scans,
            "chars": chars,
        },
        "equivalence_checked": compared,
        "paths": {
            "plain": {
                "ops": len(ops),
                "seconds": plain_s,
                "ops_per_s": len(ops) / plain_s if plain_s > 0 else 0.0,
            },
            "durable": {
                "ops": len(ops),
                "seconds": durable_s,
                "ops_per_s": len(ops) / durable_s if durable_s > 0 else 0.0,
            },
        },
        "overhead": {"ratio": overhead},
        "recovery": {
            "records": len(records),
            "seconds": recovery_s,
            "records_per_s": (
                len(records) / recovery_s if recovery_s > 0 else 0.0
            ),
            "post_compaction_seconds": compacted_recovery_s,
        },
    }
