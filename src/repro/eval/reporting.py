"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width table. Floats print with two decimals."""
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 12,
) -> str:
    """Render named (x, y) series, downsampled to *max_points* each."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}] ({x_label} -> {y_label})")
        shown = _downsample(list(points), max_points)
        lines.append(
            "  " + "  ".join(f"{x:g}:{y:.2f}" for x, y in shown)
        )
    return "\n".join(lines)


def _downsample(
    points: List[Tuple[float, float]], max_points: int
) -> List[Tuple[float, float]]:
    if len(points) <= max_points:
        return points
    step = (len(points) - 1) / (max_points - 1)
    indices = sorted({round(i * step) for i in range(max_points)})
    return [points[i] for i in indices]


def format_counters(
    counters: Mapping[str, object], *, title: str = ""
) -> str:
    """Render a flat counter mapping as aligned ``name = value`` lines.

    Used by the benchmark harness to print the engine's index/query
    counters (candidates swept, cache hits, ownership invalidations)
    next to the latency numbers. Floats print with two decimals.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not counters:
        return "\n".join(lines + ["  (no counters)"])
    width = max(len(name) for name in counters)
    for name, value in counters.items():
        lines.append(f"  {name.ljust(width)} = {_cell(value)}")
    return "\n".join(lines)


def format_histograms(
    snapshot: Mapping[str, object], *, title: str = ""
) -> str:
    """Render the histogram entries of a registry snapshot.

    Accepts a :meth:`MetricsRegistry.snapshot` mapping (or a
    ``diff_snapshots`` delta) and prints one block per histogram —
    observation count, mean in milliseconds, and the non-empty latency
    buckets — giving benchmarks a per-stage latency breakdown
    (``engine.*.algorithm1_seconds``, ``plugin.decision_seconds``, …)
    next to the end-to-end numbers. Non-histogram entries are skipped.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    histograms = {
        name: value for name, value in snapshot.items() if isinstance(value, Mapping)
    }
    if not histograms:
        return "\n".join(lines + ["  (no histograms)"])
    for name, hist in histograms.items():
        count = hist.get("count", 0)
        total = hist.get("sum", 0.0)
        mean_ms = 1000.0 * total / count if count else 0.0
        lines.append(f"  [{name}] n={count} mean={mean_ms:.3f} ms")
        buckets = hist.get("buckets", {})
        occupied = [(bucket, n) for bucket, n in buckets.items() if n]
        if occupied:
            lines.append(
                "    " + "  ".join(f"{bucket}:{n}" for bucket, n in occupied)
            )
    return "\n".join(lines)


def format_snapshot(
    snapshot: Mapping[str, object], *, title: str = ""
) -> str:
    """Render a full registry snapshot (or snapshot delta).

    Scalar instruments (counters, gauges) print as aligned
    ``name = value`` lines; histograms follow as per-stage latency
    breakdowns via :func:`format_histograms`.
    """
    scalars = {
        name: value
        for name, value in snapshot.items()
        if not isinstance(value, Mapping)
    }
    has_histograms = any(isinstance(v, Mapping) for v in snapshot.values())
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(format_counters(scalars))
    if has_histograms:
        parts.append(format_histograms(snapshot))
    return "\n".join(parts)


def format_cdf_summary(
    name: str, values_ms: Sequence[float], thresholds_ms: Sequence[float]
) -> str:
    """One line per latency threshold: fraction of samples at or below."""
    lines = [f"[{name}] n={len(values_ms)}"]
    for threshold in thresholds_ms:
        frac = (
            sum(1 for v in values_ms if v <= threshold) / len(values_ms)
            if values_ms
            else 0.0
        )
        lines.append(f"  <= {threshold:g} ms: {100.0 * frac:.1f}%")
    return "\n".join(lines)
