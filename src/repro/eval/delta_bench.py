"""Per-edit check latency: delta pipeline vs full recheck (§13).

One module owns the comparison so the pytest benchmark
(``benchmarks/bench_delta_check.py``) and the trajectory tool
(``tools/bench_to_json.py``) cannot drift apart: both call
:func:`measure`, and both go through :func:`check_equivalence` first,
so a speedup figure is never produced for a delta path that disagrees
with the reference path on any fingerprint or any verdict.

The question is the paper's §6.2 hot path under ISSUE 9's lens: a
user is typing into a large Docs paragraph and every keystroke needs a
policy verdict. The *full-recheck* baseline is what the stack did
before the delta pipeline — re-normalise, re-hash, and re-winnow the
whole paragraph, then recompute the verdict. The *delta* path is the
edit-local pipeline: an :class:`~repro.fingerprint.incremental.EditBuffer`
splices only the ``k+w-1`` dirty radius of the fingerprint and hands it
to the lookup tier, whose epoch-keyed verdict cache answers without an
engine sweep whenever the winnowed hash set and every relevant epoch
are unchanged (the common case for a trailing keystroke).

Both paths answer the *identical* edit scripts against models holding
the identical confidential corpus; the model is static during the timed
runs (the open-loop fleet bench is where delta checks meet concurrent
churn). Equivalence is asserted at one and at four shards:

* every per-edit fingerprint from the delta path is field-identical
  (values, offsets, spans) to the reference pipeline's, and
* every per-edit decision from the delta path equals the full-recheck
  decision.

Timing protocol mirrors ``shard_bench``: each path is driven for
several independent rounds (fresh server, cold caches, garbage
collector paused during the timed section) and the best round per path
is reported. The gate statistic is the **per-edit median speedup**
(full median / delta median); CI smoke gates it at >= 2x, the committed
full run clears >= 3x.

Everything here is standard library, so ``tools/bench_to_json.py``
stays dependency-free.
"""

from __future__ import annotations

import gc
import platform
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import EbookCorpus
from repro.fingerprint.config import PAPER_CONFIG
from repro.fingerprint.incremental import EditBuffer
from repro.plugin.lookup import PolicyLookup
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.stats import percentile

#: Schema version of BENCH_delta.json; bump on shape changes.
SCHEMA_VERSION = 1

#: The sharded deployment compared against the classic single engine.
N_SHARDS = 4

#: Timed rounds per path; the best round (lowest median) is reported.
ROUNDS = 3

LIBRARY = "https://library.example.com"
DOCS = "https://docs.example.com"

#: One edit script: a paragraph id and its successive text states.
EditScript = Tuple[str, List[str]]


def build_corpus(smoke: bool, seed: int) -> EbookCorpus:
    if smoke:
        return EbookCorpus.generate(n_books=3, paragraphs_per_book=20, seed=seed)
    return EbookCorpus.generate(n_books=8, paragraphs_per_book=40, seed=seed)


def build_model(
    corpus: EbookCorpus, *, n_shards: Optional[int] = None, router=None
) -> TextDisclosureModel:
    """A disclosure model holding *corpus* as confidential sources."""
    policies = PolicyStore()
    policies.register_service(
        LIBRARY, privilege=Label.of("lib"), confidentiality=Label.of("lib")
    )
    policies.register_service(DOCS)
    model = TextDisclosureModel(
        policies, PAPER_CONFIG, n_shards=n_shards, router=router
    )
    for book in corpus:
        doc_id = f"{LIBRARY}|{book.book_id}"
        model.observe(
            LIBRARY,
            doc_id,
            [(f"{doc_id}#p{i}", text) for i, text in enumerate(book.paragraphs)],
        )
    return model


def build_edit_scripts(
    corpus: EbookCorpus,
    seed: int,
    *,
    paragraphs: int,
    edits: int,
    base_parts: int = 3,
) -> List[EditScript]:
    """Deterministic keystroke-churn scripts over large paragraphs.

    Each script starts from a multi-paragraph public base text (so the
    full-recheck baseline pays a realistic large-document fingerprint)
    and applies *edits* successive edits drawn from the churn mix the
    fleet's Docs sessions exhibit:

    * trailing keystrokes (the dominant op — one appended character),
    * word-level substitutions mid-text (the W3 fix-up workflow),
    * sentence pastes at the end,
    * occasionally a pasted fragment of a *confidential* library
      paragraph, so some states cross the disclosure threshold and the
      verdict mix contains blocks as well as allows.

    Returns the full state list per paragraph; both paths replay the
    identical states.
    """
    rng = random.Random(f"delta:{seed}:scripts")
    pool = [p for book in corpus for p in book.paragraphs]
    scripts: List[EditScript] = []
    for k in range(paragraphs):
        parts = [pool[rng.randrange(len(pool))] for _ in range(base_parts)]
        # The base is public text: shuffle each source paragraph's words
        # so it shares vocabulary but not winnowed n-grams with the
        # confidential corpus.
        shuffled = []
        for part in parts:
            words = part.split()
            rng.shuffle(words)
            shuffled.append(" ".join(words))
        text = " ".join(shuffled)
        typing_tail = ""
        states: List[str] = [text]
        for _ in range(edits):
            draw = rng.random()
            if draw < 0.70:
                if not typing_tail:
                    source = pool[rng.randrange(len(pool))].split()
                    rng.shuffle(source)
                    typing_tail = " " + " ".join(source[:8])
                text += typing_tail[0]
                typing_tail = typing_tail[1:]
            elif draw < 0.85:
                words = text.split()
                if words:
                    i = rng.randrange(len(words))
                    words[i] = pool[rng.randrange(len(pool))].split()[0]
                    text = " ".join(words)
            elif draw < 0.95:
                sentence = pool[rng.randrange(len(pool))].split(".")[0]
                text += " " + sentence + "."
            else:
                secret = pool[rng.randrange(len(pool))]
                cut = rng.randrange(60, max(61, min(len(secret), 140)))
                text += " " + secret[:cut]
            states.append(text)
        scripts.append((f"{DOCS}|bench-d{k}#p0", states))
    return scripts


def _lookup_for(model: TextDisclosureModel) -> PolicyLookup:
    return PolicyLookup(model)


def run_full(
    lookup: PolicyLookup, scripts: Sequence[EditScript]
) -> Tuple[List[float], List[object]]:
    """Full recheck per edit: fingerprint from scratch, fresh verdict.

    The baseline deliberately defeats the content-addressed fingerprint
    cache and the verdict memo by clearing them per edit — this is the
    pre-§13 cost model, where every keystroke re-ran the whole
    pipeline. Returns (per-edit ms, decisions in replay order).
    """
    latencies: List[float] = []
    decisions: List[object] = []
    for par_id, states in scripts:
        doc_id = par_id.split("#")[0]
        for text in states:
            lookup.fingerprint_cache.clear()
            lookup.cache.clear()
            start = time.perf_counter()
            decision = lookup.lookup(DOCS, doc_id, [(par_id, text)])
            latencies.append((time.perf_counter() - start) * 1000.0)
            decisions.append(decision)
    return latencies, decisions


def run_delta(
    lookup: PolicyLookup, scripts: Sequence[EditScript]
) -> Tuple[List[float], List[object]]:
    """Delta pipeline per edit: EditBuffer splice + epoch-memoized verdict."""
    config = lookup.model.tracker.paragraphs.config
    latencies: List[float] = []
    decisions: List[object] = []
    for par_id, states in scripts:
        doc_id = par_id.split("#")[0]
        buffer = EditBuffer(config)
        for text in states:
            start = time.perf_counter()
            fingerprint = buffer.update(text)
            decision = lookup.lookup(
                DOCS, doc_id, [(par_id, text)], fingerprints=[fingerprint]
            )
            latencies.append((time.perf_counter() - start) * 1000.0)
            decisions.append(decision)
    return latencies, decisions


def check_equivalence(
    corpus: EbookCorpus,
    scripts: Sequence[EditScript],
    *,
    n_shards: Optional[int],
    router=None,
    sample: int = 25,
) -> int:
    """Assert delta fingerprints and verdicts == the reference path's.

    Fresh models (so the timing runs later start cold). Fingerprint
    equivalence is checked on a deterministic sample of states —
    field-identical triples (hash value, original span) — and verdict
    equivalence on **every** state. Returns the number of decisions
    compared. Raises ``AssertionError`` on the first divergence; a
    speedup must never be reported for a diverging delta path.
    """
    full_lookup = _lookup_for(build_model(corpus, n_shards=n_shards, router=router))
    delta_lookup = _lookup_for(build_model(corpus, n_shards=n_shards, router=router))

    reference = full_lookup.model.tracker.paragraphs.fingerprinter
    sampled_states = [
        (par_id, text)
        for par_id, states in scripts
        for text in states
    ]
    step = max(1, len(sampled_states) // sample)
    for par_id, text in sampled_states[::step][:sample]:
        buffer = EditBuffer(delta_lookup.model.tracker.paragraphs.config)
        got = buffer.update(text)
        want = reference.fingerprint(text)
        got_triples = [(s.value, s.orig_start, s.orig_end) for s in got.selections]
        want_triples = [
            (s.value, s.orig_start, s.orig_end) for s in want.selections
        ]
        assert got_triples == want_triples, (
            f"delta fingerprint diverges from reference for {par_id!r}"
        )

    _, full_decisions = run_full(full_lookup, scripts)
    _, delta_decisions = run_delta(delta_lookup, scripts)
    assert len(full_decisions) == len(delta_decisions)
    for i, (want, got) in enumerate(zip(full_decisions, delta_decisions)):
        assert got == want, (
            f"delta decision {i} diverges from full recheck at "
            f"{n_shards or 1} shard(s): {got} != {want}"
        )
    return len(full_decisions)


def _summarise(latencies_ms: List[float], extra: Dict[str, float]) -> dict:
    return {
        "edits": len(latencies_ms),
        "p50_ms": percentile(latencies_ms, 50),
        "p95_ms": percentile(latencies_ms, 95),
        "p99_ms": percentile(latencies_ms, 99),
        **extra,
    }


def _best_round(build_lookup, drive, rounds: int):
    """Best (lowest per-edit median) of *rounds* cold runs of one path."""
    best = None
    for _ in range(max(1, rounds)):
        lookup = build_lookup()
        gc.collect()
        gc.disable()
        try:
            latencies_ms, _decisions = drive(lookup)
        finally:
            gc.enable()
        median = percentile(latencies_ms, 50)
        if best is None or median < best[0]:
            best = (median, latencies_ms, lookup)
    return best[1], best[2]


def measure(
    smoke: bool,
    seed: int,
    *,
    n_shards: int = N_SHARDS,
    router=None,
    rounds: int = ROUNDS,
) -> dict:
    """The full delta-vs-full comparison (the BENCH_delta.json payload)."""
    paragraphs, edits, base_parts = (6, 40, 4) if smoke else (12, 120, 8)
    corpus = build_corpus(smoke, seed)
    scripts = build_edit_scripts(
        corpus, seed, paragraphs=paragraphs, edits=edits, base_parts=base_parts
    )

    compared = 0
    for shards in (None, n_shards):
        compared += check_equivalence(
            corpus, scripts, n_shards=shards, router=router
        )

    paths: Dict[str, dict] = {}
    stats: Dict[str, Dict[str, float]] = {}
    for name, drive in (("full_recheck", run_full), ("delta", run_delta)):
        latencies, lookup = _best_round(
            lambda: _lookup_for(
                build_model(corpus, n_shards=n_shards, router=router)
            ),
            lambda lk, run=drive: run(lk, scripts),
            rounds,
        )
        paths[name] = _summarise(latencies, {})
        stats[name] = {
            k: v
            for k, v in lookup.stats().items()
            if k.startswith(("fingerprint_cache", "epoch_cache", "decision_cache"))
        }

    total_chars = sum(len(s) for _pid, states in scripts for s in states)
    speedup = (
        paths["full_recheck"]["p50_ms"] / paths["delta"]["p50_ms"]
        if paths["delta"]["p50_ms"] > 0
        else 0.0
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "delta_check",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "config": {
            "n_shards": n_shards,
            "rounds": rounds,
            "paragraphs": len(scripts),
            "edits_per_paragraph": edits,
            "ngram_size": PAPER_CONFIG.ngram_size,
            "window_size": PAPER_CONFIG.window_size,
            "hash_bits": PAPER_CONFIG.hash_bits,
        },
        "workload": {
            "edits": sum(len(states) for _pid, states in scripts),
            "checked_chars": total_chars,
            "mean_paragraph_chars": (
                total_chars
                // max(1, sum(len(states) for _pid, states in scripts))
            ),
        },
        "equivalence_checked": compared,
        "paths": paths,
        "cache_stats": stats,
        "speedup": {"per_edit_median": speedup},
    }
