"""Ingest-throughput measurement for the fingerprint pipeline.

One module owns the measurement so the pytest benchmark
(``benchmarks/bench_ingest_fingerprint.py``) and the trajectory tool
(``tools/bench_to_json.py``) cannot drift apart: both call
:func:`measure_corpus` and report the same per-stage MB/s numbers, and
both go through :func:`check_equivalence` so a throughput number is
never produced for a kernel that disagrees with the reference pipeline.

Stages are timed separately (S1 normalise, S2 hash, S3/S4 winnow) and
the end-to-end figure is a second, independently timed pass through
``Fingerprinter.fingerprint`` — summing stage times would hide the
selection-building and dispatch overhead the caller actually pays.

Everything here is standard library (numpy is only touched through the
kernel's own guarded import), so ``tools/bench_to_json.py`` stays
dependency-free.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.fingerprint import Fingerprinter, HAS_NUMPY
from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.kernel import skipscan_winnow
from repro.fingerprint.normalize import normalize
from repro.fingerprint.winnowing import winnow

#: Schema version of BENCH_fingerprint.json; bump on shape changes.
SCHEMA_VERSION = 1

#: Measurement paths, in reporting order.
PATHS = ("reference", "kernel_pure", "kernel_numpy")


def corpus_texts(corpus) -> List[str]:
    """Flatten a dataset object into its list of ingestible texts."""
    texts: List[str] = []
    if hasattr(corpus, "articles"):  # WikipediaCorpus
        for article in corpus.articles:
            texts.extend(rev.text() for rev in article.revisions)
    elif hasattr(corpus, "chapters"):  # ManualsCorpus
        for chapter in corpus.chapters:
            texts.extend(ver.text() for ver in chapter.versions)
    else:
        raise TypeError(f"unknown corpus type {type(corpus).__name__}")
    return texts


def _time(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def available_paths(config: FingerprintConfig) -> List[str]:
    """The measurement paths this interpreter can run for *config*."""
    paths = ["reference", "kernel_pure"]
    if HAS_NUMPY and config.hash_bits <= 32:
        paths.append("kernel_numpy")
    return paths


def measure_path(
    texts: List[str], config: FingerprintConfig, path: str
) -> Dict[str, float]:
    """Per-stage and end-to-end throughput of one path over *texts*.

    Returns ``{normalize_mbps, hash_mbps, winnow_mbps, total_mbps,
    seconds, bytes}``; MB is 1e6 input characters (the corpora are
    Latin-1, so characters == bytes).
    """
    total_bytes = sum(len(t) for t in texts)
    stage_seconds = {"normalize": 0.0, "hash": 0.0, "winnow": 0.0}

    if path == "reference":
        fingerprinter = Fingerprinter(
            FingerprintConfig(
                ngram_size=config.ngram_size,
                window_size=config.window_size,
                hash_bits=config.hash_bits,
                use_kernel=False,
            )
        )
        hasher = fingerprinter._hasher
        for text in texts:
            start = time.perf_counter()
            normalized = normalize(text)
            stage_seconds["normalize"] += time.perf_counter() - start
            if len(normalized.text) < config.ngram_size:
                continue
            start = time.perf_counter()
            values = hasher.hash_all_list(normalized.text)
            stage_seconds["hash"] += time.perf_counter() - start
            start = time.perf_counter()
            winnow(values, config.window_size)
            stage_seconds["winnow"] += time.perf_counter() - start
        end_to_end = _time(
            lambda: [fingerprinter.fingerprint(t) for t in texts]
        )
    elif path in ("kernel_pure", "kernel_numpy"):
        mode = "pure" if path == "kernel_pure" else "numpy"
        fingerprinter = Fingerprinter(config, kernel_mode=mode)
        kernel = fingerprinter.kernel
        assert kernel is not None, "measure_path requires use_kernel"
        hasher = fingerprinter._hasher
        for text in texts:
            data = kernel.encode(text)
            if data is None:
                raise ValueError("ingest corpus contains non-Latin-1 text")
            start = time.perf_counter()
            norm, offsets = kernel.normalize(data)
            stage_seconds["normalize"] += time.perf_counter() - start
            if len(norm) < config.ngram_size:
                continue
            if mode == "numpy":
                start = time.perf_counter()
                values = kernel._hash_numpy(norm)
                stage_seconds["hash"] += time.perf_counter() - start
                start = time.perf_counter()
                from repro.fingerprint.kernel import _winnow_numpy

                _winnow_numpy(values, config.window_size)
                stage_seconds["winnow"] += time.perf_counter() - start
            else:
                start = time.perf_counter()
                values = hasher.hash_all_bytes(norm)
                stage_seconds["hash"] += time.perf_counter() - start
                start = time.perf_counter()
                skipscan_winnow(values, config.window_size)
                stage_seconds["winnow"] += time.perf_counter() - start
        end_to_end = _time(
            lambda: [fingerprinter.fingerprint(t) for t in texts]
        )
    else:
        raise ValueError(f"unknown path {path!r}")

    mb = total_bytes / 1e6
    out: Dict[str, float] = {
        "bytes": total_bytes,
        "seconds": round(end_to_end, 6),
        "total_mbps": round(mb / end_to_end, 3) if end_to_end else 0.0,
    }
    for stage, seconds in stage_seconds.items():
        out[f"{stage}_mbps"] = round(mb / seconds, 3) if seconds else 0.0
    return out


def measure_corpus(
    texts: List[str],
    config: FingerprintConfig,
    paths: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Measure every available path over *texts*; adds speedup ratios."""
    if paths is None:
        paths = available_paths(config)
    results: Dict[str, object] = {
        "bytes": sum(len(t) for t in texts),
        "texts": len(texts),
        "paths": {path: measure_path(texts, config, path) for path in paths},
    }
    reference = results["paths"].get("reference")
    if reference:
        results["speedup"] = {
            path: round(
                results["paths"][path]["total_mbps"]
                / reference["total_mbps"],
                3,
            )
            for path in paths
            if path != "reference" and reference["total_mbps"]
        }
    return results


def check_equivalence(
    texts: List[str], config: FingerprintConfig, sample: int = 0
) -> int:
    """Assert kernel fingerprints equal reference fingerprints.

    Compares hashes *and* selection spans on every text (or an evenly
    spaced *sample* of them); raises AssertionError on the first
    mismatch. Returns the number of texts compared.
    """
    if sample and len(texts) > sample:
        step = len(texts) // sample
        texts = texts[::step][:sample]
    reference = Fingerprinter(
        FingerprintConfig(
            ngram_size=config.ngram_size,
            window_size=config.window_size,
            hash_bits=config.hash_bits,
            use_kernel=False,
        )
    )
    kernels = [Fingerprinter(config, kernel_mode="pure")]
    if HAS_NUMPY and config.hash_bits <= 32:
        kernels.append(Fingerprinter(config, kernel_mode="numpy"))
    for text in texts:
        expected = reference.fingerprint(text)
        for fingerprinter in kernels:
            actual = fingerprinter.fingerprint(text)
            assert actual.hashes == expected.hashes, (
                f"kernel hash mismatch on {text[:60]!r}…"
            )
            assert actual.selections == expected.selections, (
                f"kernel span mismatch on {text[:60]!r}…"
            )
    return len(texts)
