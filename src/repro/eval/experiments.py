"""Per-figure experiment runners (paper §6).

Every function regenerates the data behind one table or figure. The
absolute numbers differ from the paper (synthetic corpora, Python
instead of C++/JS, different hardware) but the *shape* claims are the
reproduction targets; EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.ebooks import EbookCorpus
from repro.datasets.manuals import ManualsCorpus
from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.datasets.wikipedia import WikipediaCorpus
from repro.disclosure import DisclosureEngine
from repro.fingerprint import FingerprintConfig
from repro.fingerprint.config import PAPER_CONFIG
from repro.plugin.lookup import PolicyLookup
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.eval.timing import decision_times, edit_toward, keystroke_states
from repro.util.stats import cdf_points, percentile

#: Service ids used by the performance experiments.
LIBRARY_SERVICE = "https://library.corp"
DOCS_SERVICE = "https://docs.example.com"


# ----------------------------------------------------------------------
# Table 1 — dataset summary
# ----------------------------------------------------------------------

def table1_dataset_stats(
    wikipedia: WikipediaCorpus,
    manuals: ManualsCorpus,
    ebooks: EbookCorpus,
) -> List[Dict[str, object]]:
    """Rows mirroring the paper's Table 1.

    Paragraph and size columns are averages across document versions,
    matching the paper's table note.
    """
    rows: List[Dict[str, object]] = []

    n_revisions = len(wikipedia.articles[0].revisions) if len(wikipedia) else 0
    wiki_paragraphs = [
        len(rev.paragraphs) for a in wikipedia for rev in a.revisions
    ]
    wiki_sizes = [rev.length() for a in wikipedia for rev in a.revisions]
    rows.append(
        {
            "dataset": "Wikipedia",
            "name": "Articles",
            "documents": len(wikipedia),
            "versions": n_revisions,
            "paragraphs": _mean(wiki_paragraphs),
            "size_kb": _mean(wiki_sizes) / 1024.0,
        }
    )

    for chapter in manuals:
        sizes = [len(v.text()) for v in chapter.versions]
        counts = [len(v.paragraphs) for v in chapter.versions]
        rows.append(
            {
                "dataset": "Manuals",
                "name": chapter.name,
                "documents": len(chapter.versions),
                "versions": len(chapter.versions),
                "paragraphs": _mean(counts),
                "size_kb": _mean(sizes) / 1024.0,
            }
        )

    rows.append(
        {
            "dataset": "Ebooks",
            "name": "Books",
            "documents": len(ebooks),
            "versions": 1,
            "paragraphs": ebooks.total_paragraphs() / max(len(ebooks), 1),
            "size_kb": ebooks.total_bytes() / 1024.0,
        }
    )
    return rows


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Figure 8 — CDF of relative article-length change
# ----------------------------------------------------------------------

def figure8_length_change_cdf(
    wikipedia: WikipediaCorpus,
) -> List[Tuple[float, float]]:
    """(relative length change %, cumulative fraction) points.

    The paper plots the distribution of relative content-size difference
    between the oldest and newest revision of each article; stable
    articles cluster at small changes, volatile ones in the long tail.
    """
    changes = [a.relative_length_change() * 100.0 for a in wikipedia]
    return cdf_points(changes)


# ----------------------------------------------------------------------
# Figure 9 — paragraph disclosure across Wikipedia revisions
# ----------------------------------------------------------------------

def figure9_paragraph_disclosure(
    wikipedia: WikipediaCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    threshold: float = 0.5,
    revision_step: int = 1,
    titles: Optional[Sequence[str]] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Per article: (revision distance, % of base paragraphs disclosed).

    For each article the base revision's paragraphs are observed; each
    later revision is fingerprinted as one document and the fraction of
    base paragraphs meeting the paragraph disclosure requirement
    (Dpar >= threshold) is reported — exactly the Figure 9 metric.
    """
    results: Dict[str, List[Tuple[int, float]]] = {}
    for article in wikipedia:
        if titles is not None and article.title not in titles:
            continue
        engine = DisclosureEngine(config)
        base = article.base
        for i, paragraph in enumerate(base.paragraphs):
            engine.observe(f"{article.title}#p{i}", paragraph, threshold=threshold)
        n_base = len(base.paragraphs)
        series: List[Tuple[int, float]] = []
        for revision in article.revisions[1::revision_step]:
            fp = engine.fingerprint(revision.text())
            report = engine.disclosing_sources(fingerprint=fp)
            pct = 100.0 * len(report.sources) / n_base if n_base else 0.0
            series.append((revision.index, pct))
        results[article.title] = series
    return results


def figure9_document_disclosure(
    wikipedia: WikipediaCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    threshold: float = 0.5,
    revision_step: int = 1,
    titles: Optional[Sequence[str]] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Document-granularity companion to Figure 9.

    The paper evaluates the paragraph granularity and notes "the
    results for the document granularity are similar" (§6.1). Here the
    base revision is observed as one document segment and each later
    revision's Ddoc against it is reported (as a percentage).
    """
    results: Dict[str, List[Tuple[int, float]]] = {}
    for article in wikipedia:
        if titles is not None and article.title not in titles:
            continue
        engine = DisclosureEngine(config, kind="document")
        engine.observe(article.title, article.base.text(), threshold=threshold)
        record = engine.segment_db.get(article.title)
        series: List[Tuple[int, float]] = []
        for revision in article.revisions[1::revision_step]:
            fp = engine.fingerprint(revision.text())
            score = record.fingerprint.containment_in(fp)
            series.append((revision.index, 100.0 * score))
        results[article.title] = series
    return results


# ----------------------------------------------------------------------
# Figure 10 — manuals disclosure vs ground truth
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ManualsPoint:
    """One bar pair of Figure 10."""

    chapter_id: str
    version: str
    browserflow_pct: float
    ground_truth_pct: float
    detected: Tuple[int, ...]
    expected: Tuple[int, ...]

    @property
    def false_positives(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.detected) - set(self.expected)))

    @property
    def false_negatives(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.expected) - set(self.detected)))


def figure10_manuals_disclosure(
    manuals: ManualsCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    threshold: float = 0.5,
    skip_empty_fingerprints: bool = True,
) -> Dict[str, List[ManualsPoint]]:
    """Per chapter: BrowserFlow vs ground-truth disclosure per version.

    The base version of each chapter is observed paragraph by
    paragraph; each later version is checked for which base paragraphs
    it discloses. Ground truth comes from the scripted fates (see
    :mod:`repro.datasets.manuals`). Paragraphs whose fingerprints are
    empty are skipped when requested, mirroring §6.1's treatment of the
    systematic short-paragraph errors.
    """
    results: Dict[str, List[ManualsPoint]] = {}
    for chapter in manuals:
        engine = DisclosureEngine(config)
        eligible: List[int] = []
        for i, paragraph in enumerate(chapter.base_paragraphs):
            record = engine.observe(
                f"{chapter.chapter_id}#p{i}", paragraph, threshold=threshold
            )
            if not skip_empty_fingerprints or not record.fingerprint.is_empty():
                eligible.append(i)
        points: List[ManualsPoint] = []
        for version in chapter.versions[1:]:
            fp = engine.fingerprint(version.text())
            report = engine.disclosing_sources(fingerprint=fp)
            detected = tuple(
                sorted(
                    int(s.segment_id.rsplit("#p", 1)[1])
                    for s in report.sources
                    if int(s.segment_id.rsplit("#p", 1)[1]) in eligible
                )
            )
            expected = tuple(
                i for i in version.ground_truth_disclosed() if i in eligible
            )
            denom = len(eligible) or 1
            points.append(
                ManualsPoint(
                    chapter_id=chapter.chapter_id,
                    version=version.version,
                    browserflow_pct=100.0 * len(detected) / denom,
                    ground_truth_pct=100.0 * len(expected) / denom,
                    detected=detected,
                    expected=expected,
                )
            )
        results[chapter.chapter_id] = points
    return results


# ----------------------------------------------------------------------
# Figure 11 — threshold sweep
# ----------------------------------------------------------------------

def figure11_threshold_sweep(
    manuals: ManualsCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    thresholds: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> List[Tuple[float, float]]:
    """(Tpar, detected/ground-truth ratio) over the Manuals dataset.

    A ratio of 1 means agreement with the expert; above 1 indicates
    false positives, below 1 false negatives (paper Figure 11).
    """
    out: List[Tuple[float, float]] = []
    for threshold in thresholds:
        detected_total = 0
        expected_total = 0
        results = figure10_manuals_disclosure(
            manuals, config=config, threshold=threshold
        )
        for points in results.values():
            for point in points:
                detected_total += len(point.detected)
                expected_total += len(point.expected)
        ratio = detected_total / expected_total if expected_total else 0.0
        out.append((threshold, ratio))
    return out


# ----------------------------------------------------------------------
# Figure 12 — response-time distribution for W1/W2/W3
# ----------------------------------------------------------------------

def _library_lookup(
    ebooks: EbookCorpus, config: FingerprintConfig
) -> Tuple[PolicyLookup, TextDisclosureModel]:
    """A model with every e-book observed in a trusted library service."""
    policies = PolicyStore()
    policies.register_service(
        LIBRARY_SERVICE,
        privilege=Label.of("lib"),
        confidentiality=Label.of("lib"),
        display_name="Library",
    )
    policies.register_service(DOCS_SERVICE, display_name="Docs")
    model = TextDisclosureModel(policies, config)
    for book in ebooks:
        doc_id = f"{LIBRARY_SERVICE}|{book.book_id}"
        segments = [
            (f"{doc_id}#p{i}", text) for i, text in enumerate(book.paragraphs)
        ]
        model.observe(LIBRARY_SERVICE, doc_id, segments)
    return PolicyLookup(model), model


def figure12_response_times(
    ebooks: EbookCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    page_paragraphs: int = 3,
    seed: int = 2016,
    stats_out: Optional[Dict[str, object]] = None,
    snapshot_out: Optional[Dict[str, object]] = None,
) -> Dict[str, List[float]]:
    """Per-workflow decision latencies (seconds), paper §6.2:

    * W1 ``creation-with-overlap`` — type a page from an existing book
      into a new document;
    * W2 ``creation-without-overlap`` — type a fresh article sharing no
      text with the corpus;
    * W3 ``modification`` — edit a modified book page back towards the
      original.

    When *snapshot_out* is given it receives the model registry's full
    metrics snapshot after the run — including the per-stage latency
    histograms (fingerprint / Algorithm 1 / decision) behind the
    end-to-end times this function returns.
    """
    lookup, model = _library_lookup(ebooks, config)
    rng = random.Random(f"{seed}:fig12")
    doc_id = f"{DOCS_SERVICE}|new-doc"
    results: Dict[str, List[float]] = {}

    # W1: creation with overlap.
    book = ebooks[rng.randrange(len(ebooks))]
    page_text = " ".join(book.page(0, page_paragraphs))
    results["creation-with-overlap"] = decision_times(
        lookup, DOCS_SERVICE, doc_id, f"{doc_id}#w1",
        list(keystroke_states(page_text)),
    )

    # W2: creation without overlap.
    synth = TextSynthesizer("ip-address", rng)
    fresh_text = " ".join(synth.paragraph() for _ in range(page_paragraphs))
    results["creation-without-overlap"] = decision_times(
        lookup, DOCS_SERVICE, doc_id, f"{doc_id}#w2",
        list(keystroke_states(fresh_text)),
    )

    # W3: modification back towards the original.
    editor = EditModel(synth, rng)
    modified = editor.substitute_words(page_text, 0.3)
    results["modification"] = decision_times(
        lookup, DOCS_SERVICE, doc_id, f"{doc_id}#w3",
        list(edit_toward(modified, page_text)),
    )
    if stats_out is not None:
        stats_out.update(lookup.stats())
    if snapshot_out is not None:
        snapshot_out.update(model.registry.snapshot())
    return results


# ----------------------------------------------------------------------
# Figure 13 — response time vs hash-database size
# ----------------------------------------------------------------------

def figure13_scalability(
    ebooks: EbookCorpus,
    *,
    config: FingerprintConfig = PAPER_CONFIG,
    steps: int = 5,
    paste_chars: int = 500,
    samples_per_step: int = 30,
    seed: int = 2016,
    stats_out: Optional[Dict[str, object]] = None,
    snapshot_out: Optional[Dict[str, object]] = None,
) -> List[Tuple[int, float]]:
    """(distinct hashes in DB, 95th-percentile decision ms) per step.

    Books are loaded in *steps* increments; after each increment a
    500-character paragraph from a loaded book is pasted into a new
    document and the disclosure decision timed (the paper's workload).
    The garbage collector is paused around each timed decision so the
    p95 reflects the engine rather than interpreter heap sweeps, which
    otherwise dominate the tail once the database holds millions of
    dictionary entries.
    """
    import gc
    policies = PolicyStore()
    policies.register_service(
        LIBRARY_SERVICE, privilege=Label.of("lib"), confidentiality=Label.of("lib")
    )
    policies.register_service(DOCS_SERVICE)
    model = TextDisclosureModel(policies, config)
    lookup = PolicyLookup(model)
    rng = random.Random(f"{seed}:fig13")

    per_step = max(1, len(ebooks) // steps)
    loaded = 0
    out: List[Tuple[int, float]] = []
    for step in range(steps):
        upper = min(len(ebooks), loaded + per_step)
        for book in ebooks.books[loaded:upper]:
            doc_id = f"{LIBRARY_SERVICE}|{book.book_id}"
            segments = [
                (f"{doc_id}#p{i}", text) for i, text in enumerate(book.paragraphs)
            ]
            model.observe(LIBRARY_SERVICE, doc_id, segments)
        loaded = upper

        # Warm-up decision so one-time dictionary growth is excluded.
        warm_doc = f"{DOCS_SERVICE}|warm-{step}"
        lookup.lookup(
            DOCS_SERVICE, warm_doc, [(f"{warm_doc}#p0", ebooks[0].paragraphs[0])]
        )
        times: List[float] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for sample in range(samples_per_step):
                book = ebooks[rng.randrange(loaded)]
                paragraph = book.paragraphs[rng.randrange(len(book.paragraphs))]
                paste = paragraph[:paste_chars]
                doc_id = f"{DOCS_SERVICE}|paste-{step}-{sample}"
                started = time.perf_counter()
                lookup.lookup(DOCS_SERVICE, doc_id, [(f"{doc_id}#p0", paste)])
                times.append(time.perf_counter() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
        n_hashes = model.tracker.paragraphs.stats()["distinct_hashes"]
        out.append((n_hashes, percentile(times, 95.0) * 1000.0))
    if stats_out is not None:
        stats_out.update(lookup.stats())
    if snapshot_out is not None:
        snapshot_out.update(model.registry.snapshot())
    return out
