"""Open-loop fleet executor with a fleet-wide reference-engine audit.

:mod:`repro.eval.workload` decides *what* happens and *when*; this
module makes it happen against the real stack — every session gets its
own :class:`~repro.browser.page.Browser` +
:class:`~repro.plugin.plugin.BrowserFlowPlugin` whose policy decisions
travel through a shared :class:`~repro.plugin.server.LookupServer`
(single engine or the PR-7 sharded tier), exactly the deployment the
paper's enterprise scenario describes.

Task-manager/worker split
    A coordinator thread walks the schedule in virtual-time order and
    dispenses ops to a worker pool, so the harness itself never becomes
    the bottleneck: one slow session queues privately while other
    sessions' ops keep flowing. Two ordering rules make runs
    reproducible (the determinism test's contract):

    * **session affinity** — a session's ops execute in schedule order
      (per-session FIFO drained by at most one worker at a time);
    * **fences** — ops whose effects are observed under a confidential
      label (``exclusive`` in the schedule) run as barriers: the
      coordinator waits for everything earlier to finish, runs the op
      alone, then resumes dispatch. Confidential hash ownership is
      therefore a pure function of the schedule, while the freely
      interleaving remainder only touches empty-label segments, which
      can never flip a verdict.

Open-loop lateness
    When pacing is enabled each op has a wall-clock due time; lateness
    (actual start − scheduled start) is the queueing signal a closed
    loop structurally cannot see, recorded per op alongside service
    time into ``fleet.*`` histograms of the model's
    :class:`~repro.obs.registry.MetricsRegistry` and reported as
    percentiles.

Audit postcondition
    After the run, every paragraph stored in every *untrusted* backend
    (Docs, Forum) is checked twice — by the live model and by an
    independent reference :class:`~repro.disclosure.DisclosureEngine`
    holding only the schedule's secrets — and every disclosing
    paragraph must be covered by a suppression event in the audit log.
    This is ``test_integration_soak``'s invariant promoted to a
    fleet-wide postcondition; :func:`measure` refuses to report any
    performance number for a run whose audit fails.
"""

from __future__ import annotations

import platform
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.browser.page import Browser
from repro.disclosure import DisclosureEngine
from repro.eval.timing import edit_toward
from repro.eval.workload import FleetConfig, FleetOp, Schedule, generate_schedule
from repro.fingerprint.config import TINY_CONFIG
from repro.plugin import PluginMode
from repro.plugin.lookup import PolicyLookup
from repro.plugin.plugin import BrowserFlowPlugin
from repro.plugin.router import ShardRouter
from repro.plugin.server import LookupClient, LookupServer
from repro.services import DocsService, ForumService, WikiService
from repro.services.network import Network
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.tdm.model import SuppressionEvent
from repro.util.stats import percentile

#: Schema version of BENCH_fleet.json; bump on shape changes.
SCHEMA_VERSION = 1

#: Reference-engine observation threshold for the audit: well above the
#: model's 0.5 so legitimately sub-threshold residue (shared vocabulary,
#: committed partial copies) is not miscounted as a leak — the same
#: margin rationale as the soak test.
AUDIT_THRESHOLD = 0.8

#: Lateness can reach far beyond service time when the offered load
#: exceeds capacity; these buckets keep the histogram meaningful there.
LATENESS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: The sharded tier measured by measure() (the PR-7 deployment shape).
N_SHARDS = 4


@dataclass(frozen=True)
class AuditOutcome:
    """Fleet-wide audit verdict; field-identical across worker counts."""

    paragraphs_audited: int
    secrets: int
    leaked: Tuple[str, ...]
    uncovered: Tuple[str, ...]
    suppression_events: int
    ok: bool


@dataclass(frozen=True)
class FleetResult:
    """One executed schedule against one tier."""

    schedule_digest: str
    sessions: int
    ops: int
    decisions: int
    blocked_ops: int
    declassify_noops: int
    seconds: float
    service_ms: Tuple[float, ...]
    lateness_ms: Tuple[float, ...]  # empty when unpaced
    audit: AuditOutcome


class ClientLookup(PolicyLookup):
    """A ``PolicyLookup`` whose decisions come from a ``LookupClient``.

    Injected into each session's plug-in so every decision crosses the
    shared service tier (request accounting, timeout budget, server
    histograms) instead of short-circuiting into the model. The server
    side still runs the real ``PolicyLookup`` with the shared decision
    cache. Fleet runs are healthy (no fault injection), so a degraded
    outcome is a harness bug and raises.
    """

    def __init__(self, server: LookupServer, client: LookupClient) -> None:
        super().__init__(server.lookup.model, server.lookup.cache)
        self._client = client

    def lookup(
        self,
        service_id,
        doc_id,
        paragraphs,
        *,
        suppressions=None,
        fingerprints=None,
    ):
        outcome = self._client.lookup(
            service_id,
            doc_id,
            paragraphs,
            suppressions=suppressions,
            fingerprints=fingerprints,
        )
        if outcome.degraded:
            raise RuntimeError(
                f"healthy fleet lookup degraded for {doc_id} "
                f"(faults: {outcome.faults})"
            )
        return outcome.decision


class FleetFixture:
    """The enterprise under test: one trusted wiki, two untrusted
    services, one shared lookup tier, pre-created target pools."""

    def __init__(
        self,
        config: FleetConfig,
        *,
        n_shards: Optional[int] = None,
        router_workers: int = 4,
    ) -> None:
        self.network = Network()
        self.wiki = WikiService()
        self.docs = DocsService()
        self.forum = ForumService()
        for service in (self.wiki, self.docs, self.forum):
            self.network.register(service)

        self.policies = PolicyStore()
        self.policies.register_service(
            self.wiki.origin,
            privilege=Label.of("tw"),
            confidentiality=Label.of("tw"),
            display_name="Internal Wiki",
        )
        self.policies.register_service(self.docs.origin, display_name="Docs")
        self.policies.register_service(self.forum.origin, display_name="Forum")

        self.router = (
            ShardRouter(max_workers=router_workers) if n_shards else None
        )
        self.model = TextDisclosureModel(
            self.policies, TINY_CONFIG, n_shards=n_shards, router=self.router
        )
        self.server = LookupServer(PolicyLookup(self.model))

        # Pre-create the pools on the setup thread so concurrent ops
        # never race on backend document creation.
        for k in range(config.doc_pool):
            self.docs.backend.create(title=f"doc-{k}", doc_id=f"doc-{k}")
        for k in range(config.thread_pool):
            topic = f"topic-{k}"
            self.forum.backend.create(title=topic, doc_id=f"thread:{topic}")

    def close(self) -> None:
        if self.router is not None:
            self.router.shutdown()


class _SessionState:
    """One simulated user: browser, plug-in, open editors/elements."""

    def __init__(self, fixture: FleetFixture, session: int) -> None:
        self.browser = Browser(fixture.network)
        client = LookupClient(
            fixture.server,
            scope=fixture.model.registry.scope("fleet.client."),
        )
        self.plugin = BrowserFlowPlugin(
            fixture.model,
            mode=PluginMode.ENFORCE,
            lookup=ClientLookup(fixture.server, client),
        )
        self.plugin.attach(self.browser)
        self.session = session
        self.editors: Dict[str, object] = {}
        self.elements: Dict[str, object] = {}


def _execute_op(
    fixture: FleetFixture, state: _SessionState, op: FleetOp
) -> Tuple[bool, bool]:
    """Run one op; returns (delivered, declassify_noop)."""
    if op.kind == "create_secret":
        fixture.wiki.save_page(op.target, op.text)
        state.browser.open(fixture.wiki.page_url(op.target))
        return True, False
    if op.kind == "wiki_post":
        return (
            fixture.wiki.edit(state.browser.new_tab(), op.target, op.text),
            False,
        )
    if op.kind == "forum_post":
        return (
            fixture.forum.post(state.browser.new_tab(), op.target, op.text),
            False,
        )

    editor = state.editors.get(op.target)
    if editor is None:
        editor = fixture.docs.open_editor(state.browser.new_tab(), op.target)
        state.editors[op.target] = editor

    if op.kind == "declassify":
        par_segment = BrowserFlowPlugin.qualify(fixture.docs.origin, op.par_id)
        doc_segment = BrowserFlowPlugin.qualify(fixture.docs.origin, op.target)
        element = state.elements.get(op.par_id)
        if element is None:
            return True, True
        # A blocked paste warns at both granularities (the paragraph and
        # the document it would have joined); the user declassifies each
        # offending tag of the *latest* warning per segment, exactly once.
        latest: Dict[str, Tuple[str, ...]] = {}
        for warning in state.plugin.warnings:
            if warning.segment_id in (par_segment, doc_segment):
                latest[warning.segment_id] = warning.offending
        if par_segment not in latest:
            return True, True
        for segment_id, offending in sorted(latest.items()):
            for tag in sorted(set(offending)):
                state.plugin.suppress(
                    segment_id,
                    tag,
                    f"user-s{op.session}",
                    "fleet declassification",
                )
        # Re-send the same text into the same paragraph: the upload-path
        # check consumes the suppressions and lands them in the audit log.
        return editor.set_paragraph_text(element, op.text), False

    element = editor.new_paragraph(par_id=op.par_id)
    state.elements[op.par_id] = element
    if op.kind == "docs_paste":
        return editor.paste(element, op.text), False
    if op.kind == "docs_type":
        delivered = editor.type_text(element, op.text)
        return delivered == len(op.text), False
    if op.kind == "docs_edit":
        ok = editor.paste(element, op.text)
        for state_text in edit_toward(op.text, op.extra):
            ok = editor.set_paragraph_text(element, state_text)
        return ok, False
    raise ValueError(f"unknown op kind {op.kind!r}")


def audit_untrusted_backends(
    fixture: FleetFixture, secrets: Tuple[str, ...]
) -> AuditOutcome:
    """The soak invariant as a fleet-wide postcondition.

    Every stored paragraph of every untrusted backend is leaked when
    either the live model would refuse to upload it now or an
    independent reference engine holding only the secrets reports
    disclosure at ``AUDIT_THRESHOLD``; every leaked segment must be
    covered by a suppression event in the audit log — at either of the
    two granularities a user can declassify: the paragraph's own
    segment, or the document that stores it (suppressing a tag at
    document granularity permanently declassifies that document for
    the tag, so later derived content flows into it by the user's
    recorded decision).
    """
    reference = DisclosureEngine(TINY_CONFIG)
    for i, secret in enumerate(secrets):
        reference.observe(f"secret-{i}", secret, threshold=AUDIT_THRESHOLD)

    leaked = {}  # paragraph segment -> its document's segment
    paragraphs = 0
    for service in (fixture.docs, fixture.forum):
        documents = sorted(
            service.backend.all_documents(), key=lambda d: d.doc_id
        )
        for doc in documents:
            for par_id, text in doc.paragraphs:
                if not text.strip():
                    continue
                paragraphs += 1
                decision = fixture.model.check_upload(
                    service.origin,
                    f"audit:{par_id}",
                    [(f"audit:{par_id}#p0", text)],
                )
                report = reference.disclosing_sources(
                    fingerprint=reference.fingerprint(text)
                )
                if not decision.allowed or report.disclosing:
                    leaked[
                        BrowserFlowPlugin.qualify(service.origin, par_id)
                    ] = BrowserFlowPlugin.qualify(service.origin, doc.doc_id)

    covered = {
        event.segment_id
        for event in fixture.model.audit
        if isinstance(event, SuppressionEvent)
    }
    suppressions = sum(
        1 for event in fixture.model.audit
        if isinstance(event, SuppressionEvent)
    )
    uncovered = tuple(
        sorted(
            par_seg
            for par_seg, doc_seg in leaked.items()
            if par_seg not in covered and doc_seg not in covered
        )
    )
    return AuditOutcome(
        paragraphs_audited=paragraphs,
        secrets=len(secrets),
        leaked=tuple(sorted(leaked)),
        uncovered=uncovered,
        suppression_events=suppressions,
        ok=not uncovered,
    )


def run_fleet(
    schedule: Schedule,
    *,
    workers: int = 4,
    n_shards: Optional[int] = None,
    pace: Optional[float] = None,
    join_timeout: float = 600.0,
) -> FleetResult:
    """Execute *schedule* against a fresh fixture; audit afterwards.

    Args:
        workers: worker-pool size (the audit outcome must not depend
            on it — that is the determinism test's claim).
        n_shards: None for the single-engine tier, else the sharded
            tier with this many shards.
        pace: target ops per wall second. When set, ops become *due* at
            ``virtual_time × (ops/pace)/horizon`` and open-loop lateness
            is recorded; when None the schedule runs flat out and the
            lateness series is empty.
    """
    fixture = FleetFixture(schedule.config, n_shards=n_shards)
    registry = fixture.model.registry
    scope = registry.scope("fleet.")
    h_service = scope.histogram("service_seconds")
    h_lateness = scope.histogram("lateness_seconds", buckets=LATENESS_BUCKETS)
    c_ops = scope.counter("ops")
    c_blocked = scope.counter("blocked_ops")
    c_noop = scope.counter("declassify_noops")

    ops = schedule.ops
    scale = 0.0
    if pace is not None and schedule.horizon > 0:
        scale = (len(ops) / pace) / schedule.horizon

    sessions: Dict[int, _SessionState] = {}
    pending: Dict[int, Deque[Tuple[FleetOp, float]]] = {}
    active: set = set()
    lock = threading.Lock()
    cond = threading.Condition(lock)
    done = 0
    blocked = 0
    noops = 0
    service_ms: List[float] = []
    lateness_ms: List[float] = []
    errors: List[Tuple[int, BaseException]] = []

    start = time.perf_counter()

    def execute(op: FleetOp, due: float) -> None:
        nonlocal done, blocked, noops
        began = time.perf_counter()
        if pace is not None:
            late = max(0.0, (began - start) - due)
            h_lateness.observe(late)
            with lock:
                lateness_ms.append(late * 1000.0)
        try:
            delivered, noop = _execute_op(fixture, sessions[op.session], op)
        except Exception as exc:
            delivered, noop = True, False
            with lock:
                errors.append((op.index, exc))
        elapsed = time.perf_counter() - began
        h_service.observe(elapsed)
        c_ops.inc()
        with cond:
            service_ms.append(elapsed * 1000.0)
            if not delivered:
                blocked += 1
                c_blocked.inc()
            if noop:
                noops += 1
                c_noop.inc()
            done += 1
            cond.notify_all()

    def drain(session: int) -> None:
        while True:
            with cond:
                queue = pending.get(session)
                if not queue:
                    active.discard(session)
                    return
                op, due = queue.popleft()
            execute(op, due)

    executor = ThreadPoolExecutor(
        max_workers=max(1, workers), thread_name_prefix="fleet"
    )
    try:
        for op in ops:
            due = op.at * scale
            if pace is not None:
                delay = due - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
            if op.session not in sessions:
                # Session states are created on the coordinator, so
                # plug-in construction (gauge registration, cache
                # wiring) is serial and race-free.
                sessions[op.session] = _SessionState(fixture, op.session)
            if op.exclusive:
                with cond:
                    if not cond.wait_for(
                        lambda: done == op.index, timeout=join_timeout
                    ):
                        raise RuntimeError(
                            f"fence timed out before op {op.index}"
                        )
                execute(op, due)
            else:
                with cond:
                    pending.setdefault(op.session, deque()).append((op, due))
                    if op.session not in active:
                        active.add(op.session)
                        executor.submit(drain, op.session)
        with cond:
            if not cond.wait_for(lambda: done == len(ops), timeout=join_timeout):
                raise RuntimeError(
                    f"fleet run wedged: {done}/{len(ops)} ops finished"
                )
    finally:
        executor.shutdown(wait=True)
    seconds = time.perf_counter() - start

    if errors:
        index, exc = errors[0]
        raise RuntimeError(
            f"{len(errors)} op(s) raised; first at op {index}: {exc!r}"
        ) from exc

    decisions = sum(
        len(state.plugin.response_times) for state in sessions.values()
    )
    audit = audit_untrusted_backends(fixture, schedule.secrets)
    fixture.close()
    return FleetResult(
        schedule_digest=schedule.digest,
        sessions=len(sessions),
        ops=len(ops),
        decisions=decisions,
        blocked_ops=blocked,
        declassify_noops=noops,
        seconds=seconds,
        service_ms=tuple(service_ms),
        lateness_ms=tuple(lateness_ms),
        audit=audit,
    )


def smoke_config(seed: object = 2016) -> FleetConfig:
    """A CI-sized fleet: same shapes, two orders of magnitude smaller."""
    return FleetConfig(
        sessions=48,
        seed=seed,
        arrival_rate=12.0,
        burst_every=2.0,
        burst_duration=0.5,
        burst_factor=4.0,
        think_mean=0.25,
        doc_pool=12,
        page_pool=8,
        thread_pool=6,
        seed_secrets=3,
    )


def full_config(seed: object = 2016) -> FleetConfig:
    """The committed-benchmark shape: >= 1000 simulated sessions."""
    return FleetConfig(sessions=1000, seed=seed)


def _series(values: Tuple[float, ...]) -> Dict[str, float]:
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def _tier_block(result: FleetResult) -> dict:
    return {
        "sessions": result.sessions,
        "ops": result.ops,
        "decisions": result.decisions,
        "blocked_ops": result.blocked_ops,
        "declassify_noops": result.declassify_noops,
        "seconds": result.seconds,
        "throughput_ops_s": (
            result.ops / result.seconds if result.seconds > 0 else 0.0
        ),
        "service_ms": _series(result.service_ms),
        "lateness_ms": _series(result.lateness_ms),
        "audit": {
            "paragraphs_audited": result.audit.paragraphs_audited,
            "secrets": result.audit.secrets,
            "leaked": len(result.audit.leaked),
            "uncovered": len(result.audit.uncovered),
            "suppression_events": result.audit.suppression_events,
            "ok": result.audit.ok,
        },
    }


def measure(
    smoke: bool,
    seed: int,
    *,
    sessions: Optional[int] = None,
    workers: int = 4,
    pace: Optional[float] = None,
    n_shards: int = N_SHARDS,
    churn: float = 0.0,
) -> dict:
    """The full fleet comparison (the BENCH_fleet.json payload).

    Runs the identical schedule against the single-engine tier and the
    sharded tier, **asserting the audit postcondition for each tier
    before reporting any number**, and asserting both tiers reached the
    same audit verdict (they must: verdicts are schedule-deterministic).
    """
    config = smoke_config(seed) if smoke else full_config(seed)
    overrides: Dict[str, object] = {}
    if sessions is not None:
        overrides["sessions"] = sessions
    if churn:
        overrides["churn"] = churn
    if overrides:
        config = FleetConfig(
            **{
                **{f: getattr(config, f) for f in config.__dataclass_fields__},
                **overrides,
            }
        )
    if pace is None:
        # Smoke runs have headroom at 150 ops/s; the full run offers
        # ~2x the measured single-tier capacity at 1000 sessions, so
        # the lateness series shows sustained open-loop queueing
        # without the offered load being pure fiction.
        pace = 150.0 if smoke else 60.0
    schedule = generate_schedule(config)

    tiers: Dict[str, FleetResult] = {}
    for name, shards in (("single", None), ("sharded", n_shards)):
        result = run_fleet(
            schedule, workers=workers, n_shards=shards, pace=pace
        )
        assert result.audit.ok, (
            f"{name} tier failed the fleet audit: "
            f"{len(result.audit.uncovered)} uncovered disclosure(s): "
            f"{result.audit.uncovered[:5]}"
        )
        tiers[name] = result

    assert tiers["single"].audit == tiers["sharded"].audit, (
        "audit outcomes diverge between tiers — verdicts are supposed "
        "to be schedule-deterministic"
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "fleet",
        "smoke": smoke,
        "seed": seed,
        "python": platform.python_version(),
        "config": {
            "sessions": config.sessions,
            "workers": workers,
            "pace_ops_s": pace,
            "n_shards": n_shards,
            "arrival_rate": config.arrival_rate,
            "burst_every": config.burst_every,
            "burst_duration": config.burst_duration,
            "burst_factor": config.burst_factor,
            "think_mean": config.think_mean,
            "zipf_exponent": config.zipf_exponent,
            "churn": config.churn,
            "ngram_size": TINY_CONFIG.ngram_size,
            "window_size": TINY_CONFIG.window_size,
            "hash_bits": TINY_CONFIG.hash_bits,
        },
        "workload": {
            "ops": len(schedule.ops),
            "kinds": schedule.kind_counts(),
            "secrets": len(schedule.secrets),
            "horizon_virtual_s": schedule.horizon,
            "schedule_digest": schedule.digest,
        },
        "tiers": {name: _tier_block(result) for name, result in tiers.items()},
        "audit_match": True,
    }
