"""Open-loop fleet workload generation (the ROADMAP's fleet simulator).

Production browser traffic is nothing like our 8-client closed loops:
document popularity is heavily skewed (a few hot documents absorb most
edits), arrivals are bursty (flash crowds), and the mix spans service
shapes — AJAX editors syncing per keystroke, form-based wiki saves,
forum replies. This module generates that workload **entirely up
front** as a deterministic function of one seed:

* :class:`ZipfSampler` — rank-frequency skew for document/page/thread
  popularity (``P(rank k) ∝ 1/k^s``).
* A flash-crowd arrival process — session arrivals in *virtual time*
  with exponential inter-arrivals whose rate is multiplied inside
  seeded burst windows (a piecewise-rate Poisson-like process).
* Per-session scripts mixing the three service shapes, with occasional
  secret creation, partial pastes, keystroke churn
  (:func:`repro.eval.timing.keystroke_states` drives the typing path in
  the executor), word-level edit fix-ups
  (:func:`repro.eval.timing.edit_toward`), and declassification. All
  text comes from :class:`repro.datasets.synthesis.TextSynthesizer` /
  :class:`~repro.datasets.synthesis.EditModel` streams owned by the
  generator, so the full schedule — every op, every byte of text,
  every timestamp — is reproducible from the seed alone.

Generating the schedule up front is what makes the load **open-loop**:
the executor (:mod:`repro.eval.fleet`) owes each op at its scheduled
time regardless of how fast the system answers, so queueing delay shows
up as *lateness* instead of silently throttling the offered load, which
is exactly what a closed loop cannot measure.

Determinism note (relied on by the fleet audit): ops whose effects are
observed under a *confidential* label — secret-page creation, wiki form
posts, declassifications — are marked ``exclusive``. The executor runs
them as barriers, so confidential hash ownership is a pure function of
the schedule; everything else may interleave freely because untrusted
services carry empty confidentiality labels and cannot change any
verdict.
"""

from __future__ import annotations

import hashlib
import json
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.synthesis import EditModel, TextSynthesizer

#: Op kinds a schedule may contain (the executor dispatches on these).
OP_KINDS = (
    "create_secret",
    "wiki_post",
    "forum_post",
    "docs_paste",
    "docs_type",
    "docs_edit",
    "declassify",
)

#: Kinds whose effects are observed under a confidential label; the
#: executor serialises these as barriers (see module docstring).
EXCLUSIVE_KINDS = frozenset({"create_secret", "wiki_post", "declassify"})


class ZipfSampler:
    """Seeded sampler over ranks ``0..n-1`` with ``P(k) ∝ 1/(k+1)^s``.

    Cumulative weights are precomputed once; each draw is one uniform
    plus a binary search, so sampling a million-op schedule stays cheap.
    """

    def __init__(self, n: int, exponent: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        self._cumulative: List[float] = []
        total = 0.0
        for k in range(n):
            total += (k + 1) ** -exponent
            self._cumulative.append(total)
        self._total = total

    def probability(self, rank: int) -> float:
        """Exact probability of drawing *rank* (0-based)."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        return ((rank + 1) ** -self.exponent) / self._total

    def sample(self) -> int:
        """Draw one 0-based rank."""
        r = self._rng.random() * self._total
        return min(bisect_left(self._cumulative, r), self.n - 1)


class BurstWindows:
    """Seeded flash-crowd windows over virtual time.

    Window ``k`` lives inside the interval ``[k·every, (k+1)·every)``:
    it starts at ``k·every + jitter_k`` (jitter < every/3) and lasts
    ``duration`` (≤ every/2), so windows never straddle interval
    boundaries and membership of any *t* needs only window
    ``floor(t/every)``. Jitters are drawn lazily in index order from a
    dedicated rng, so membership queries in any order see the same
    windows.
    """

    def __init__(
        self, every: float, duration: float, rng: random.Random
    ) -> None:
        if every <= 0:
            raise ValueError("burst_every must be positive")
        if not 0 <= duration <= every / 2:
            raise ValueError("burst_duration must be in [0, burst_every/2]")
        self._every = every
        self._duration = duration
        self._rng = rng
        self._starts: List[float] = []

    def _start_of(self, k: int) -> float:
        while len(self._starts) <= k:
            i = len(self._starts)
            self._starts.append(
                i * self._every + self._rng.uniform(0, self._every / 3)
            )
        return self._starts[k]

    def in_burst(self, t: float) -> bool:
        if t < 0 or self._duration == 0:
            return False
        start = self._start_of(int(t // self._every))
        return start <= t < start + self._duration


@dataclass(frozen=True)
class FleetConfig:
    """Everything the schedule is a function of (besides the seed)."""

    sessions: int = 1000
    seed: object = 2016
    #: Baseline session arrival rate (sessions per virtual second).
    arrival_rate: float = 40.0
    #: Flash-crowd shape: window cadence/length and rate multiplier.
    burst_every: float = 8.0
    burst_duration: float = 2.0
    burst_factor: float = 4.0
    #: Mean virtual-time gap between consecutive ops of one session.
    think_mean: float = 0.4
    #: Popularity skew shared by the document/page/thread samplers.
    zipf_exponent: float = 1.1
    #: Pool sizes (documents are pre-created by the executor).
    doc_pool: int = 60
    page_pool: int = 40
    thread_pool: int = 30
    #: Wiki sessions forced to create a secret before anyone can paste.
    seed_secrets: int = 6
    #: Session-shape mix (docs weight is the remainder).
    wiki_weight: float = 0.25
    forum_weight: float = 0.25
    #: Probability a non-forced wiki session creates a new secret page.
    secret_page_prob: float = 0.3
    #: Probability a blocked full-secret paste is later declassified.
    declassify_prob: float = 0.5
    #: Keystroke-churn cap (typing is ~2 decisions per character).
    max_type_chars: int = 24
    #: Session-mix churn knob in ``[0, 1]``: scales the wiki/forum
    #: weights down (so most sessions become Docs sessions), lengthens
    #: Docs scripts, and converts part of the public-paste tail into
    #: per-keystroke typing — the workload shape that stresses the
    #: delta-aware check pipeline (DESIGN.md §13). ``churn=0`` draws
    #: the exact rng sequence of configs that predate the knob, so
    #: existing schedule digests are unchanged.
    churn: float = 0.0

    def __post_init__(self) -> None:
        if self.sessions <= 0:
            raise ValueError("sessions must be positive")
        if self.wiki_weight + self.forum_weight >= 1.0:
            raise ValueError("wiki_weight + forum_weight must be < 1")
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")


@dataclass(frozen=True)
class FleetOp:
    """One scheduled operation of one session."""

    index: int  # position in global virtual-time order
    session: int
    seq: int  # position within the session
    at: float  # scheduled start, virtual seconds from run start
    kind: str
    target: str  # page / thread / doc the op acts on
    par_id: str = ""  # pre-assigned docs paragraph id ("" for non-docs)
    text: str = ""
    extra: str = ""  # kind-specific: docs_edit target state, etc.
    exclusive: bool = False


@dataclass(frozen=True)
class Schedule:
    """A fully materialised fleet workload."""

    config: FleetConfig
    ops: Tuple[FleetOp, ...]
    #: Secret texts in creation order (the audit's ground truth).
    secrets: Tuple[str, ...]
    horizon: float  # virtual time of the last op
    digest: str  # sha256 over every field of every op

    def kind_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in OP_KINDS}
        for op in self.ops:
            counts[op.kind] += 1
        return counts

    @property
    def sessions(self) -> int:
        return self.config.sessions


def _digest_ops(ops: Sequence[FleetOp]) -> str:
    payload = json.dumps(
        [
            (
                op.index,
                op.session,
                op.seq,
                round(op.at, 9),
                op.kind,
                op.target,
                op.par_id,
                op.text,
                op.extra,
                op.exclusive,
            )
            for op in ops
        ],
        ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _ScheduleBuilder:
    """Accumulates ops during generation, then freezes the schedule."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.ops: List[FleetOp] = []
        self.secrets: List[str] = []
        self.secret_times: List[float] = []

    def add(
        self,
        session: int,
        seq: int,
        at: float,
        kind: str,
        target: str,
        *,
        par_id: str = "",
        text: str = "",
        extra: str = "",
    ) -> None:
        self.ops.append(
            FleetOp(
                index=-1,
                session=session,
                seq=seq,
                at=at,
                kind=kind,
                target=target,
                par_id=par_id,
                text=text,
                extra=extra,
                exclusive=kind in EXCLUSIVE_KINDS,
            )
        )

    def secrets_before(self, at: float) -> List[int]:
        """Indices of secrets created strictly before *at*, oldest first.

        Sessions are generated in arrival order but their ops carry
        think-time offsets, so creation times interleave across
        sessions — ``secret_times`` is not sorted and the membership
        test must be explicit. Oldest-first ordering makes the Zipf
        draw favour long-lived secrets, like real hot documents.
        """
        return sorted(
            (i for i, t in enumerate(self.secret_times) if t < at - 1e-9),
            key=lambda i: (self.secret_times[i], i),
        )

    def freeze(self) -> Schedule:
        ordered = sorted(self.ops, key=lambda op: (op.at, op.session, op.seq))
        ops = tuple(
            FleetOp(
                index=i,
                session=op.session,
                seq=op.seq,
                at=op.at,
                kind=op.kind,
                target=op.target,
                par_id=op.par_id,
                text=op.text,
                extra=op.extra,
                exclusive=op.exclusive,
            )
            for i, op in enumerate(ordered)
        )
        horizon = ops[-1].at if ops else 0.0
        return Schedule(
            config=self.config,
            ops=ops,
            secrets=tuple(self.secrets),
            horizon=horizon,
            digest=_digest_ops(ops),
        )


def arrival_times(config: FleetConfig) -> List[float]:
    """Session arrival times under the flash-crowd process."""
    rng = random.Random(f"fleet:{config.seed}:arrivals")
    windows = BurstWindows(
        config.burst_every,
        config.burst_duration,
        random.Random(f"fleet:{config.seed}:bursts"),
    )
    arrivals: List[float] = []
    t = 0.0
    for _ in range(config.sessions):
        rate = config.arrival_rate * (
            config.burst_factor if windows.in_burst(t) else 1.0
        )
        t += rng.expovariate(rate)
        arrivals.append(t)
    return arrivals


def generate_schedule(config: FleetConfig) -> Schedule:
    """Materialise the whole fleet workload from ``config.seed``.

    Sessions are generated in arrival order, so "which secrets exist
    yet" is well-defined while scripting each session: a secret may only
    be referenced by ops scheduled after its (exclusive) creation op.
    """
    seed = config.seed
    builder = _ScheduleBuilder(config)

    synth_secret = TextSynthesizer("mysql", random.Random(f"fleet:{seed}:secret-text"))
    synth_public = TextSynthesizer("fiction", random.Random(f"fleet:{seed}:public-text"))
    edits = EditModel(synth_public, random.Random(f"fleet:{seed}:edits"))
    zipf_docs = ZipfSampler(
        config.doc_pool, config.zipf_exponent, random.Random(f"fleet:{seed}:zipf-docs")
    )
    zipf_pages = ZipfSampler(
        config.page_pool, config.zipf_exponent, random.Random(f"fleet:{seed}:zipf-pages")
    )
    zipf_threads = ZipfSampler(
        config.thread_pool,
        config.zipf_exponent,
        random.Random(f"fleet:{seed}:zipf-threads"),
    )
    zipf_secrets = ZipfSampler(
        256, config.zipf_exponent, random.Random(f"fleet:{seed}:zipf-secrets")
    )

    # Churn shifts the session mix toward keystroke-heavy Docs
    # sessions without spending any extra rng draws at churn == 0.
    wiki_weight = config.wiki_weight * (1.0 - config.churn)
    forum_weight = config.forum_weight * (1.0 - config.churn)
    extra_docs_ops = int(round(4 * config.churn))
    type_tail = 1.0 - 0.4 * config.churn

    for session, arrival in enumerate(arrival_times(config)):
        srng = random.Random(f"fleet:{seed}:session:{session}")
        forced_secret = session < config.seed_secrets
        shape_draw = srng.random()
        if forced_secret or shape_draw < wiki_weight:
            shape = "wiki"
        elif shape_draw < wiki_weight + forum_weight:
            shape = "forum"
        else:
            shape = "docs"

        t = arrival
        seq = 0

        def tick() -> float:
            nonlocal t
            t += srng.expovariate(1.0 / config.think_mean)
            return t

        if shape == "wiki":
            n_ops = srng.randint(1, 2)
            for _ in range(n_ops):
                at = tick()
                make_secret = forced_secret and seq == 0
                if not make_secret:
                    make_secret = srng.random() < config.secret_page_prob
                if make_secret:
                    secret = synth_secret.paragraph(4, 6)
                    name = f"Secret-{len(builder.secrets)}"
                    builder.secrets.append(secret)
                    builder.secret_times.append(at)
                    builder.add(session, seq, at, "create_secret", name, text=secret)
                else:
                    page = f"Public-{zipf_pages.sample()}"
                    builder.add(
                        session,
                        seq,
                        at,
                        "wiki_post",
                        page,
                        text=synth_public.paragraph(3, 5),
                    )
                seq += 1
        elif shape == "forum":
            topic = f"topic-{zipf_threads.sample()}"
            for _ in range(srng.randint(1, 3)):
                at = tick()
                pool = builder.secrets_before(at)
                if pool and srng.random() < 0.1:
                    # A careless quote of an internal secret: blocked by
                    # ENFORCE, so it never reaches the stored thread.
                    rank = pool[zipf_secrets.sample() % len(pool)]
                    text = builder.secrets[rank][:80]
                else:
                    text = synth_public.sentence(10, 18)
                builder.add(session, seq, at, "forum_post", topic, text=text)
                seq += 1
        else:
            doc = f"doc-{zipf_docs.sample()}"
            for _ in range(srng.randint(2, 5) + extra_docs_ops):
                at = tick()
                par_id = f"fs{session}o{seq}"
                pool = builder.secrets_before(at)
                draw = srng.random()
                if draw < 0.12 and pool:
                    # Keystroke churn over a secret prefix: everything
                    # past the fingerprinting floor is refused sync.
                    rank = pool[zipf_secrets.sample() % len(pool)]
                    secret = builder.secrets[rank]
                    cut = srng.randrange(12, config.max_type_chars + 1)
                    builder.add(
                        session,
                        seq,
                        at,
                        "docs_type",
                        doc,
                        par_id=par_id,
                        text=secret[:cut],
                    )
                elif draw < 0.27 and pool:
                    # Partial paste: a mid-sized cut of a secret.
                    rank = pool[zipf_secrets.sample() % len(pool)]
                    secret = builder.secrets[rank]
                    hi = max(41, min(len(secret), 120))
                    cut = srng.randrange(40, hi)
                    builder.add(
                        session,
                        seq,
                        at,
                        "docs_paste",
                        doc,
                        par_id=par_id,
                        text=secret[:cut],
                    )
                elif draw < 0.45 and pool:
                    rank = pool[zipf_secrets.sample() % len(pool)]
                    secret = builder.secrets[rank]
                    if srng.random() < 0.3:
                        # Lightly edited copy; still well over threshold.
                        text = edits.substitute_words(secret, 0.05)
                        builder.add(
                            session, seq, at, "docs_paste", doc,
                            par_id=par_id, text=text,
                        )
                    else:
                        # Verbatim secret paste: deterministically
                        # blocked, sometimes followed by the user
                        # declassifying and re-sending the same text.
                        builder.add(
                            session, seq, at, "docs_paste", doc,
                            par_id=par_id, text=secret,
                        )
                        if srng.random() < config.declassify_prob:
                            seq += 1
                            builder.add(
                                session,
                                seq,
                                tick(),
                                "declassify",
                                doc,
                                par_id=par_id,
                                text=secret,
                            )
                elif draw < 0.6:
                    # Word-level fix-up toward an original paragraph
                    # (workflow W3): one decision pair per word changed.
                    original = synth_public.paragraph(3, 4)
                    modified = edits.substitute_words(original, 0.15)
                    builder.add(
                        session,
                        seq,
                        at,
                        "docs_edit",
                        doc,
                        par_id=par_id,
                        text=modified,
                        extra=original,
                    )
                elif draw >= type_tail:
                    # Churn-only branch (unreachable at churn == 0,
                    # where type_tail == 1.0 > any random() draw):
                    # keystroke typing of public text — per-character
                    # decisions that stress the delta pipeline without
                    # touching any secret.
                    builder.add(
                        session,
                        seq,
                        at,
                        "docs_type",
                        doc,
                        par_id=par_id,
                        text=synth_public.sentence(10, 18)[
                            : config.max_type_chars
                        ],
                    )
                else:
                    builder.add(
                        session,
                        seq,
                        at,
                        "docs_paste",
                        doc,
                        par_id=par_id,
                        text=synth_public.paragraph(3, 5),
                    )
                seq += 1

    return builder.freeze()
