"""Plain-text charts for terminal-rendered figures.

The benchmark harness prints the series behind each paper figure; these
helpers render them visually enough to eyeball the *shapes* the
reproduction targets — decay curves, CDFs, agreement bars — without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

#: Eighth-height block characters for sparklines.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line block-character rendering of a value series.

    >>> sparkline([0, 50, 100])
    ' ▄█'
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    chars = []
    for value in values:
        if span <= 0:
            level = len(_BLOCKS) - 1
        else:
            frac = (value - lo) / span
            level = round(frac * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
    return "".join(chars)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 40,
    max_value: Optional[float] = None,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        return "\n".join(lines)
    top = max_value if max_value is not None else max(v for _l, v in rows)
    top = top or 1.0
    label_width = max(len(label) for label, _v in rows)
    for label, value in rows:
        filled = round(width * min(value, top) / top)
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)}  "
                     f"{value:.1f}{unit}")
    return "\n".join(lines)


def series_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter plot on a character grid.

    Each series is drawn with its own glyph (listed in the legend); axes
    are scaled to the joint data range.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    points = [(x, y) for s in series.values() for x, y in s]
    if not points:
        return "\n".join(lines)
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*@%&="
    legend = []
    for glyph, (name, data) in zip(glyphs, series.items()):
        legend.append(f"{glyph} = {name}")
        for x, y in data:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(" " * margin + f"  {x_lo:g}".ljust(width // 2)
                 + f"{x_hi:g}".rjust(width // 2))
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)
