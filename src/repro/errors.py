"""Exception hierarchy for the BrowserFlow reproduction.

All exceptions raised by this package derive from :class:`ReproError` so
that callers embedding the library can catch a single base class. The
subclasses partition failures by subsystem: fingerprinting, the disclosure
engine, the Text Disclosure Model (labels and policy), the simulated
browser, and the simulated cloud services.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class FingerprintError(ReproError):
    """Raised for invalid fingerprinting configuration or input."""


class DisclosureError(ReproError):
    """Raised by the disclosure engine, e.g. for unknown segments."""


class UnknownSegmentError(DisclosureError):
    """Raised when a segment id is not present in the databases."""

    def __init__(self, segment_id: str) -> None:
        super().__init__(f"unknown text segment: {segment_id!r}")
        self.segment_id = segment_id


class SnapshotCorrupt(DisclosureError):
    """A persisted engine snapshot cannot be read back.

    Raised (instead of raw ``JSONDecodeError`` / ``KeyError`` /
    ``UnicodeDecodeError``) when a snapshot file is truncated, not valid
    JSON, missing required fields, or encrypted under a different key
    than the one supplied. The message always names the snapshot and the
    reason, so the CLI can print it verbatim.
    """


class WALCorrupt(DisclosureError):
    """A write-ahead log file is unreadable beyond torn-tail damage.

    A torn tail (the last record cut short by a crash) is *expected* and
    silently truncated at recovery; this error covers everything else —
    a missing or wrong magic header, a record that passes its checksum
    but cannot be decrypted (wrong cipher key), or a shard layout that
    does not match the directory's log files. Raised *before* anything
    is truncated, so a recovery attempted with the wrong key or shard
    count never destroys acknowledged records.
    """


class StandbyGap(DisclosureError):
    """A standby's log-shipping stream has a hole it cannot replay.

    Raised by :meth:`~repro.plugin.server.StandbyLookupServer.catch_up`
    when a shipped ``compact`` record covers LSNs the standby never
    applied: the primary rotated its logs between polls, folding those
    records into a snapshot that is not shipped. Continuing would leave
    the replica permanently diverged, so the standby refuses; the
    operator must re-seed it from the primary's snapshot.
    """


class SimulatedCrash(ReproError):
    """The process 'died' at an injected crash point.

    Raised by the durability layer when a :class:`~repro.util.faults.
    FaultInjector` schedules a crash during a snapshot write or a WAL
    append. Everything written before the crash point is on disk
    (possibly torn); nothing after it is. Tests catch this, discard the
    in-memory engine — exactly what a real crash does — and drive
    recovery from the surviving files.

    Deliberately *not* a :class:`DisclosureError`: nothing in the
    library may swallow it, just as nothing survives ``kill -9``.
    """

    def __init__(self, where: str) -> None:
        super().__init__(f"simulated crash: {where}")
        self.where = where


class PolicyError(ReproError):
    """Raised for invalid Text Disclosure Model operations."""


class UnknownServiceError(PolicyError):
    """Raised when a service has no registered policy labels."""

    def __init__(self, service: str) -> None:
        super().__init__(f"no policy registered for service: {service!r}")
        self.service = service


class TagError(PolicyError):
    """Raised for malformed tags or illegal tag operations."""


class SuppressionError(PolicyError):
    """Raised when a tag suppression request is not permitted."""


class DisclosureViolation(PolicyError):
    """Raised when enforcement blocks an upload that violates policy.

    Carries the offending segment label and the target service privilege
    label so that callers (and the UI layer) can explain the violation.
    """

    def __init__(self, service: str, segment_label, privilege_label) -> None:
        offending = segment_label - privilege_label
        super().__init__(
            f"upload to {service!r} would disclose data tagged "
            f"{sorted(str(t) for t in offending)}"
        )
        self.service = service
        self.segment_label = segment_label
        self.privilege_label = privilege_label
        self.offending_tags = offending


class LookupFault(ReproError):
    """Base class for shared-lookup-service availability failures.

    The shared hash database sits behind the network (paper Fig. 1), so
    a disclosure decision can fail for reasons that have nothing to do
    with policy: the request can be dropped, time out against the
    client's latency budget (§6.2), or be refused by an overloaded
    backend. These faults are retried by :class:`~repro.plugin.server.
    LookupClient`; when retries are exhausted the configured
    fail-open / fail-closed degradation mode decides the upload's fate.
    """


class LookupTimeout(LookupFault):
    """A lookup request exceeded the client's per-request timeout."""

    def __init__(self, timeout: float, kind: str = "timeout") -> None:
        super().__init__(f"lookup timed out after {timeout:.3f}s ({kind})")
        self.timeout = timeout
        self.kind = kind


class LookupRejected(LookupFault):
    """The lookup backend refused the request with a server error."""

    def __init__(self, status: int) -> None:
        super().__init__(f"lookup service returned HTTP {status}")
        self.status = status


class ShardDegraded(LookupFault):
    """One shard of a sharded hash database failed during a sweep.

    Raised by :class:`~repro.disclosure.sharding.ShardedHashDatabase`
    when a per-shard fault injector drops or refuses the shard's part of
    a scatter/gather query. Only queries whose target hashes route to
    the degraded shard observe this; the lookup server translates it to
    the equivalent network-level fault (:class:`LookupTimeout` for a
    drop, :class:`LookupRejected` for a backend error) so clients
    degrade through the ordinary fail-open / fail-closed machinery.
    """

    def __init__(self, shard: int, kind: str, status: int = 503) -> None:
        super().__init__(f"shard {shard} degraded ({kind})")
        self.shard = shard
        self.kind = kind
        self.status = status


class LookupUnavailable(LookupFault):
    """The lookup service stayed unavailable through all retries.

    Recorded in the audit log as a degradation event; under fail-closed
    enforcement the associated upload is blocked, under fail-open it is
    allowed with a logged warning.
    """

    def __init__(self, service_id: str, attempts: int) -> None:
        super().__init__(
            f"lookup for {service_id!r} unavailable after {attempts} attempt(s)"
        )
        self.service_id = service_id
        self.attempts = attempts


class BrowserError(ReproError):
    """Raised by the simulated browser substrate."""


class DOMError(BrowserError):
    """Raised for invalid DOM tree manipulations."""


class NetworkError(ReproError):
    """Raised by the simulated network layer."""


class RequestBlocked(NetworkError):
    """Raised when an interceptor vetoes an outgoing request."""

    def __init__(self, url: str, reason: str = "blocked by policy") -> None:
        super().__init__(f"request to {url!r} blocked: {reason}")
        self.url = url
        self.reason = reason


class ServiceError(ReproError):
    """Raised by simulated cloud services."""


class DocumentNotFound(ServiceError):
    """Raised when a service is asked for a document it does not store."""

    def __init__(self, doc_id: str) -> None:
        super().__init__(f"document not found: {doc_id!r}")
        self.doc_id = doc_id


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators."""
