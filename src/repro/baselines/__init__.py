"""Baseline tracking mechanisms the paper compares against (§1, §2.2).

* :mod:`repro.baselines.precise` — precise clipboard/taint tracking in
  the style of classic data flow tracking systems: labels attach to
  data at copy time and follow it exactly. Strong when every transfer
  is observed; defeated by out-of-browser round-trips and retyping, and
  prone to false positives because taint never decays with edits.
* :mod:`repro.dlp` — network-level DLP (kept in its own package).
"""

from repro.baselines.precise import ExternalEditor, PreciseClipboardTracker

__all__ = ["ExternalEditor", "PreciseClipboardTracker"]
