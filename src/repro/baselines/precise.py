"""Precise clipboard/taint tracking — the classic alternative.

Precise data flow tracking (TaintDroid, libdft, ... — paper §2.2)
attaches labels to data and propagates them through every observed
operation. Cast into the BrowserFlow setting, the observable operations
are clipboard copies and pastes inside the browser:

* copying from a service tags the clipboard with that service's
  confidentiality label;
* pasting transfers the clipboard's taint to the target segment;
* taint never decays — once tainted, always tainted.

Two structural failure modes follow (paper §1, challenges (i)/(ii)):

* **false negatives** when data moves through a channel the tracker
  cannot observe — retyping from memory, or a round-trip through a
  native editor (see :class:`ExternalEditor`), which launders the
  provenance entirely;
* **false positives** when text is edited until it discloses nothing:
  the taint remains attached even though the content is new.

BrowserFlow's imprecise tracking dodges both because it labels by
*similarity to current content* instead of by provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.browser.clipboard import Clipboard, ClipboardEntry
from repro.tdm.labels import EMPTY_LABEL, Label
from repro.tdm.policy import PolicyStore


class PreciseClipboardTracker:
    """Taint tracking over observed copy/paste operations."""

    def __init__(self, policies: PolicyStore) -> None:
        self._policies = policies
        #: segment id -> accumulated taint label
        self._taint: Dict[str, Label] = {}
        #: taint of the current clipboard entry, by identity
        self._clipboard_taint: Dict[int, Label] = {}

    # -- observation points ------------------------------------------------

    def on_copy(self, entry: ClipboardEntry) -> Label:
        """Observe a copy; derives taint from the source's Lc.

        Copies without browser provenance (external applications) carry
        no taint — the tracker cannot see inside native apps.
        """
        if entry.from_browser:
            taint = self._policies.get(entry.source_origin).confidentiality
        else:
            taint = EMPTY_LABEL
        self._clipboard_taint[id(entry)] = taint
        return taint

    def on_paste(self, segment_id: str, entry: ClipboardEntry) -> Label:
        """Observe a paste; the segment inherits the clipboard's taint."""
        taint = self._clipboard_taint.get(id(entry), EMPTY_LABEL)
        merged = self._taint.get(segment_id, EMPTY_LABEL) | taint
        self._taint[segment_id] = merged
        return merged

    def on_type(self, segment_id: str) -> Label:
        """Observe manual typing: adds no taint (retyping is invisible)."""
        return self._taint.get(segment_id, EMPTY_LABEL)

    def on_edit(self, segment_id: str) -> Label:
        """Observe an in-place edit: taint sticks regardless of content."""
        return self._taint.get(segment_id, EMPTY_LABEL)

    # -- enforcement ---------------------------------------------------------

    def taint_of(self, segment_id: str) -> Label:
        return self._taint.get(segment_id, EMPTY_LABEL)

    def check_upload(self, service_id: str, segment_id: str) -> bool:
        """True when the segment's taint may flow to the service."""
        privilege = self._policies.get(service_id).privilege
        return self.taint_of(segment_id).is_subset_of(privilege)


@dataclass
class ExternalEditor:
    """A native text editor outside the browser.

    Text pasted into it and copied back loses all browser provenance:
    the copy the editor puts on the clipboard has no source origin.
    Precise tracking is blind to whatever happened inside.
    """

    name: str = "native-editor"
    buffer: str = ""

    def paste_from(self, clipboard: Clipboard) -> None:
        self.buffer = clipboard.paste().text

    def edit(self, transform: Optional[Callable[[str], str]] = None) -> str:
        """Apply an arbitrary edit to the buffer (identity by default)."""
        if transform is not None:
            self.buffer = transform(self.buffer)
        return self.buffer

    def copy_to(self, clipboard: Clipboard) -> ClipboardEntry:
        """Copy the buffer back out — with no provenance attached."""
        return clipboard.copy(self.buffer)
