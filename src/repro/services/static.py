"""Static article pages (Drupal/WordPress-style) for text extraction.

These pages have no upload path; they exist to exercise the
Readability-style extraction heuristics (§5.1) against realistic page
shapes: an article container surrounded by navigation, sidebar and
footer boilerplate full of links.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import DocumentNotFound
from repro.services.base import CloudService


class StaticSite(CloudService):
    """Serves fixed articles at ``/article/<slug>`` with boilerplate."""

    def __init__(
        self, origin: str = "https://news.example.com", name: str = "News"
    ) -> None:
        super().__init__(origin, name)
        self._articles: Dict[str, List[str]] = {}

    def publish(self, slug: str, paragraphs: List[str]) -> None:
        """Make an article available; no client upload path exists."""
        self._articles[slug] = list(paragraphs)

    def article(self, slug: str) -> List[str]:
        if slug not in self._articles:
            raise DocumentNotFound(slug)
        return list(self._articles[slug])

    def article_url(self, slug: str) -> str:
        return self.url(f"/article/{slug}")

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        document = Document()
        slug = self._slug_from_url(url)

        nav = document.create_element("div", {"class": "nav menu"})
        for label in ("Home", "World", "Tech", "Sport"):
            link = document.create_element("a", {"href": f"/{label.lower()}"})
            link.set_text(label)
            nav.append_child(link)
        document.body.append_child(nav)

        article = document.create_element(
            "div", {"id": "article", "class": "article-content"}
        )
        paragraphs = self._articles.get(slug or "", [])
        for text in paragraphs:
            p = document.create_element("p")
            p.set_text(text)
            article.append_child(p)
        document.body.append_child(article)

        sidebar = document.create_element("div", {"class": "sidebar"})
        for i in range(5):
            link = document.create_element("a", {"href": f"/related/{i}"})
            link.set_text(f"Related story {i}")
            sidebar.append_child(link)
        document.body.append_child(sidebar)

        footer = document.create_element("div", {"class": "footer meta"})
        footer.set_text("Copyright, terms of use, privacy policy, contact us")
        document.body.append_child(footer)
        return document

    def _slug_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        prefix = "/article/"
        if path.startswith(prefix):
            return path[len(prefix):] or None
        return None

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(status=405, body="read-only service")
