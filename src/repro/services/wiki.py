"""A form-based internal wiki (paper §2's "Internal Wiki").

Pages render as static HTML — article text inside a content container,
editable through a ``<form>`` with a ``<textarea>`` — which exercises
both the Readability-style extraction path and the form-interception
path of the plug-in (§5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked
from repro.services.base import CloudService
from repro.util.text import split_paragraphs


class WikiService(CloudService):
    """Form-based wiki with per-page documents."""

    def __init__(
        self, origin: str = "https://xyz.com", name: str = "Internal Wiki"
    ) -> None:
        super().__init__(origin, name)

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        """Render ``/wiki/<page>``: article content plus the edit form."""
        document = Document()
        page_name = self._page_from_url(url) or "Home"
        content = document.create_element(
            "div", {"id": "content", "class": "article-body"}
        )
        document.body.append_child(content)

        stored = self.backend.find(self._doc_id(page_name))
        if stored is not None:
            for _par_id, text in stored.paragraphs:
                p = document.create_element("p")
                p.set_text(text)
                content.append_child(p)

        footer = document.create_element("div", {"class": "footer"})
        footer.set_text("Internal wiki - confidential")
        document.body.append_child(footer)

        form = document.create_element(
            "form", {"action": "/wiki/save", "method": "post", "id": "edit-form"}
        )
        page_field = document.create_element(
            "input", {"type": "hidden", "name": "page", "value": page_name}
        )
        body_field = document.create_element(
            "textarea", {"name": "body", "id": "edit-body"}
        )
        if stored is not None:
            body_field.set_attribute("value", stored.text())
        form.append_child(page_field)
        form.append_child(body_field)
        document.body.append_child(form)
        return document

    def _page_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        prefix = "/wiki/"
        if path.startswith(prefix) and path != prefix + "save":
            return path[len(prefix):] or None
        return None

    def _doc_id(self, page_name: str) -> str:
        return f"wiki:{page_name}"

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/wiki/save":
            page_name = request.form_data.get("page", "")
            body = request.form_data.get("body", "")
            if not page_name:
                return HttpResponse(status=400, body="missing page name")
            self.save_page(page_name, body)
            return HttpResponse(body="saved")
        return HttpResponse(status=404, body="not found")

    def save_page(self, page_name: str, body: str) -> None:
        """Backend-side write, used by request handling and test setup."""
        doc_id = self._doc_id(page_name)
        doc = self.backend.find(doc_id)
        if doc is None:
            doc = self.backend.create(title=page_name, doc_id=doc_id)
        doc.paragraphs = [
            (self.backend.new_par_id(), text) for text in split_paragraphs(body)
        ]

    def page_text(self, page_name: str) -> str:
        doc = self.backend.find(self._doc_id(page_name))
        return doc.text() if doc is not None else ""

    # -- client-side helper -------------------------------------------------

    def page_url(self, page_name: str) -> str:
        return self.url(f"/wiki/{page_name}")

    def edit(self, tab, page_name: str, body: str) -> bool:
        """Open the page, fill the edit form, and submit it.

        Returns True when the save reached the backend; False when a
        submit listener (the plug-in) cancelled it or the request was
        vetoed in flight.
        """
        tab.navigate(self.page_url(page_name))
        form = tab.document.get_element_by_id("edit-form")
        textarea = tab.document.get_element_by_id("edit-body")
        textarea.set_attribute("value", body)
        try:
            response = tab.window.submit(form)
        except RequestBlocked:
            return False
        return response is not None and response.ok
