"""Simulated cloud services and the network connecting them (paper §2, §5).

Each service models one of the interception classes the paper supports:

* :class:`DocsService` — an AJAX document editor in the style of Google
  Docs: user text lives directly in the DOM, every keystroke mutates the
  tree and syncs to the backend via XHR (mutation-observer + XHR-patch
  interception path, §5.2).
* :class:`WikiService` and :class:`InterviewTool` — form-based internal
  applications (form interception + static text extraction, §5.1).
* :class:`ForumService` — a vBulletin-style composer, also form-based.
* :class:`StaticSite` — fixed article pages for the Readability-style
  extraction heuristics.

Crucially, service backends receive data *only* through network
requests, so intercepting the request genuinely prevents disclosure.
"""

from repro.services.base import Backend, CloudService, StoredDocument
from repro.services.docs import DocsEditor, DocsService
from repro.services.forum import ForumService
from repro.services.interview import InterviewTool
from repro.services.network import FaultyNetwork, Network
from repro.services.notes import NotebookView, NotesService
from repro.services.static import StaticSite
from repro.services.wiki import WikiService

__all__ = [
    "Backend",
    "CloudService",
    "StoredDocument",
    "DocsEditor",
    "DocsService",
    "ForumService",
    "InterviewTool",
    "FaultyNetwork",
    "Network",
    "NotebookView",
    "NotesService",
    "StaticSite",
    "WikiService",
]
