"""An Evernote-style notes service — the second AJAX editor.

Structurally different from the Docs service (note cards inside a
"notes-app" container, a coarser whole-note sync protocol) but covered
by the same two browser mechanisms; supporting it took exactly one
:class:`~repro.plugin.adapters.EditorAdapter`, which is the paper's
"minimal effort" claim made concrete.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.browser.dom import Document, Element
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked, ServiceError
from repro.services.base import CloudService

NOTES_CONTAINER_ID = "notes-app"
NOTE_CLASS = "note-card"


class NotesService(CloudService):
    """Notebook-of-notes service; each note syncs wholesale via XHR."""

    def __init__(
        self, origin: str = "https://notes.example.com", name: str = "Notes"
    ) -> None:
        super().__init__(origin, name)

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        """Render ``/nb/<notebook>``: every note as a card in the app."""
        document = Document()
        app = document.create_element(
            "div", {"id": NOTES_CONTAINER_ID, "class": "notes-shell"}
        )
        document.body.append_child(app)
        notebook = self._notebook_from_url(url)
        if notebook is not None:
            stored = self.backend.find(self._doc_id(notebook))
            if stored is not None:
                for note_id, text in stored.paragraphs:
                    app.append_child(self._note_element(document, note_id, text))
        return document

    def _note_element(self, document: Document, note_id: str, text: str) -> Element:
        card = document.create_element(
            "div", {"class": NOTE_CLASS, "data-par-id": note_id}
        )
        card.set_text(text)
        return card

    def _notebook_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        prefix = "/nb/"
        if path.startswith(prefix):
            return path[len(prefix):] or None
        return None

    def _doc_id(self, notebook: str) -> str:
        return f"nb:{notebook}"

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/note/save":
            try:
                payload = json.loads(request.body or "")
            except json.JSONDecodeError:
                return HttpResponse(status=400, body="malformed note")
            notebook = payload.get("notebook")
            note_id = payload.get("note_id")
            text = payload.get("text")
            if not notebook or not note_id or not isinstance(text, str):
                return HttpResponse(status=400, body="missing fields")
            doc_id = self._doc_id(notebook)
            doc = self.backend.find(doc_id)
            if doc is None:
                doc = self.backend.create(title=notebook, doc_id=doc_id)
            if doc.find_paragraph(note_id) is None:
                doc.paragraphs.append((note_id, text))
            else:
                doc.set_paragraph(note_id, text)
            return HttpResponse(body="saved")
        return HttpResponse(status=404, body="not found")

    def notes_in(self, notebook: str) -> List[str]:
        doc = self.backend.find(self._doc_id(notebook))
        return [text for _nid, text in doc.paragraphs] if doc is not None else []

    # -- client side --------------------------------------------------------

    def notebook_url(self, notebook: str) -> str:
        return self.url(f"/nb/{notebook}")

    def open_notebook(self, tab, notebook: str) -> "NotebookView":
        tab.navigate(self.notebook_url(notebook))
        return NotebookView(self, tab, notebook)


class NotebookView:
    """Client-side notebook: create and edit note cards."""

    def __init__(self, service: NotesService, tab, notebook: str) -> None:
        self._service = service
        self._tab = tab
        self.notebook = notebook

    @property
    def app_element(self) -> Element:
        element = self._tab.document.get_element_by_id(NOTES_CONTAINER_ID)
        if element is None:
            raise ServiceError("notes app element missing from page")
        return element

    def note_elements(self) -> List[Element]:
        return self.app_element.find_all(lambda el: NOTE_CLASS in el.class_list())

    def new_note(self, text: str = "") -> Element:
        note_id = self._service.backend.new_par_id()
        element = self._service._note_element(self._tab.document, note_id, "")
        self.app_element.append_child(element)
        if text:
            self.write(element, text)
        return element

    def write(self, element: Element, text: str) -> bool:
        """Set a note's text: one DOM mutation, one whole-note sync."""
        element.set_text(text)
        note_id = element.get_attribute("data-par-id")
        xhr = self._tab.window.new_xhr()
        xhr.open("POST", self._service.url("/note/save"))
        body = json.dumps(
            {"notebook": self.notebook, "note_id": note_id, "text": text}
        )
        try:
            response = xhr.send(body)
        except RequestBlocked:
            return False
        return response.ok
