"""An AJAX document editor in the style of Google Docs (paper §5.2).

The service has the three properties that make generic interception
hard: user text is embedded directly in the DOM tree outside of input
elements, formatting is div/CSS-based rather than ``<p>``-based, and
document mutations travel to the backend via XHR on every character
change. The BrowserFlow plug-in handles it with mutation observers (to
see the text) and prototype patching (to gate the sync requests).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.browser.dom import Document, Element
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked, ServiceError
from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.incremental import EditBuffer
from repro.services.base import CloudService

#: Class name used for editor paragraphs, mirroring Docs' "kix" classes.
PARAGRAPH_CLASS = "kix-paragraph"
EDITOR_ID = "editor"


class DocsService(CloudService):
    """Document-centric cloud service with per-keystroke AJAX sync."""

    def __init__(self, origin: str = "https://docs.example.com", name: str = "Docs") -> None:
        super().__init__(origin, name)

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        """Render the editor page for ``/d/<doc_id>`` (or a new doc)."""
        document = Document()
        editor = document.create_element("div", {"id": EDITOR_ID, "class": "kix-app"})
        document.body.append_child(editor)
        doc_id = self._doc_id_from_url(url)
        if doc_id is not None:
            stored = self.backend.get(doc_id)
            for par_id, text in stored.paragraphs:
                editor.append_child(self._paragraph_element(document, par_id, text))
        return document

    def _doc_id_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        if path.startswith("/d/"):
            return path[len("/d/"):] or None
        return None

    def _paragraph_element(self, document: Document, par_id: str, text: str) -> Element:
        par = document.create_element(
            "div", {"class": PARAGRAPH_CLASS, "data-par-id": par_id}
        )
        par.set_text(text)
        return par

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/sync":
            return self._handle_sync(request)
        if request.method == "POST" and request.path == "/create":
            doc = self.backend.create(title=(request.body or "Untitled"))
            return HttpResponse(body=json.dumps({"doc_id": doc.doc_id}))
        return HttpResponse(status=404, body="not found")

    def _handle_sync(self, request: HttpRequest) -> HttpResponse:
        """Apply one document mutation.

        The wire protocol mirrors real AJAX editors (paper §5.2):
        per-keystroke ``insert``/``delete`` deltas carrying only the
        changed characters, plus ``set_paragraph`` (full replace, used
        for paste-style rewrites) and ``delete_paragraph``. A network
        observer outside the browser sees only character fragments —
        which is exactly why wire-level DLP cannot fingerprint this
        service while the in-browser plug-in can.
        """
        try:
            mutation = json.loads(request.body or "")
        except json.JSONDecodeError:
            return HttpResponse(status=400, body="malformed mutation")
        doc = self.backend.find(mutation.get("doc_id", ""))
        if doc is None:
            return HttpResponse(status=404, body="unknown document")
        op = mutation.get("op")
        if op == "set_paragraph":
            par_id = mutation["par_id"]
            text = mutation["text"]
            if doc.find_paragraph(par_id) is None:
                doc.paragraphs.append((par_id, text))
            else:
                doc.set_paragraph(par_id, text)
        elif op == "insert":
            par_id = mutation["par_id"]
            chars = mutation.get("chars", "")
            index = int(mutation.get("index", 0))
            current = doc.find_paragraph(par_id)
            if current is None:
                doc.paragraphs.append((par_id, chars))
            else:
                index = max(0, min(index, len(current)))
                doc.set_paragraph(par_id, current[:index] + chars + current[index:])
        elif op == "delete":
            par_id = mutation["par_id"]
            index = int(mutation.get("index", 0))
            count = int(mutation.get("count", 0))
            current = doc.find_paragraph(par_id)
            if current is not None:
                index = max(0, min(index, len(current)))
                doc.set_paragraph(par_id, current[:index] + current[index + count:])
        elif op == "delete_paragraph":
            par_id = mutation["par_id"]
            doc.paragraphs = [(pid, t) for pid, t in doc.paragraphs if pid != par_id]
        else:
            return HttpResponse(status=400, body=f"unknown op {op!r}")
        return HttpResponse(body="ok")

    # -- client-side editor -------------------------------------------------

    def open_editor(
        self,
        tab,
        doc_id: Optional[str] = None,
        *,
        fingerprint_config: Optional[FingerprintConfig] = None,
    ) -> "DocsEditor":
        """Create (or open) a document and return an editor bound to *tab*.

        Creation goes through the backend directly (it carries no user
        text); all subsequent text edits sync via interceptable XHRs.
        *fingerprint_config* enables client-side per-paragraph
        incremental fingerprint state on the returned editor (§13).
        """
        if doc_id is None:
            doc_id = self.backend.create().doc_id
        elif self.backend.find(doc_id) is None:
            raise ServiceError(f"unknown document {doc_id!r}")
        tab.navigate(self.url(f"/d/{doc_id}"))
        return DocsEditor(self, tab, doc_id, fingerprint_config=fingerprint_config)


class DocsEditor:
    """Client-side editing surface: DOM mutations + XHR sync.

    Mirrors how a user interacts with the editor. ``type_text`` applies
    one DOM mutation and one sync request per keystroke — the workload
    of the paper's response-time experiment (§6.2); ``paste`` applies
    the whole clipboard at once.

    When built with a *fingerprint_config* the editor also carries
    per-paragraph incremental fingerprint state (DESIGN.md §13): every
    edit is mirrored into an
    :class:`~repro.fingerprint.incremental.EditBuffer`, so
    :meth:`fingerprint_of` answers from an edit-local splice instead of
    re-running the full pipeline — the client-side half of the
    delta-aware check pipeline. Without a config (the default) the
    editor keeps no fingerprint state and edits cost exactly what they
    did before.
    """

    def __init__(
        self,
        service: DocsService,
        tab,
        doc_id: str,
        *,
        fingerprint_config: Optional[FingerprintConfig] = None,
    ) -> None:
        self._service = service
        self._tab = tab
        self.doc_id = doc_id
        self._fingerprint_config = fingerprint_config
        self._buffers: Dict[str, EditBuffer] = {}

    @property
    def window(self):
        return self._tab.window

    @property
    def editor_element(self) -> Element:
        element = self._tab.document.get_element_by_id(EDITOR_ID)
        if element is None:
            raise ServiceError("editor element missing from page")
        return element

    def paragraph_elements(self) -> List[Element]:
        return self.editor_element.find_all(
            lambda el: PARAGRAPH_CLASS in el.class_list()
        )

    def paragraph_texts(self) -> List[str]:
        return [p.text_content() for p in self.paragraph_elements()]

    def paragraph_id(self, element: Element) -> str:
        par_id = element.get_attribute("data-par-id")
        if par_id is None:
            raise ServiceError("paragraph element missing data-par-id")
        return par_id

    # -- client-side fingerprint state (§13) ---------------------------------

    def _track(self, par_id: str, text: str) -> None:
        """Mirror one edit into the paragraph's delta fingerprint state."""
        if self._fingerprint_config is None:
            return
        buffer = self._buffers.get(par_id)
        if buffer is None:
            self._buffers[par_id] = EditBuffer(self._fingerprint_config, text)
        else:
            buffer.update(text)

    def fingerprint_of(self, element: Element):
        """The paragraph's fingerprint from its incremental state.

        Requires the editor to have been opened with a
        ``fingerprint_config``; paragraphs not yet tracked (e.g. loaded
        from the rendered page) pay one full build here, every edit
        since tracking began has already been applied as a splice.
        """
        if self._fingerprint_config is None:
            raise ServiceError("editor opened without fingerprint_config")
        par_id = self.paragraph_id(element)
        buffer = self._buffers.get(par_id)
        text = element.text_content()
        if buffer is None:
            buffer = EditBuffer(self._fingerprint_config, text)
            self._buffers[par_id] = buffer
            return buffer.current()
        return buffer.update(text)

    def delta_stats(self) -> Dict[str, int]:
        """Aggregate splice/build counts across tracked paragraphs."""
        return {
            "tracked_paragraphs": len(self._buffers),
            "delta_edits": sum(b.delta_edits for b in self._buffers.values()),
            "full_builds": sum(b.full_builds for b in self._buffers.values()),
        }

    # -- editing operations -------------------------------------------------

    def new_paragraph(
        self, text: str = "", *, par_id: Optional[str] = None
    ) -> Element:
        """Append an empty paragraph, then (if text) sync its content.

        ``par_id`` lets a caller assign the paragraph id itself (the
        fleet simulator pre-assigns ids in the schedule so concurrent
        sessions produce identical segment ids run to run); by default
        the backend allocates one.
        """
        document = self._tab.document
        if par_id is None:
            par_id = self._service.backend.new_par_id()
        element = self._service._paragraph_element(document, par_id, "")
        self.editor_element.append_child(element)
        if text:
            self.set_paragraph_text(element, text)
        return element

    def set_paragraph_text(self, element: Element, text: str) -> bool:
        """Replace a paragraph's text: one mutation, one sync request.

        Returns True when the sync reached the backend, False when an
        interceptor blocked it (the DOM keeps the text either way, just
        as the real plug-in lets the user keep typing locally).
        """
        element.set_text(text)
        self._track(self.paragraph_id(element), text)
        return self._sync(element, text)

    def type_text(self, element: Element, text: str) -> int:
        """Append *text* one character at a time, syncing per keystroke.

        Each keystroke ships as an ``insert`` delta carrying only the
        typed character, like a real AJAX editor. Returns the number of
        keystrokes whose sync was delivered.
        """
        delivered = 0
        par_id = self.paragraph_id(element)
        current = element.text_content()
        for ch in text:
            index = len(current)
            current += ch
            element.set_text(current)
            self._track(par_id, current)
            if self._sync_delta(element, "insert", index=index, chars=ch):
                delivered += 1
        return delivered

    def paste(self, element: Element, text: str) -> bool:
        """Paste *text* at the end of a paragraph (one insert delta)."""
        current = element.text_content()
        element.set_text(current + text)
        self._track(self.paragraph_id(element), current + text)
        return self._sync_delta(element, "insert", index=len(current), chars=text)

    def delete_text(self, element: Element, index: int, count: int) -> bool:
        """Delete *count* characters at *index* (one delete delta)."""
        current = element.text_content()
        element.set_text(current[:index] + current[index + count:])
        self._track(
            self.paragraph_id(element), current[:index] + current[index + count:]
        )
        return self._sync_delta(element, "delete", index=index, count=count)

    def delete_paragraph(self, element: Element) -> bool:
        par_id = self.paragraph_id(element)
        self._buffers.pop(par_id, None)
        self.editor_element.remove_child(element)
        body = json.dumps(
            {"doc_id": self.doc_id, "op": "delete_paragraph", "par_id": par_id}
        )
        return self._post_sync(body)

    # -- sync plumbing --------------------------------------------------------

    def _sync(self, element: Element, text: str) -> bool:
        body = json.dumps(
            {
                "doc_id": self.doc_id,
                "op": "set_paragraph",
                "par_id": self.paragraph_id(element),
                "text": text,
            }
        )
        return self._post_sync(body)

    def _sync_delta(self, element: Element, op: str, **fields) -> bool:
        body = json.dumps(
            {
                "doc_id": self.doc_id,
                "op": op,
                "par_id": self.paragraph_id(element),
                **fields,
            }
        )
        return self._post_sync(body)

    def _post_sync(self, body: str) -> bool:
        xhr = self.window.new_xhr()
        xhr.open("POST", self._service.url("/sync"))
        xhr.set_request_header("Content-Type", "application/json")
        try:
            response = xhr.send(body)
        except RequestBlocked:
            return False
        return response.ok
