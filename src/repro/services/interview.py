"""The Interview Tool from the paper's running example (§2).

An internally-hosted, form-based application where interviewers record
candidate evaluations. Structurally a cousin of the wiki — static pages
plus a submission form — but with its own document model (one document
per candidate, one paragraph per evaluation note).
"""

from __future__ import annotations

from typing import List, Optional

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked
from repro.services.base import CloudService


class InterviewTool(CloudService):
    """Candidate-evaluation tool; one stored document per candidate."""

    def __init__(
        self, origin: str = "https://itool.xyz.com", name: str = "Interview Tool"
    ) -> None:
        super().__init__(origin, name)

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        """Render ``/candidate/<name>``: past notes plus the note form."""
        document = Document()
        candidate = self._candidate_from_url(url)
        main = document.create_element("div", {"id": "main", "class": "content"})
        document.body.append_child(main)

        if candidate is not None:
            stored = self.backend.find(self._doc_id(candidate))
            if stored is not None:
                for _par_id, text in stored.paragraphs:
                    p = document.create_element("p", {"class": "evaluation-note"})
                    p.set_text(text)
                    main.append_child(p)

        form = document.create_element(
            "form", {"action": "/evaluate", "method": "post", "id": "note-form"}
        )
        form.append_child(
            document.create_element(
                "input",
                {"type": "hidden", "name": "candidate", "value": candidate or ""},
            )
        )
        form.append_child(
            document.create_element("textarea", {"name": "note", "id": "note-body"})
        )
        document.body.append_child(form)
        return document

    def _candidate_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        prefix = "/candidate/"
        if path.startswith(prefix):
            return path[len(prefix):] or None
        return None

    def _doc_id(self, candidate: str) -> str:
        return f"candidate:{candidate}"

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/evaluate":
            candidate = request.form_data.get("candidate", "")
            note = request.form_data.get("note", "")
            if not candidate:
                return HttpResponse(status=400, body="missing candidate")
            self.add_note(candidate, note)
            return HttpResponse(body="recorded")
        return HttpResponse(status=404, body="not found")

    def add_note(self, candidate: str, note: str) -> None:
        doc_id = self._doc_id(candidate)
        doc = self.backend.find(doc_id)
        if doc is None:
            doc = self.backend.create(title=candidate, doc_id=doc_id)
        doc.paragraphs.append((self.backend.new_par_id(), note))

    def notes_for(self, candidate: str) -> List[str]:
        doc = self.backend.find(self._doc_id(candidate))
        return [text for _pid, text in doc.paragraphs] if doc is not None else []

    # -- client-side helper -------------------------------------------------

    def candidate_url(self, candidate: str) -> str:
        return self.url(f"/candidate/{candidate}")

    def submit_note(self, tab, candidate: str, note: str) -> bool:
        """Open the candidate page and submit an evaluation note."""
        tab.navigate(self.candidate_url(candidate))
        form = tab.document.get_element_by_id("note-form")
        note_field = tab.document.get_element_by_id("note-body")
        note_field.set_attribute("value", note)
        try:
            response = tab.window.submit(form)
        except RequestBlocked:
            return False
        return response is not None and response.ok
