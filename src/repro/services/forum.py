"""A vBulletin-style web forum (paper §5.1's form-interception examples)."""

from __future__ import annotations

from typing import List, Optional

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import RequestBlocked
from repro.services.base import CloudService


class ForumService(CloudService):
    """Threads of posts; posting goes through a composer form."""

    def __init__(
        self, origin: str = "https://forum.example.com", name: str = "Forum"
    ) -> None:
        super().__init__(origin, name)

    # -- page rendering ---------------------------------------------------

    def render(self, url: str) -> Document:
        """Render ``/thread/<topic>``: posts plus the reply composer."""
        document = Document()
        topic = self._topic_from_url(url) or "general"
        thread = document.create_element("div", {"id": "thread", "class": "posts"})
        document.body.append_child(thread)

        stored = self.backend.find(self._doc_id(topic))
        if stored is not None:
            for _par_id, text in stored.paragraphs:
                post = document.create_element("div", {"class": "post"})
                p = document.create_element("p")
                p.set_text(text)
                post.append_child(p)
                thread.append_child(post)

        composer = document.create_element(
            "form", {"action": "/post", "method": "post", "id": "composer"}
        )
        composer.append_child(
            document.create_element(
                "input", {"type": "hidden", "name": "topic", "value": topic}
            )
        )
        composer.append_child(
            document.create_element("textarea", {"name": "message", "id": "message"})
        )
        document.body.append_child(composer)
        return document

    def _topic_from_url(self, url: str) -> Optional[str]:
        path = url[len(self.origin):] if url.startswith(self.origin) else url
        prefix = "/thread/"
        if path.startswith(prefix):
            return path[len(prefix):] or None
        return None

    def _doc_id(self, topic: str) -> str:
        return f"thread:{topic}"

    # -- backend ----------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == "/post":
            topic = request.form_data.get("topic", "")
            message = request.form_data.get("message", "")
            if not topic or not message:
                return HttpResponse(status=400, body="missing topic or message")
            self.add_post(topic, message)
            return HttpResponse(body="posted")
        return HttpResponse(status=404, body="not found")

    def add_post(self, topic: str, message: str) -> None:
        doc_id = self._doc_id(topic)
        doc = self.backend.find(doc_id)
        if doc is None:
            doc = self.backend.create(title=topic, doc_id=doc_id)
        doc.paragraphs.append((self.backend.new_par_id(), message))

    def posts_in(self, topic: str) -> List[str]:
        doc = self.backend.find(self._doc_id(topic))
        return [text for _pid, text in doc.paragraphs] if doc is not None else []

    # -- client-side helper -------------------------------------------------

    def thread_url(self, topic: str) -> str:
        return self.url(f"/thread/{topic}")

    def post(self, tab, topic: str, message: str) -> bool:
        """Open the thread and post through the composer form."""
        tab.navigate(self.thread_url(topic))
        form = tab.document.get_element_by_id("composer")
        message_field = tab.document.get_element_by_id("message")
        message_field.set_attribute("value", message)
        try:
            response = tab.window.submit(form)
        except RequestBlocked:
            return False
        return response is not None and response.ok
