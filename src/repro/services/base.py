"""Common machinery for simulated cloud services."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import DocumentNotFound, ServiceError
from repro.util.idgen import IdGenerator


@dataclass
class StoredDocument:
    """A document as stored on a service backend.

    Paragraph ids are assigned by the service and stable across edits —
    they are what the disclosure tracker uses as segment ids.
    """

    doc_id: str
    title: str = ""
    paragraphs: List[Tuple[str, str]] = field(default_factory=list)

    def text(self) -> str:
        return "\n\n".join(text for _pid, text in self.paragraphs)

    def paragraph_ids(self) -> List[str]:
        return [pid for pid, _text in self.paragraphs]

    def find_paragraph(self, par_id: str) -> Optional[str]:
        for pid, text in self.paragraphs:
            if pid == par_id:
                return text
        return None

    def set_paragraph(self, par_id: str, text: str) -> None:
        for i, (pid, _old) in enumerate(self.paragraphs):
            if pid == par_id:
                self.paragraphs[i] = (pid, text)
                return
        raise ServiceError(f"unknown paragraph {par_id!r} in {self.doc_id!r}")


class Backend:
    """Server-side document store for one service.

    Reached exclusively via :meth:`CloudService.handle_request`; local
    (client-side) state never writes here directly, so a blocked request
    really does keep data off the service.
    """

    def __init__(self, id_prefix: str) -> None:
        self._docs: Dict[str, StoredDocument] = {}
        self._doc_ids = IdGenerator(f"{id_prefix}-doc")
        self._par_ids = IdGenerator(f"{id_prefix}-par")

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def new_doc_id(self) -> str:
        return self._doc_ids.next()

    def new_par_id(self) -> str:
        return self._par_ids.next()

    def create(self, title: str = "", doc_id: Optional[str] = None) -> StoredDocument:
        doc_id = doc_id or self.new_doc_id()
        if doc_id in self._docs:
            raise ServiceError(f"document already exists: {doc_id!r}")
        doc = StoredDocument(doc_id=doc_id, title=title)
        self._docs[doc_id] = doc
        return doc

    def get(self, doc_id: str) -> StoredDocument:
        doc = self._docs.get(doc_id)
        if doc is None:
            raise DocumentNotFound(doc_id)
        return doc

    def find(self, doc_id: str) -> Optional[StoredDocument]:
        return self._docs.get(doc_id)

    def delete(self, doc_id: str) -> None:
        if doc_id not in self._docs:
            raise DocumentNotFound(doc_id)
        del self._docs[doc_id]

    def all_documents(self) -> List[StoredDocument]:
        return list(self._docs.values())


class CloudService:
    """Base class for simulated services.

    Subclasses implement :meth:`render` (build the page DOM for a URL)
    and :meth:`handle_request` (the backend's request handler). The
    ``origin`` doubles as the service id in the policy store, matching
    how the plug-in identifies services by URL origin.
    """

    def __init__(self, origin: str, name: str) -> None:
        if "://" not in origin:
            raise ServiceError(f"origin must include a scheme: {origin!r}")
        self.origin = origin.rstrip("/")
        self.name = name
        self.backend = Backend(id_prefix=name.lower().replace(" ", "-"))
        self.network = None  # set on Network.register
        self._windows: List[object] = []

    # -- page side --------------------------------------------------------

    def render(self, url: str) -> Document:
        raise NotImplementedError

    def attach_window(self, window) -> None:
        """Called when a page of this service loads into a window."""
        self._windows.append(window)

    def url(self, path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return self.origin + path

    # -- backend side -------------------------------------------------------

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        raise NotImplementedError
