"""The simulated network: routes requests and page loads to services.

:class:`FaultyNetwork` wraps a healthy :class:`Network` with seeded
fault injection (latency, drops, 5xx) so integration tests and the
concurrent load driver can exercise the degradation paths of §6.2 —
a dropped or slow upload must surface as a client-visible failure, not
a silent hang.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import NetworkError
from repro.obs.registry import MetricsRegistry, MetricsScope
from repro.util.faults import FaultInjector


class Network:
    """Origin-keyed service registry with a request log.

    The log records every request that actually *reached* a backend —
    requests vetoed by an interceptor raise before delivery and never
    appear, which is what the integration tests assert on.
    """

    def __init__(self) -> None:
        self._services: Dict[str, "CloudService"] = {}
        self.request_log: List[Tuple[HttpRequest, HttpResponse]] = []
        # Network-level interceptors (e.g. a DLP firewall, §2.2): they
        # run on every outgoing request *after* it leaves the browser
        # and may veto it by raising RequestBlocked.
        self._interceptors: List = []

    def add_interceptor(self, interceptor) -> None:
        """Install a callable invoked with every outgoing request.

        This models middleboxes that sit between the client and the
        cloud (application-level firewalls); unlike the in-browser
        plug-in they only ever see the wire format.
        """
        self._interceptors.append(interceptor)

    def register(self, service) -> None:
        if service.origin in self._services:
            raise NetworkError(f"origin already registered: {service.origin!r}")
        self._services[service.origin] = service
        service.network = self

    def service_at(self, origin: str):
        service = self._services.get(origin)
        if service is None:
            raise NetworkError(f"no service at origin {origin!r}")
        return service

    def services(self) -> List[str]:
        return sorted(self._services)

    def deliver(self, request: HttpRequest) -> HttpResponse:
        """Deliver a request to the origin's service backend."""
        for interceptor in self._interceptors:
            interceptor(request)
        service = self._services.get(request.origin)
        if service is None:
            response = HttpResponse(status=502, body=f"unknown origin {request.origin}")
        else:
            response = service.handle_request(request)
        self.request_log.append((request, response))
        return response

    def render_page(self, url: str) -> Tuple[Document, Optional[object]]:
        """Render the page at *url*; page loads are not logged as uploads."""
        request = HttpRequest(method="GET", url=url)
        service = self._services.get(request.origin)
        if service is None:
            raise NetworkError(f"no service at origin {request.origin!r}")
        return service.render(url), service

    def requests_to(self, origin: str) -> List[HttpRequest]:
        return [req for req, _resp in self.request_log if req.origin == origin]


class FaultyNetwork:
    """A :class:`Network` proxy that injects deterministic faults.

    Each delivery consults the injector *before* the wrapped network:

    * ``drop`` — the request is lost; the caller sees a
      :class:`NetworkError` and the backend never runs (nothing is
      appended to the wrapped request log).
    * ``error`` — the caller gets an HTTP 5xx response synthesised at
      the "edge"; the backend never runs.
    * ``latency`` — the injected delay is recorded in
      :attr:`latencies` (and optionally slept via *sleep*), then the
      request is delivered normally.

    Everything else (service registry, page rendering, request log)
    delegates to the wrapped network, so a ``FaultyNetwork`` can stand
    in anywhere a ``Network`` is expected.
    """

    def __init__(
        self,
        network: Network,
        faults: FaultInjector,
        *,
        sleep=None,
        scope: Optional[MetricsScope] = None,
    ) -> None:
        self._network = network
        self._faults = faults
        self._sleep = sleep
        #: Injected latencies in delivery order, for exact assertions.
        self.latencies: List[float] = []
        # Delivery counters in a registry scope (private ``network.``
        # prefix unless the load driver passes a shared one); stats()
        # is a thin view over the same instruments.
        if scope is None:
            scope = MetricsRegistry().scope("network.")
        self.metrics = scope
        self._counters = {
            name: scope.counter(name)
            for name in ("delivered", "dropped", "errored", "delayed")
        }

    @property
    def wrapped(self) -> Network:
        return self._network

    def deliver(self, request: HttpRequest) -> HttpResponse:
        fault = self._faults.next_fault()
        if fault.kind == "drop":
            self._counters["dropped"].inc()
            raise NetworkError(f"request to {request.url!r} dropped (injected fault)")
        if fault.kind == "error":
            self._counters["errored"].inc()
            return HttpResponse(
                status=fault.status, body=f"injected fault: HTTP {fault.status}"
            )
        if fault.kind == "latency":
            self._counters["delayed"].inc()
            self.latencies.append(fault.latency)
            if self._sleep is not None:
                self._sleep(fault.latency)
        self._counters["delivered"].inc()
        return self._network.deliver(request)

    def stats(self) -> Dict[str, int]:
        """Delivery/fault counters plus the injector's per-kind counts.

        The delivery fields are a thin view over the network's registry
        scope, field-identical to ``metrics.snapshot()``.
        """
        combined = {name: c.value for name, c in self._counters.items()}
        combined.update(self._faults.stats())
        return combined

    def __getattr__(self, name: str):
        # register / service_at / render_page / request_log / ...
        return getattr(self._network, name)
