"""The simulated network: routes requests and page loads to services."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.errors import NetworkError


class Network:
    """Origin-keyed service registry with a request log.

    The log records every request that actually *reached* a backend —
    requests vetoed by an interceptor raise before delivery and never
    appear, which is what the integration tests assert on.
    """

    def __init__(self) -> None:
        self._services: Dict[str, "CloudService"] = {}
        self.request_log: List[Tuple[HttpRequest, HttpResponse]] = []
        # Network-level interceptors (e.g. a DLP firewall, §2.2): they
        # run on every outgoing request *after* it leaves the browser
        # and may veto it by raising RequestBlocked.
        self._interceptors: List = []

    def add_interceptor(self, interceptor) -> None:
        """Install a callable invoked with every outgoing request.

        This models middleboxes that sit between the client and the
        cloud (application-level firewalls); unlike the in-browser
        plug-in they only ever see the wire format.
        """
        self._interceptors.append(interceptor)

    def register(self, service) -> None:
        if service.origin in self._services:
            raise NetworkError(f"origin already registered: {service.origin!r}")
        self._services[service.origin] = service
        service.network = self

    def service_at(self, origin: str):
        service = self._services.get(origin)
        if service is None:
            raise NetworkError(f"no service at origin {origin!r}")
        return service

    def services(self) -> List[str]:
        return sorted(self._services)

    def deliver(self, request: HttpRequest) -> HttpResponse:
        """Deliver a request to the origin's service backend."""
        for interceptor in self._interceptors:
            interceptor(request)
        service = self._services.get(request.origin)
        if service is None:
            response = HttpResponse(status=502, body=f"unknown origin {request.origin}")
        else:
            response = service.handle_request(request)
        self.request_log.append((request, response))
        return response

    def render_page(self, url: str) -> Tuple[Document, Optional[object]]:
        """Render the page at *url*; page loads are not logged as uploads."""
        request = HttpRequest(method="GET", url=url)
        service = self._services.get(request.origin)
        if service is None:
            raise NetworkError(f"no service at origin {request.origin!r}")
        return service.render(url), service

    def requests_to(self, origin: str) -> List[HttpRequest]:
        return [req for req, _resp in self.request_log if req.origin == origin]
