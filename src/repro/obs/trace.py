"""Structured trace spans for the interception pipeline.

One disclosure decision crosses five layers — interception, text
normalisation/fingerprinting, the Algorithm-1 sweep, the TDM label
check, and the enforcement decision — and until now the only visible
output was a single end-to-end latency. A :class:`Tracer` records one
nested span tree per pipeline operation so ``repro trace`` (and the
Figure-12/13 benchmark harness) can show where a decision spent its
time and what each stage concluded.

Instrumented code never receives a tracer explicitly: it calls the
module-level :func:`span` helper, which consults a ``ContextVar``. With
no tracer active (the common case — every hot-path caller) the helper
returns a shared no-op span whose context-manager enter/exit does
nothing, so tracing costs one context-variable read per stage when off.
Activation is scoped with :func:`tracing`::

    tracer = Tracer()
    with tracing(tracer):
        engine.disclosing_sources(fingerprint=fp)
    print(json.dumps(tracer.export()))

Timestamps come from the tracer's :class:`~repro.util.clock.Clock`
(never ``time.*`` directly); tests pass a ``LogicalClock`` and get
deterministic start/duration values.

The ``ContextVar`` gives each thread (and asyncio task) its own
activation and span stack, so two threads tracing concurrently cannot
interleave their trees.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro.util.clock import Clock, SystemClock

#: Version stamp on exported trace documents; bump on schema changes.
TRACE_SCHEMA_VERSION = 1


class TraceSpan:
    """One pipeline stage: name, timing, attributes, child spans."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = {}
        self.children: List["TraceSpan"] = []

    def set(self, **attributes: object) -> "TraceSpan":
        """Attach result attributes (candidate counts, verdicts, …)."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def walk(self) -> Iterator["TraceSpan"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """Shared no-op stand-in returned when no tracer is active."""

    __slots__ = ()

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records span trees; one finished root per traced operation."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        #: Finished root spans in completion order.
        self.roots: List[TraceSpan] = []
        # Per-thread/task open-span stack: ContextVar default is shared
        # across threads, so each stack access copies-on-write.
        self._stack: ContextVar[tuple] = ContextVar(
            "repro-trace-stack", default=()
        )

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[TraceSpan]:
        """Open a span; nests under the innermost open span, if any."""
        opened = TraceSpan(name, self._clock.now())
        opened.attributes.update(attributes)
        stack = self._stack.get()
        token = self._stack.set(stack + (opened,))
        try:
            yield opened
        finally:
            opened.end = self._clock.now()
            self._stack.reset(token)
            if stack:
                stack[-1].children.append(opened)
            else:
                self.roots.append(opened)

    def export(self) -> Dict[str, object]:
        """The finished span forest as a JSON-ready document."""
        return {
            "version": TRACE_SCHEMA_VERSION,
            "spans": [root.to_dict() for root in self.roots],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)


_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar("repro-tracer", default=None)


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this context, or None."""
    return _ACTIVE.get()


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Activate *tracer* for the duration of the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attributes: object):
    """A span on the active tracer, or a shared no-op when tracing is off.

    The instrumentation entry point: pipeline stages wrap themselves in
    ``with span("algorithm1") as sp: ... sp.set(candidates=n)`` and pay
    one ``ContextVar`` read when no tracer is active.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)
