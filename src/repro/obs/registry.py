"""The metrics registry: one namespace for every counter in the system.

PR 2 and PR 3 grew counters organically — the engine kept a private
dict, the reader–writer lock exposed public ints, the decision cache
had attributes, the lookup server held a mutex-guarded dict — seven
incompatible ``stats()`` shapes. This module unifies them: every
component creates its instruments in a :class:`MetricsRegistry` (its
own private one by default, or a shared one passed down from the
composition root), and the legacy ``stats()`` dicts become thin views
that read the registry. A differential test asserts the two stay
field-identical.

Three instrument kinds:

* :class:`Counter` — a monotonic integer. Increments are a plain
  ``+=`` with **no internal lock**, deliberately: every counter in this
  codebase is already synchronised by its owner (the rwlock increments
  under its condition variable, the cache under its mutex, the engine's
  query counters under the read lock where they are documented as
  approximate under contention). Adding a second lock per increment
  would tax the hot Algorithm-1 sweep for nothing, so the contract is
  exactly the one the replaced ints had: exact when the owner
  serialises increments, monotonic-but-approximate otherwise.
* :class:`Gauge` — a point-in-time value, either set explicitly or
  computed by a callback (``len(segment_db)`` style derived values).
* :class:`Histogram` — a **deterministic fixed-bucket** latency
  histogram. Bucket boundaries are chosen at construction and never
  rebalanced, so two runs over the same operations land observations in
  the same buckets. Durations come from :meth:`MetricsRegistry.timer`,
  which reads the registry's :class:`~repro.util.clock.Clock` — never
  ``time.*`` directly — so tests inject a ``LogicalClock`` and get
  bit-identical histograms.

:class:`NullRegistry` is the counters-off path: it hands out shared
no-op instruments so a component can be built with metrics disabled and
the hot paths skip even the ``+=``. The benchmark harness asserts the
enabled path stays within 10% of this one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.util.clock import Clock, SystemClock

#: Fixed latency bucket upper bounds in seconds (a final +inf bucket is
#: implicit). Spans the per-keystroke decision range the paper reports:
#: 10 µs index sweeps up to the 200 ms tail of Figure 12.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.2, 1.0,
)

#: Flat snapshot value: counters/gauges are numbers, histograms nest.
SnapshotValue = Union[int, float, Dict[str, object]]


class Counter:
    """A monotonic counter. Synchronisation is the owner's concern."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, delta: int = 1) -> None:
        self._value += delta

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: set explicitly or computed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value: float = 0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum, mutex-guarded.

    Buckets are cumulative-free: ``counts[i]`` holds observations with
    ``value <= bounds[i]`` (and greater than the previous bound); the
    last slot is the +inf overflow. Observation is O(log buckets) and
    happens once per *operation* (a query, a lookup), never per hash,
    so the mutex is off the per-element hot path.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "_mutex")

    def __init__(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._mutex = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._mutex:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def snapshot(self) -> Dict[str, object]:
        """Bucket counts plus exact count/sum, JSON-ready."""
        with self._mutex:
            counts = list(self.counts)
            count = self.count
            total = self.sum
        buckets = {f"le_{bound:g}": n for bound, n in zip(self.bounds, counts)}
        buckets["le_inf"] = counts[-1]
        return {"count": count, "sum": total, "buckets": buckets}


class MetricsScope:
    """A registry view that prefixes every instrument name.

    Components hold a scope (``engine.paragraph.``, ``lock.`` …) so a
    shared registry keeps their namespaces apart while a private one
    still produces the same names.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def registry(self) -> "MetricsRegistry":
        return self._registry

    @property
    def prefix(self) -> str:
        return self._prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._registry.gauge(self._prefix + name, fn)

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._registry.histogram(self._prefix + name, buckets)

    def timer(self, name: str):
        return self._registry.timer(self._prefix + name)

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """This scope's slice of the registry, names unprefixed."""
        prefix = self._prefix
        return {
            name[len(prefix):]: value
            for name, value in self._registry.snapshot().items()
            if name.startswith(prefix)
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    Args:
        clock: timestamp source for :meth:`timer`. Defaults to the
            monotonic :class:`~repro.util.clock.SystemClock`; tests pass
            a :class:`~repro.util.clock.LogicalClock` for deterministic
            histogram contents. The registry never reads wall time
            directly.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self._mutex = threading.Lock()
        self._instruments: Dict[str, object] = {}

    @property
    def clock(self) -> Clock:
        return self._clock

    def _get_or_create(self, name: str, kind, factory):
        with self._mutex:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is None:
            raise ValueError(f"gauge {name!r} already registered without a callback")
        return gauge

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block via the registry clock into histogram *name*."""
        histogram = self.histogram(name)
        clock = self._clock
        start = clock.now()
        try:
            yield
        finally:
            histogram.observe(clock.now() - start)

    def scope(self, prefix: str) -> MetricsScope:
        return MetricsScope(self, prefix)

    def names(self) -> List[str]:
        with self._mutex:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """Every instrument's current value, flat by name.

        Counters and gauges appear as numbers; histograms as nested
        ``{count, sum, buckets}`` dicts. Callback gauges are evaluated
        outside the registry mutex (they may take component locks).
        """
        with self._mutex:
            instruments = list(self._instruments.items())
        out: Dict[str, SnapshotValue] = {}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, delta: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


@contextmanager
def _null_timer() -> Iterator[None]:
    yield


class NullRegistry(MetricsRegistry):
    """The counters-off path: shared no-op instruments, empty snapshots.

    Components built with ``registry=NULL_REGISTRY`` skip all counter
    arithmetic; legacy ``stats()`` views then report zeros (and derived
    callback gauges are never registered, so database sizes disappear
    from snapshots too). Used by the overhead benchmark as the baseline
    the metrics-enabled path must stay within 10% of.
    """

    def __init__(self) -> None:
        super().__init__(clock=None)
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def timer(self, name: str):
        return _null_timer()

    def snapshot(self) -> Dict[str, SnapshotValue]:
        return {}


#: Shared counters-off registry; safe to reuse everywhere (stateless).
NULL_REGISTRY = NullRegistry()


def diff_snapshots(
    before: Mapping[str, SnapshotValue], after: Mapping[str, SnapshotValue]
) -> Dict[str, SnapshotValue]:
    """Per-name delta of two snapshots (the benchmark-harness view).

    Numeric entries subtract; histogram entries subtract count/sum and
    per-bucket counts. Names only present in *after* pass through
    unchanged (their implicit before-value is zero).
    """
    out: Dict[str, SnapshotValue] = {}
    for name, value in after.items():
        prev = before.get(name)
        if isinstance(value, dict):
            prev = prev if isinstance(prev, dict) else {"count": 0, "sum": 0.0, "buckets": {}}
            prev_buckets = prev.get("buckets", {})
            out[name] = {
                "count": value["count"] - prev.get("count", 0),
                "sum": value["sum"] - prev.get("sum", 0.0),
                "buckets": {
                    bucket: n - prev_buckets.get(bucket, 0)
                    for bucket, n in value["buckets"].items()
                },
            }
        elif prev is None:
            out[name] = value
        else:
            out[name] = value - prev  # type: ignore[operator]
    return out
