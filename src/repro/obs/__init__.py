"""Observability layer: metrics registry + pipeline trace spans.

Every counter surface in the system (engine, lock, caches, lookup
service, fault injectors, network, DLP firewall) registers its
instruments here; legacy per-component ``stats()`` dicts are thin views
over the registry. :mod:`repro.obs.trace` adds nested span trees for
the intercept → fingerprint → Algorithm-1 → label-check → enforcement
pipeline, surfaced through ``repro trace`` and the benchmark harness.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    NullRegistry,
    diff_snapshots,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSpan,
    current_tracer,
    span,
    tracing,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NullRegistry",
    "diff_snapshots",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "TraceSpan",
    "current_tracer",
    "span",
    "tracing",
]
