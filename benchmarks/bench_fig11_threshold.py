"""Figure 11 — impact of the paragraph disclosure threshold Tpar.

Paper shape: the ratio of BrowserFlow-detected over expert-reported
disclosure stays within ~10% of 1 for Tpar in [0.2, 0.8] and degrades
at the extremes (false negatives at high Tpar). Based on this the paper
adopts Tpar = 0.5.
"""

from repro.eval import figure11_threshold_sweep
from repro.eval.reporting import format_series
from repro.fingerprint.config import PAPER_CONFIG

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_figure11_threshold_sweep(benchmark, report, manuals_corpus):
    sweep = benchmark(
        figure11_threshold_sweep,
        manuals_corpus,
        config=PAPER_CONFIG,
        thresholds=THRESHOLDS,
    )
    report(
        format_series(
            {"detected/ground-truth": [(t, r) for t, r in sweep]},
            title="Figure 11: Impact of paragraph disclosure threshold",
            x_label="Tpar",
            y_label="ratio",
        )
    )
    ratios = dict(sweep)
    # Agreement band: within ~15% of the expert for mid thresholds.
    for t in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7):
        assert 0.85 <= ratios[t] <= 1.15, (t, ratios[t])
    # Degradation outside the band (false negatives at high Tpar).
    assert ratios[1.0] < ratios[0.5]
