"""Ablation — incremental vs batch fingerprinting while typing.

The paper's per-keystroke pipeline (§4.3, §6.2) needs the edited
paragraph's fingerprint on every key press. Re-running the batch
pipeline costs O(paragraph) per keystroke — O(n²) for typing a whole
paragraph — while the incremental fingerprinter pays O(1) amortised.
Both produce bit-identical fingerprints (property-tested), so this is a
pure performance trade.
"""

import random
import time

from repro.datasets.synthesis import TextSynthesizer
from repro.eval.reporting import format_table
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import PAPER_CONFIG
from repro.fingerprint.incremental import IncrementalFingerprinter


def _type_batch(text):
    fingerprinter = Fingerprinter(PAPER_CONFIG)
    current = ""
    started = time.perf_counter()
    for ch in text:
        current += ch
        fp = fingerprinter.fingerprint(current)
    return time.perf_counter() - started, fp


def _type_incremental(text):
    inc = IncrementalFingerprinter(PAPER_CONFIG)
    started = time.perf_counter()
    for ch in text:
        inc.append(ch)
        fp = inc.current()
    return time.perf_counter() - started, fp


def test_ablation_incremental_fingerprinting(benchmark, report):
    rng = random.Random("ablation-incremental")
    synth = TextSynthesizer("fiction", rng)
    text = " ".join(synth.paragraph(4, 6) for _ in range(3))[:1500]

    incremental_time, fp_inc = benchmark.pedantic(
        _type_incremental, args=(text,), iterations=1, rounds=1
    )
    batch_time, fp_batch = _type_batch(text)

    report(
        format_table(
            ["Variant", "Total time (s)", "Per keystroke (us)", "Keystrokes"],
            [
                ["incremental", incremental_time,
                 1e6 * incremental_time / len(text), len(text)],
                ["batch re-fingerprint", batch_time,
                 1e6 * batch_time / len(text), len(text)],
            ],
            title="Ablation: incremental vs batch fingerprinting while typing",
        )
    )
    # Identical output...
    assert fp_inc.hashes == fp_batch.hashes
    # ...at a fraction of the cost.
    assert incremental_time < batch_time / 3
