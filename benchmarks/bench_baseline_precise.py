"""Baseline — precise clipboard/taint tracking vs imprecise tracking.

The paper's §1 names two challenges precise tracking cannot meet:
(i) users move and modify text in arbitrary ways, including through
applications outside the browser; (ii) tracking must account for
*decreased* disclosure — heavily edited text becomes safe to share.
This benchmark runs four transfer scenarios through both mechanisms and
scores correct decisions:

1. direct copy/paste of sensitive text        (leak: both should block)
2. retyping the sensitive text from memory    (leak: only similarity sees it)
3. round-trip through a native editor, light edit (leak: provenance lost)
4. full rewrite until nothing is disclosed    (safe: taint over-blocks)
"""

import random

from repro.baselines import ExternalEditor, PreciseClipboardTracker
from repro.browser.clipboard import Clipboard
from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.eval.reporting import format_table
from repro.fingerprint.config import PAPER_CONFIG
from repro.eval.experiments import DOCS_SERVICE, LIBRARY_SERVICE
from repro.tdm import Label, PolicyStore, TextDisclosureModel

N_CASES = 10


def _policies():
    policies = PolicyStore()
    policies.register_service(
        LIBRARY_SERVICE, privilege=Label.of("lib"), confidentiality=Label.of("lib")
    )
    policies.register_service(DOCS_SERVICE)
    return policies


def _run_scenarios():
    """Returns per-scenario correct-decision counts for both trackers."""
    rng = random.Random("baseline-precise")
    synth = TextSynthesizer("mysql", rng)
    editor_model = EditModel(synth, rng)

    policies = _policies()
    model = TextDisclosureModel(policies, PAPER_CONFIG)
    precise = PreciseClipboardTracker(policies)
    clipboard = Clipboard()

    correct = {
        "browserflow": {"copy-paste": 0, "retyped": 0, "external-edit": 0,
                        "full-rewrite": 0},
        "precise": {"copy-paste": 0, "retyped": 0, "external-edit": 0,
                    "full-rewrite": 0},
    }

    for i in range(N_CASES):
        secret = synth.paragraph(4, 6)
        src_seg = f"{LIBRARY_SERVICE}|doc{i}#p0"
        model.observe(LIBRARY_SERVICE, f"{LIBRARY_SERVICE}|doc{i}",
                      [(src_seg, secret)])

        # 1. Direct copy/paste (a leak; blocking is correct).
        entry = clipboard.copy(secret, source_origin=LIBRARY_SERVICE)
        precise.on_copy(entry)
        seg = f"{DOCS_SERVICE}|cp{i}#p0"
        precise.on_paste(seg, entry)
        if not precise.check_upload(DOCS_SERVICE, seg):
            correct["precise"]["copy-paste"] += 1
        decision = model.check_upload(DOCS_SERVICE, f"cp{i}", [(seg, secret)])
        if not decision.allowed:
            correct["browserflow"]["copy-paste"] += 1

        # 2. Retyped from memory (a leak; clipboard never involved).
        seg = f"{DOCS_SERVICE}|rt{i}#p0"
        precise.on_type(seg)
        if not precise.check_upload(DOCS_SERVICE, seg):
            correct["precise"]["retyped"] += 1
        decision = model.check_upload(DOCS_SERVICE, f"rt{i}", [(seg, secret)])
        if not decision.allowed:
            correct["browserflow"]["retyped"] += 1

        # 3. External-editor round trip with a light edit (still a leak).
        entry = clipboard.copy(secret, source_origin=LIBRARY_SERVICE)
        precise.on_copy(entry)
        native = ExternalEditor()
        native.paste_from(clipboard)
        lightly_edited = native.edit(
            lambda text: editor_model.substitute_words(text, 0.05)
        )
        laundered = native.copy_to(clipboard)
        precise.on_copy(laundered)
        seg = f"{DOCS_SERVICE}|xe{i}#p0"
        precise.on_paste(seg, laundered)
        if not precise.check_upload(DOCS_SERVICE, seg):
            correct["precise"]["external-edit"] += 1
        decision = model.check_upload(
            DOCS_SERVICE, f"xe{i}", [(seg, lightly_edited)]
        )
        if not decision.allowed:
            correct["browserflow"]["external-edit"] += 1

        # 4. Full rewrite (safe to share; allowing is correct).
        entry = clipboard.copy(secret, source_origin=LIBRARY_SERVICE)
        precise.on_copy(entry)
        seg = f"{DOCS_SERVICE}|fr{i}#p0"
        precise.on_paste(seg, entry)
        rewritten = synth.paragraph(4, 6)  # shares no content
        precise.on_edit(seg)
        if precise.check_upload(DOCS_SERVICE, seg):
            correct["precise"]["full-rewrite"] += 1
        decision = model.check_upload(DOCS_SERVICE, f"fr{i}", [(seg, rewritten)])
        if decision.allowed:
            correct["browserflow"]["full-rewrite"] += 1

    return correct


def test_baseline_precise_tracking(benchmark, report):
    correct = benchmark.pedantic(_run_scenarios, iterations=1, rounds=1)
    bf, pr = correct["browserflow"], correct["precise"]
    report(
        format_table(
            ["Scenario", "Ground truth", "BrowserFlow correct", "Precise correct",
             "Cases"],
            [
                ["direct copy/paste", "leak", bf["copy-paste"], pr["copy-paste"], N_CASES],
                ["retyped from memory", "leak", bf["retyped"], pr["retyped"], N_CASES],
                ["external editor, light edit", "leak", bf["external-edit"],
                 pr["external-edit"], N_CASES],
                ["full rewrite", "safe", bf["full-rewrite"], pr["full-rewrite"], N_CASES],
            ],
            title="Baseline: imprecise (similarity) vs precise (taint) tracking",
        )
    )
    # Both catch the observed copy/paste.
    assert bf["copy-paste"] == N_CASES and pr["copy-paste"] == N_CASES
    # Only similarity catches unobserved channels (challenge (i)).
    assert bf["retyped"] == N_CASES and pr["retyped"] == 0
    assert bf["external-edit"] == N_CASES and pr["external-edit"] == 0
    # Only similarity releases rewritten text (challenge (ii)).
    assert bf["full-rewrite"] == N_CASES and pr["full-rewrite"] == 0
