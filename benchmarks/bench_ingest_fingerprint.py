"""Ingest throughput — reference pipeline vs fused kernel (MB/s).

The paper's S1–S4 ingest sits on the hot path of every observed page
and corpus load. This benchmark measures per-stage and end-to-end
throughput of the three ingest paths over the Wikipedia and manuals
corpora, proves the kernels hash-identical to the reference pipeline
before timing anything, and surfaces the per-stage latency histograms
the fingerprinter records into a shared registry.

``tools/bench_to_json.py`` runs the same measurement (same module) to
refresh the committed ``BENCH_fingerprint.json`` trajectory file.
"""

from repro.eval.ingest_bench import (
    available_paths,
    check_equivalence,
    corpus_texts,
    measure_corpus,
)
from repro.eval.reporting import format_histograms, format_table
from repro.fingerprint import Fingerprinter, HAS_NUMPY
from repro.fingerprint.config import PAPER_CONFIG
from repro.obs.registry import MetricsRegistry

# Smoke-mode CI measures tiny corpora where MB/s is noisy, so the
# asserted floors sit well under the speedups a real run shows
# (BENCH_fingerprint.json: pure ≈ 2.3–3×, numpy ≈ 6–20×).
PURE_SPEEDUP_FLOOR = 1.5
NUMPY_SPEEDUP_FLOOR = 3.0


def _report_corpus(name, texts, report):
    config = PAPER_CONFIG
    compared = check_equivalence(texts, config, sample=25)
    results = measure_corpus(texts, config)
    rows = []
    for path in available_paths(config):
        block = results["paths"][path]
        rows.append(
            [
                path,
                block["normalize_mbps"],
                block["hash_mbps"],
                block["winnow_mbps"],
                block["total_mbps"],
                results["speedup"].get(path, 1.0),
            ]
        )
    report(
        format_table(
            ["Path", "S1 MB/s", "S2 MB/s", "S3/S4 MB/s", "Total MB/s", "Speedup"],
            rows,
            title=(
                f"Ingest throughput: {name} "
                f"({results['bytes']} bytes, {results['texts']} texts, "
                f"equivalence checked on {compared})"
            ),
        )
    )
    return results


def test_ingest_wikipedia(benchmark, report, wikipedia_corpus):
    texts = corpus_texts(wikipedia_corpus)
    results = _report_corpus("wikipedia", texts, report)
    speedup = results["speedup"]
    assert speedup["kernel_pure"] >= PURE_SPEEDUP_FLOOR
    if HAS_NUMPY:
        assert speedup["kernel_numpy"] >= NUMPY_SPEEDUP_FLOOR

    fingerprinter = Fingerprinter(PAPER_CONFIG)
    sample = texts[: max(1, len(texts) // 20)]
    benchmark(lambda: [fingerprinter.fingerprint(t) for t in sample])


def test_ingest_manuals(benchmark, report, manuals_corpus):
    texts = corpus_texts(manuals_corpus)
    results = _report_corpus("manuals", texts, report)
    assert results["speedup"]["kernel_pure"] >= PURE_SPEEDUP_FLOOR

    # The per-stage histograms the satellite wires through the registry:
    # a Fingerprinter built over a registry lands S1/S2/S3-4 latency in
    # fingerprint.normalize / .hash / .winnow.
    registry = MetricsRegistry()
    fingerprinter = Fingerprinter(PAPER_CONFIG, registry=registry)
    benchmark(lambda: [fingerprinter.fingerprint(t) for t in texts])
    snapshot = registry.snapshot()
    for stage in ("normalize", "hash", "winnow"):
        name = f"fingerprint.{stage}"
        assert name in snapshot and snapshot[name]["count"] > 0
    report(
        format_histograms(
            snapshot, title="Per-stage ingest latency (kernel path)"
        )
    )
