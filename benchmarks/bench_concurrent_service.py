"""Multi-client load driver for the shared lookup service (paper §5, §6.2).

Eight client threads hammer one shared :class:`LookupServer` — the
deployment shape of Figure 1, where every browser plug-in instance
queries the same per-enterprise hash database — while a seeded
:class:`FaultInjector` degrades a fraction of requests (latency, drops,
5xx). The paper's §6.2 requirement is that a slow or dead lookup never
wedges the editor: every request must resolve, either served within the
timeout budget or explicitly degraded after bounded retries.

Reported: the client-observed latency CDF next to the server / client /
lock / cache counters, so contention and fault handling are visible
alongside the timings.
"""

import random
import threading
import time

from repro.eval.reporting import format_cdf_summary, format_counters, format_snapshot
from repro.fingerprint.config import PAPER_CONFIG
from repro.obs import diff_snapshots
from repro.plugin.lookup import PolicyLookup
from repro.plugin.server import FailureMode, LookupClient, LookupServer
from repro.tdm import Label, PolicyStore, TextDisclosureModel
from repro.util.faults import FaultInjector
from repro.util.stats import percentile

from conftest import SEED, scaled

LIBRARY = "https://library.example.com"
DOCS = "https://docs.example.com"
N_CLIENTS = 8


def _build_server(ebooks) -> LookupServer:
    policies = PolicyStore()
    policies.register_service(
        LIBRARY, privilege=Label.of("lib"), confidentiality=Label.of("lib")
    )
    policies.register_service(DOCS)
    model = TextDisclosureModel(policies, PAPER_CONFIG)
    for book in ebooks:
        doc_id = f"{LIBRARY}|{book.book_id}"
        model.observe(
            LIBRARY,
            doc_id,
            [(f"{doc_id}#p{i}", text) for i, text in enumerate(book.paragraphs)],
        )
    faults = FaultInjector(
        seed=SEED,
        drop_rate=0.05,
        error_rate=0.05,
        latency_rate=0.15,
        latency_range=(0.0, 0.04),
    )
    return LookupServer(PolicyLookup(model), faults=faults)


def _drive(server, ebooks, requests_per_client):
    """Run N_CLIENTS concurrent clients; returns (latencies_ms, stats)."""
    latencies = [[] for _ in range(N_CLIENTS)]
    outcomes = []
    clients = [None] * N_CLIENTS
    errors = []
    barrier = threading.Barrier(N_CLIENTS)

    def run_client(cid):
        rng = random.Random(f"{SEED}:client:{cid}")
        # Half the fleet fails open, half fails closed, like a mixed
        # enterprise rollout; both must resolve every request.
        client = LookupClient(
            server,
            timeout=0.03,
            max_retries=2,
            backoff=0.005,
            failure_mode=(
                FailureMode.FAIL_CLOSED if cid % 2 else FailureMode.FAIL_OPEN
            ),
        )
        clients[cid] = client
        try:
            barrier.wait(timeout=60)
            for i in range(requests_per_client):
                book = ebooks[rng.randrange(len(ebooks))]
                paragraph = book.paragraphs[rng.randrange(len(book.paragraphs))]
                if rng.random() < 0.5:
                    text = paragraph  # overlapping upload: disclosure hit
                else:
                    words = paragraph.split()
                    rng.shuffle(words)  # same vocabulary, fresh fingerprint
                    text = " ".join(words)
                doc_id = f"{DOCS}|c{cid}-d{i}"
                start = time.perf_counter()
                outcome = client.lookup(DOCS, doc_id, [(f"{doc_id}#p0", text)])
                latencies[cid].append((time.perf_counter() - start) * 1000.0)
                outcomes.append(outcome)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((cid, exc))
            barrier.abort()

    threads = [
        threading.Thread(target=run_client, args=(cid,)) for cid in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not errors, errors
    assert not any(t.is_alive() for t in threads), "client wedged"

    aggregated = {}
    for client in clients:
        for key, value in client.stats().items():
            aggregated[key] = aggregated.get(key, 0) + value
    return latencies, outcomes, aggregated


def test_concurrent_lookup_service(benchmark, report, ebook_corpus):
    requests_per_client = scaled(30, minimum=10)
    server = _build_server(ebook_corpus)
    lock_writes_before = server.lookup.stats()["lock_write_acquisitions"]
    snapshot_before = server.registry.snapshot()

    latencies, outcomes, client_stats = benchmark.pedantic(
        _drive,
        args=(server, ebook_corpus, requests_per_client),
        iterations=1,
        rounds=1,
    )

    all_ms = [ms for per_client in latencies for ms in per_client]
    total = N_CLIENTS * requests_per_client
    server_stats = server.stats()
    lines = [
        f"Concurrent lookup service: {N_CLIENTS} clients x "
        f"{requests_per_client} requests against one shared engine",
        format_cdf_summary(
            "client-observed latency", all_ms, thresholds_ms=(1.0, 5.0, 30.0, 200.0)
        ),
        f"  median={percentile(all_ms, 50):.3f} ms  "
        f"p95={percentile(all_ms, 95):.3f} ms  p99={percentile(all_ms, 99):.3f} ms",
        format_counters(server_stats, title="Server / engine / lock counters:"),
        format_counters(client_stats, title="Aggregated client counters:"),
        format_snapshot(
            diff_snapshots(snapshot_before, server.registry.snapshot()),
            title="Shared-registry snapshot delta over the run "
            "(server + engines + lock + decision cache):",
        ),
    ]
    report("\n".join(lines))

    # §6.2: nothing hangs — every request resolved, served or degraded.
    assert len(all_ms) == total
    assert client_stats["requests"] == total
    assert all(outcome.decision is not None for outcome in outcomes)
    assert (
        client_stats["degraded"]
        == client_stats["fail_open_allowed"] + client_stats["fail_closed_blocked"]
    )
    # Requests either reached the engine or were explicitly faulted.
    assert server_stats["server_served"] + client_stats["degraded"] >= total
    # Pure query load: clients never took the write lock.
    assert server.lookup.stats()["lock_write_acquisitions"] == lock_writes_before
    # The retry budget absorbed transient faults: with 10% hard-fault
    # rate and 2 retries, the vast majority of requests still resolve
    # to a real decision.
    assert client_stats["degraded"] <= total * 0.2
