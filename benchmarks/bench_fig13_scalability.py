"""Figure 13 — response time vs size of the hashes database.

Paper shape: the 95th-percentile disclosure-decision latency grows
sub-linearly as the fingerprint database grows from 1M to 10M hashes,
staying below ~200 ms, thanks to index data structures. We sweep the
database across loaded e-books and assert sub-linear growth.
"""

from repro.eval import figure13_scalability
from repro.eval.reporting import format_counters, format_histograms, format_series
from repro.fingerprint.config import PAPER_CONFIG


def test_figure13_scalability(benchmark, report, large_ebook_corpus):
    engine_stats = {}
    registry_snapshot = {}
    series = benchmark.pedantic(
        figure13_scalability,
        args=(large_ebook_corpus,),
        kwargs=dict(
            config=PAPER_CONFIG,
            steps=5,
            samples_per_step=15,
            stats_out=engine_stats,
            snapshot_out=registry_snapshot,
        ),
        iterations=1,
        rounds=1,
    )
    from repro.eval.charts import series_plot

    points = [(float(n), ms) for n, ms in series]
    report(
        format_series(
            {"p95 response time": points},
            title="Figure 13: Response time vs number of distinct hashes",
            x_label="distinct hashes",
            y_label="p95 ms",
        )
        + "\n"
        + series_plot(
            {"p95 ms": points},
            width=50,
            height=8,
            title="(shape: flat/sub-linear as the database grows)",
            y_label="ms",
        )
        + "\n"
        + format_counters(engine_stats, title="Index/query counters after run:")
        + "\n"
        + format_histograms(
            registry_snapshot,
            title="Per-stage latency breakdown (registry histograms):",
        )
    )
    # The engine threads its metrics scope into the fingerprinter, so
    # the registry breakdown includes the per-ingest-stage histograms.
    assert any(
        name.endswith("fingerprint.normalize") for name in registry_snapshot
    ), sorted(registry_snapshot)
    hashes = [n for n, _ in series]
    times = [ms for _, ms in series]
    assert hashes == sorted(hashes)
    db_growth = hashes[-1] / hashes[0]
    time_growth = times[-1] / max(times[0], 0.01)
    # Sub-linear: latency grows far slower than the database.
    assert time_growth < db_growth, (time_growth, db_growth)
