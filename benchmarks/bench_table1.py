"""Table 1 — dataset summary (documents, versions, paragraphs, size).

Paper values for reference: Wikipedia 1000 docs x 60 paragraphs / 30 KB
(averages across versions); manual chapters 4 versions each (40/20/28/8
paragraphs); 1 e-book dataset of 1500 paragraphs / 470 KB average.
Ours are synthetic (DESIGN.md §2) so the row *structure* matches while
sizes scale with BF_BENCH_SCALE.
"""

from repro.eval import table1_dataset_stats
from repro.eval.reporting import format_table


def test_table1_dataset_stats(
    benchmark, report, wikipedia_corpus, manuals_corpus, ebook_corpus
):
    rows = benchmark(
        table1_dataset_stats, wikipedia_corpus, manuals_corpus, ebook_corpus
    )
    report(
        format_table(
            ["Dataset", "Name", "Documents", "Versions", "Paragraphs", "Size (KB)"],
            [
                [
                    r["dataset"],
                    r["name"],
                    r["documents"],
                    r["versions"],
                    r["paragraphs"],
                    r["size_kb"],
                ]
                for r in rows
            ],
            title="Table 1: Datasets used for information disclosure evaluation",
        )
    )
    assert len(rows) == 6
