"""Sharded + batched lookup tier vs the single-engine ``LookupServer``.

The deployment question of the sharded tier (DESIGN.md §11): eight
plug-in clients hammering one shared enterprise lookup service — is
hash-range sharding plus a batched wire protocol worth deploying over
the plain single-engine server? The measurement itself lives in
``repro.eval.shard_bench`` (shared with ``tools/bench_to_json.py``, so
this benchmark and the committed ``BENCH_shard.json`` can never use
different protocols): best-of-rounds fleet throughput at 8 clients and
uncontended per-check service latency, behind a mandatory equivalence
check — batched-sharded decisions must equal the single-engine
reference item for item before anything is timed.

Gates (the ISSUE 7 acceptance bar, enforced in CI smoke mode too):
throughput >= 2x the single-engine server, service p95 no worse.

Scale with ``BF_BENCH_SCALE`` as usual; anything below 1.0 selects the
smoke corpus.
"""

from __future__ import annotations

from repro.eval.reporting import format_counters
from repro.eval.shard_bench import measure

from conftest import SCALE, SEED, scaled

#: The acceptance bar: fleet throughput ratio and service-p95 ratio.
GATE_THROUGHPUT = 2.0
GATE_P95 = 1.0


def test_sharded_batched_vs_single_engine(benchmark, report):
    """8 clients, 4 shards, batched round trips vs one request per item."""
    smoke = SCALE < 1.0

    document = benchmark.pedantic(
        lambda: measure(
            smoke,
            SEED,
            requests_per_client=scaled(200, minimum=48),
        ),
        iterations=1,
        rounds=1,
    )

    single = document["single"]
    sharded = document["sharded_batched"]
    latency = document["service_latency"]
    speedup = document["speedup"]
    lines = [
        "sharded+batched lookup tier vs single-engine server "
        f"(equivalence checked on {document['equivalence_checked']} decisions)",
        format_counters(
            {
                key: document["config"][key]
                for key in ("n_clients", "n_shards", "batch_size", "rounds")
            },
            title="config",
        ),
        format_counters(
            {
                "single": round(single["throughput_rps"]),
                "sharded_batched": round(sharded["throughput_rps"]),
                "ratio_x100": round(speedup["throughput"] * 100),
            },
            title="fleet throughput (req/s)",
        ),
        format_counters(
            {
                "single": round(latency["single"]["p95_ms"] * 1000),
                "sharded_batched": round(
                    latency["sharded_batched"]["p95_ms"] * 1000
                ),
                "ratio_x100": round(speedup["p95"] * 100),
            },
            title="service latency p95 (us)",
        ),
    ]
    report("\n".join(lines))

    # The acceptance gates. Equivalence already held (measure() raises
    # otherwise), so these are pure performance assertions.
    assert speedup["throughput"] >= GATE_THROUGHPUT, (
        f"sharded+batched tier sustained only "
        f"{speedup['throughput']:.2f}x the single-engine throughput "
        f"(gate {GATE_THROUGHPUT}x)"
    )
    assert speedup["p95"] >= GATE_P95, (
        f"sharded+batched service p95 is worse than single-engine: "
        f"ratio {speedup['p95']:.2f} (gate {GATE_P95})"
    )
    # The batch endpoint actually carried the load: every sharded-tier
    # item travelled inside a batch round trip.
    stats = document["server_stats"]["sharded_batched"]
    assert stats["server_batch_items"] == sharded["requests"]
    assert stats["server_batches"] < stats["server_batch_items"]
