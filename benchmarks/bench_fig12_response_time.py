"""Figure 12 — distribution of disclosure-decision response times.

Paper shape (10M-hash database on a 3.4 GHz i7, C++/JS stack): 99% of
requests answered within 200 ms, 85% within 30 ms; cached requests
(keystrokes that do not change the winnowed fingerprint) are fastest;
workflows touching overlapping text (W1 creation-with-overlap and W3
modification) are slower than W2 (no overlap). Our absolute numbers
come from a Python engine on a smaller corpus; the orderings and the
cache effect are the reproduction targets.
"""

from repro.eval import figure12_response_times
from repro.eval.reporting import format_cdf_summary, format_counters, format_histograms
from repro.fingerprint.config import PAPER_CONFIG
from repro.util.stats import percentile


def test_figure12_response_times(benchmark, report, ebook_corpus):
    engine_stats = {}
    registry_snapshot = {}
    results = benchmark.pedantic(
        figure12_response_times,
        args=(ebook_corpus,),
        kwargs=dict(
            config=PAPER_CONFIG,
            page_paragraphs=3,
            stats_out=engine_stats,
            snapshot_out=registry_snapshot,
        ),
        iterations=1,
        rounds=1,
    )
    lines = ["Figure 12: Distribution of response times for disclosure decisions"]
    for workflow, times in results.items():
        ms = [t * 1000.0 for t in times]
        lines.append(
            format_cdf_summary(workflow, ms, thresholds_ms=(1.0, 5.0, 30.0, 200.0))
        )
        lines.append(
            f"  median={percentile(ms, 50):.3f} ms  p95={percentile(ms, 95):.3f} ms  "
            f"p99={percentile(ms, 99):.3f} ms"
        )
    lines.append(
        format_counters(engine_stats, title="Index/query counters after run:")
    )
    lines.append(
        format_histograms(
            registry_snapshot,
            title="Per-stage latency breakdown (registry histograms):",
        )
    )
    report("\n".join(lines))
    # The end-to-end decision times decompose into registry stages: the
    # Algorithm-1 sweep histogram must have recorded real queries.
    algo = registry_snapshot["engine.paragraph.algorithm1_seconds"]
    assert algo["count"] > 0
    assert registry_snapshot["engine.paragraph.queries"] >= algo["count"]

    mean = lambda xs: sum(xs) / len(xs)
    w1 = mean(results["creation-with-overlap"])
    w2 = mean(results["creation-without-overlap"])
    w3 = mean(results["modification"])
    # Overlap-heavy workflows are not faster than the no-overlap one.
    assert w1 >= w2 * 0.8
    assert w3 >= w2 * 0.8
    # The bulk of requests are served fast (cache effect).
    for times in results.values():
        ms = sorted(t * 1000.0 for t in times)
        assert percentile(ms, 50) <= percentile(ms, 99)
