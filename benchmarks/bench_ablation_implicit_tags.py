"""Ablation — implicit tags vs naive permanent tag propagation (§3.2).

Reproduces the Figure 6 chain at scale: text flows itool -> wiki, the
itool original is then rewritten, and the wiki copy moves on to a
service privileged only for wiki data. With implicit tags (paper) the
final hop is allowed; with naive propagation (inherited tags treated as
explicit and propagated onwards) the stale itool tag blocks it — a
false positive. The benchmark counts false positives over many chains.
"""

import random

from repro.datasets.synthesis import TextSynthesizer
from repro.eval.reporting import format_table
from repro.fingerprint.config import PAPER_CONFIG
from repro.tdm import Label, PolicyStore, TextDisclosureModel

ITOOL = "https://itool.example"
WIKI = "https://wiki.example"
PARTNER = "https://partner.example"  # privileged for tw only

N_CHAINS = 12


def _fresh_model():
    policies = PolicyStore()
    policies.register_service(ITOOL, privilege=Label.of("ti", "tw"),
                              confidentiality=Label.of("ti"))
    policies.register_service(WIKI, privilege=Label.of("tw", "ti"),
                              confidentiality=Label.of("tw"))
    policies.register_service(PARTNER, privilege=Label.of("tw"))
    return TextDisclosureModel(
        policies, PAPER_CONFIG, paragraph_threshold=0.3, document_threshold=0.3
    )


def _run_chains(naive):
    rng = random.Random("ablation-implicit")
    synth = TextSynthesizer("mysql", rng)
    model = _fresh_model()
    false_positives = 0
    for i in range(N_CHAINS):
        secret = synth.paragraph(4, 6)
        filler = synth.paragraph(4, 6)
        rewritten = synth.paragraph(4, 6)
        # A in the Interview Tool; B in the Wiki.
        model.observe(ITOOL, f"A{i}", [(f"A{i}#p0", secret)])
        model.observe(WIKI, f"B{i}", [(f"B{i}#p0", filler)])
        # User appends A's text to B (allowed: Lp(wiki) includes ti).
        b_text = filler + " " + secret
        decision = model.check_upload(WIKI, f"B{i}", [(f"B{i}#p0", b_text)])
        model.commit_upload(WIKI, f"B{i}", [(f"B{i}#p0", b_text)], decision)
        if naive:
            # Naive variant: inherited tags become explicit, so they
            # will propagate onwards like any other tag.
            label = model.label_of(f"B{i}#p0")
            model.set_label(f"B{i}#p0", label.add_explicit(label.implicit))
        # A is rewritten beyond recognition.
        model.observe(ITOOL, f"A{i}", [(f"A{i}#p0", rewritten)])
        # The A-derived half of B moves to the partner service.
        final = model.check_upload(PARTNER, f"C{i}", [(f"C{i}#p0", secret)])
        if not final.allowed:
            false_positives += 1
    return false_positives


def test_ablation_implicit_tags(benchmark, report):
    fp_implicit = benchmark.pedantic(
        _run_chains, args=(False,), iterations=1, rounds=1
    )
    fp_naive = _run_chains(True)
    report(
        format_table(
            ["Variant", "Stale-tag false positives", "Chains"],
            [
                ["implicit tags (paper §3.2)", fp_implicit, N_CHAINS],
                ["naive permanent propagation", fp_naive, N_CHAINS],
            ],
            title="Ablation: implicit tags prevent outdated-tag propagation",
        )
    )
    assert fp_implicit == 0
    assert fp_naive == N_CHAINS
