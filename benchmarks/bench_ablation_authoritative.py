"""Ablation — authoritative fingerprints (the §4.3 overlap correction).

Reproduces Figure 7 at corpus scale: many documents contain supersets
of earlier documents' paragraphs. Copying an original paragraph should
blame only its true source; without the correction every superset
holder is blamed too. The benchmark counts false blames with the
correction on and off.
"""

import random

from repro.datasets.synthesis import TextSynthesizer
from repro.disclosure import DisclosureEngine
from repro.eval.reporting import format_table
from repro.fingerprint.config import PAPER_CONFIG

N_ORIGINALS = 30


def _build_engine(authoritative, originals, supersets):
    engine = DisclosureEngine(PAPER_CONFIG, authoritative=authoritative)
    for i, text in enumerate(originals):
        engine.observe(f"orig-{i}", text, threshold=0.4)
    for i, text in enumerate(supersets):
        engine.observe(f"super-{i}", text, threshold=0.4)
    return engine


def _count_blames(engine, originals):
    true_blames = 0
    false_blames = 0
    for i, text in enumerate(originals):
        report = engine.disclosing_sources(fingerprint=engine.fingerprint(text))
        for source in report.sources:
            if source.segment_id == f"orig-{i}":
                true_blames += 1
            elif source.segment_id.startswith("super-"):
                false_blames += 1
    return true_blames, false_blames


def test_ablation_authoritative_fingerprints(benchmark, report):
    rng = random.Random("ablation-auth")
    synth = TextSynthesizer("fiction", rng)
    originals = [synth.paragraph(4, 6) for _ in range(N_ORIGINALS)]
    supersets = [text + " " + synth.paragraph(2, 3) for text in originals]

    with_correction = _build_engine(True, originals, supersets)
    without_correction = _build_engine(False, originals, supersets)

    true_on, false_on = benchmark(_count_blames, with_correction, originals)
    true_off, false_off = _count_blames(without_correction, originals)

    report(
        format_table(
            ["Variant", "True sources found", "Supersets falsely blamed"],
            [
                ["authoritative (paper §4.3)", true_on, false_on],
                ["raw containment", true_off, false_off],
            ],
            title="Ablation: authoritative fingerprints vs raw containment",
        )
    )
    # The correction finds every true source and blames no superset.
    assert true_on == N_ORIGINALS
    assert false_on == 0
    # Without it, overlap misattributes sources wholesale.
    assert false_off > N_ORIGINALS * 0.5
