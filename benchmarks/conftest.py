"""Shared corpora and helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables/figures and
prints the rows/series the paper reports (through ``capsys.disabled``
so the output is visible under pytest's capture). Scale is controlled
by ``BF_BENCH_SCALE`` (default 1.0): e.g. ``BF_BENCH_SCALE=4 pytest
benchmarks/ --benchmark-only`` approaches the paper's corpus sizes at
the cost of a longer run.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import EbookCorpus, ManualsCorpus, WikipediaCorpus

SCALE = float(os.environ.get("BF_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("BF_BENCH_SEED", "2016"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, round(value * SCALE))


@pytest.fixture(scope="session")
def wikipedia_corpus():
    return WikipediaCorpus.generate(
        n_extra_articles=scaled(12),
        n_revisions=scaled(100, minimum=10),
        seed=SEED,
    )


@pytest.fixture(scope="session")
def manuals_corpus():
    return ManualsCorpus.generate(seed=SEED, scale=max(SCALE, 0.5))


@pytest.fixture(scope="session")
def ebook_corpus():
    return EbookCorpus.generate(
        n_books=scaled(24),
        paragraphs_per_book=scaled(100, minimum=20),
        seed=SEED,
    )


@pytest.fixture(scope="session")
def large_ebook_corpus():
    """Bigger corpus for the Figure 13 database-size sweep."""
    return EbookCorpus.generate(
        n_books=scaled(40),
        paragraphs_per_book=scaled(120, minimum=20),
        seed=SEED + 1,
    )


@pytest.fixture
def report(capsys):
    """Print a report section to the real terminal despite capture."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return emit
