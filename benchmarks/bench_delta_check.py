"""Per-edit check latency: delta pipeline vs full recheck (§13).

ISSUE 9's acceptance measurement: on a keystroke-churn edit workload
the per-edit check median of the delta pipeline (EditBuffer splice +
precomputed-fingerprint lookup + epoch-memoized verdict cache) must be
at least 3x faster than a full recheck (whole-paragraph re-fingerprint
and fresh verdict per edit). The harness lives in
``repro.eval.delta_bench`` (shared with ``tools/bench_to_json.py``, so
this benchmark and the committed ``BENCH_delta.json`` can never use
different harnesses) and refuses to time anything before proving the
delta path field-identical to the reference path — every fingerprint
triple and every verdict, at one shard and at four.

Scale with ``BF_BENCH_SCALE`` as usual; anything below 1.0 selects the
smoke config (fewer scripts, shorter paragraphs) where the gate relaxes
to 2x — the CI smoke bar.
"""

from __future__ import annotations

from repro.eval.delta_bench import measure
from repro.eval.reporting import format_counters

from conftest import SCALE, SEED


def test_delta_check_vs_full_recheck(benchmark, report):
    """Identical edit scripts, both paths, equivalence before timing."""
    smoke = SCALE < 1.0

    document = benchmark.pedantic(
        lambda: measure(smoke, SEED),
        iterations=1,
        rounds=1,
    )

    workload = document["workload"]
    lines = [
        f"delta check: {workload['edits']} edits over "
        f"{document['config']['paragraphs']} paragraphs "
        f"(~{workload['mean_paragraph_chars']} chars each), "
        f"{document['equivalence_checked']} decisions proved "
        f"field-identical across paths at 1 and "
        f"{document['config']['n_shards']} shards",
    ]
    for path in ("full_recheck", "delta"):
        block = document["paths"][path]
        lines.append(
            format_counters(
                {
                    "p50_us": round(block["p50_ms"] * 1000),
                    "p95_us": round(block["p95_ms"] * 1000),
                    "p99_us": round(block["p99_ms"] * 1000),
                },
                title=f"{path} per-edit latency",
            )
        )
    cache = document["cache_stats"]["delta"]
    lines.append(
        format_counters(
            {
                "epoch_cache_hits": cache["epoch_cache_hits"],
                "epoch_cache_misses": cache["epoch_cache_misses"],
            },
            title="delta path verdict cache",
        )
    )
    speedup = document["speedup"]["per_edit_median"]
    lines.append(f"per-edit median speedup: {speedup:.2f}x")
    report("\n".join(lines))

    # measure() already asserted path equivalence before timing; restate
    # the invariant so a harness regression fails loudly, then gate the
    # speedup the ISSUE promises: 3x at full scale, 2x in smoke.
    assert document["equivalence_checked"] > 0
    assert speedup >= (2.0 if smoke else 3.0)
