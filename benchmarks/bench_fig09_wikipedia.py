"""Figure 9 — paragraph disclosure across Wikipedia revisions.

Paper shape (Tpar = 0.5, 15-char n-grams, window 30, 32-bit hashes):

* 9a, low length variation (Chicago, C++, IP address, Liverpool FC):
  disclosure stays near 100% of base paragraphs across revisions;
* 9b, high variation (Chemotherapy, Dementia, Dow Jones, Radiotherapy):
  disclosure decays towards 0-20% as content churns.
"""

from repro.datasets.wikipedia import STABLE_TITLES, VOLATILE_TITLES
from repro.eval import figure9_paragraph_disclosure
from repro.eval.charts import series_plot
from repro.eval.reporting import format_series
from repro.fingerprint.config import PAPER_CONFIG


def _series_for(corpus, titles, step):
    results = figure9_paragraph_disclosure(
        corpus,
        config=PAPER_CONFIG,
        threshold=0.5,
        revision_step=step,
        titles=titles,
    )
    return {
        title: [(float(i), pct) for i, pct in series]
        for title, series in results.items()
    }


def test_figure9a_low_variation(benchmark, report, wikipedia_corpus):
    n_rev = len(wikipedia_corpus.articles[0].revisions)
    step = max(1, n_rev // 10)
    series = benchmark(_series_for, wikipedia_corpus, list(STABLE_TITLES), step)
    report(
        format_series(
            series,
            title="Figure 9a: Paragraph disclosure, articles with low length variation",
            x_label="revisions from base",
            y_label="disclosing paragraphs %",
        )
    )
    for title, points in series.items():
        assert points[-1][1] >= 60.0, (title, points[-1])


def test_figure9b_high_variation(benchmark, report, wikipedia_corpus):
    n_rev = len(wikipedia_corpus.articles[0].revisions)
    step = max(1, n_rev // 10)
    series = benchmark(_series_for, wikipedia_corpus, list(VOLATILE_TITLES), step)
    report(
        format_series(
            series,
            title="Figure 9b: Paragraph disclosure, articles with high length variation",
            x_label="revisions from base",
            y_label="disclosing paragraphs %",
        )
        + "\n"
        + series_plot(
            series,
            width=60,
            height=10,
            title="(shape: decay towards zero as content churns)",
            y_label="%",
        )
    )
    for title, points in series.items():
        assert points[-1][1] < points[0][1], title
        assert points[-1][1] <= 40.0, (title, points[-1])
