"""Open-loop fleet simulation: single vs sharded lookup tier.

The scaling question behind the ROADMAP's "service handling millions of
users": what do service latency *and* open-loop lateness look like when
a Zipf-skewed, flash-crowd fleet is driven through the full
browser→plugin→lookup pipeline at a fixed offered rate? The
measurement lives in ``repro.eval.fleet`` (shared with
``tools/bench_to_json.py``, so this benchmark and the committed
``BENCH_fleet.json`` can never use different harnesses): one
deterministic schedule executed against both lookup tiers, each run
followed by the fleet-wide reference-engine audit. No latency number is
reported unless the audit passes with zero uncovered disclosures.

Scale with ``BF_BENCH_SCALE`` as usual; anything below 1.0 selects the
smoke config (48 sessions instead of 1000).
"""

from __future__ import annotations

from repro.eval.fleet import measure
from repro.eval.reporting import format_counters

from conftest import SCALE, SEED


def test_fleet_open_loop_tiers(benchmark, report):
    """One schedule, both tiers, audited before anything is reported."""
    smoke = SCALE < 1.0

    document = benchmark.pedantic(
        lambda: measure(smoke, SEED),
        iterations=1,
        rounds=1,
    )

    workload = document["workload"]
    lines = [
        f"open-loop fleet: {document['config']['sessions']} sessions, "
        f"{workload['ops']} ops at {document['config']['pace_ops_s']:.0f} "
        f"ops/s offered (digest {workload['schedule_digest'][:12]}…)",
        format_counters(workload["kinds"], title="op mix"),
    ]
    for tier in ("single", "sharded"):
        block = document["tiers"][tier]
        lines.append(
            format_counters(
                {
                    "throughput_ops_s": round(block["throughput_ops_s"]),
                    "service_p95_us": round(
                        block["service_ms"]["p95"] * 1000
                    ),
                    "lateness_p95_us": round(
                        block["lateness_ms"]["p95"] * 1000
                    ),
                    "blocked_ops": block["blocked_ops"],
                    "audit_leaked_covered": block["audit"]["leaked"],
                },
                title=f"{tier} tier",
            )
        )
    report("\n".join(lines))

    # measure() already asserted each tier's audit before returning;
    # restate the invariant here so a harness regression fails loudly.
    for tier in ("single", "sharded"):
        audit = document["tiers"][tier]["audit"]
        assert audit["ok"] and audit["uncovered"] == 0
    assert document["audit_match"]
