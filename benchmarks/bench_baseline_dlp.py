"""Baseline — network-level DLP vs the in-browser plug-in (paper §2.2).

The paper argues that wire-level DLP — even fingerprint-based stream
scanning — cannot protect modern AJAX services because their sync
protocols ship obfuscated per-character deltas, while the in-browser
plug-in sees the clear text in the DOM. This benchmark measures that
head to head across three exfiltration paths:

* form-based (forum post of internal text): full text on the wire →
  both catch it;
* AJAX paste (one insert delta with the pasted chunk): text visible in
  the delta → both catch it;
* AJAX typing (per-keystroke deltas): one character per request →
  only BrowserFlow catches it.
"""

import random

from repro.datasets.synthesis import TextSynthesizer
from repro.dlp import DlpMode, NetworkDlpFirewall
from repro.eval.reporting import format_table
from repro.fingerprint.config import PAPER_CONFIG
from repro.plugin import BrowserFlowPlugin
from repro.services import DocsService, ForumService, Network, WikiService
from repro.browser import Browser
from repro.tdm import Label, PolicyStore, TextDisclosureModel

N_SECRETS = 10


def _environment(protection: str, secrets):
    """Build a fresh browser+services world guarded by one mechanism."""
    network = Network()
    wiki = WikiService()
    docs = DocsService()
    forum = ForumService()
    for service in (wiki, docs, forum):
        network.register(service)
    browser = Browser(network)

    if protection == "browserflow":
        policies = PolicyStore()
        policies.register_service(
            wiki.origin, privilege=Label.of("tw"), confidentiality=Label.of("tw")
        )
        policies.register_service(docs.origin)
        policies.register_service(forum.origin)
        model = TextDisclosureModel(policies, PAPER_CONFIG)
        plugin = BrowserFlowPlugin(model)
        plugin.attach(browser)
        for i, secret in enumerate(secrets):
            wiki.save_page(f"S{i}", secret)
            browser.open(wiki.page_url(f"S{i}"))  # plug-in labels {tw}
    else:
        firewall = NetworkDlpFirewall(
            PAPER_CONFIG, threshold=0.5, mode=DlpMode.BLOCK
        )
        for i, secret in enumerate(secrets):
            wiki.save_page(f"S{i}", secret)
            firewall.register_sensitive(f"S{i}", secret)
        network.add_interceptor(firewall)
    return browser, wiki, docs, forum


def _run_attacks(protection: str, secrets):
    """Returns leaks-prevented counts per exfiltration path."""
    browser, wiki, docs, forum = _environment(protection, secrets)
    prevented = {"form": 0, "ajax-paste": 0, "ajax-typing": 0}
    for i, secret in enumerate(secrets):
        # Form path: post the internal text to an untrusted forum.
        if not forum.post(browser.new_tab(), f"leak-{i}", secret):
            prevented["form"] += 1
        editor = docs.open_editor(browser.new_tab())
        if not editor.paste(editor.new_paragraph(), secret):
            prevented["ajax-paste"] += 1
        editor2 = docs.open_editor(browser.new_tab())
        par = editor2.new_paragraph()
        editor2.type_text(par, secret)
        stored = docs.backend.get(editor2.doc_id).find_paragraph(
            editor2.paragraph_id(par)
        )
        # Prevented iff the backend never accumulated the secret.
        if stored is None or secret not in stored:
            prevented["ajax-typing"] += 1
    return prevented


def test_baseline_network_dlp(benchmark, report):
    rng = random.Random("baseline-dlp")
    synth = TextSynthesizer("mysql", rng)
    secrets = [synth.paragraph(4, 6) for _ in range(N_SECRETS)]

    browserflow = benchmark.pedantic(
        _run_attacks, args=("browserflow", secrets), iterations=1, rounds=1
    )
    wire_dlp = _run_attacks("wire-dlp", secrets)

    report(
        format_table(
            ["Exfiltration path", "BrowserFlow prevented", "Wire DLP prevented",
             "Attempts"],
            [
                ["forum form post", browserflow["form"], wire_dlp["form"], N_SECRETS],
                ["AJAX paste (chunk delta)", browserflow["ajax-paste"],
                 wire_dlp["ajax-paste"], N_SECRETS],
                ["AJAX typing (char deltas)", browserflow["ajax-typing"],
                 wire_dlp["ajax-typing"], N_SECRETS],
            ],
            title="Baseline: in-browser tracking vs network-level DLP (§2.2)",
        )
    )
    # Both mechanisms handle the form path and chunk-level deltas.
    assert browserflow["form"] == N_SECRETS
    assert wire_dlp["form"] == N_SECRETS
    assert browserflow["ajax-paste"] == N_SECRETS
    assert wire_dlp["ajax-paste"] == N_SECRETS
    # Per-keystroke sync defeats the wire scanner but not the plug-in.
    assert browserflow["ajax-typing"] == N_SECRETS
    assert wire_dlp["ajax-typing"] == 0
