"""Micro-benchmarks of the core operations behind every figure.

Not tied to a paper exhibit; these keep the cost model of the engine
visible: fingerprinting throughput, Algorithm 1 query latency, and
label flow checks.
"""

import random
import time

from repro.datasets.synthesis import TextSynthesizer
from repro.disclosure import DisclosureEngine
from repro.eval.reporting import format_snapshot
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import PAPER_CONFIG
from repro.obs import NULL_REGISTRY, diff_snapshots
from repro.tdm.labels import Label, SegmentLabel


def test_fingerprint_throughput(benchmark):
    rng = random.Random("core-fp")
    synth = TextSynthesizer("fiction", rng)
    text = " ".join(synth.paragraph(5, 8) for _ in range(20))
    fp = Fingerprinter(PAPER_CONFIG)
    result = benchmark(fp.fingerprint, text)
    assert not result.is_empty()
    benchmark.extra_info["chars"] = len(text)


def test_algorithm1_query(benchmark, report):
    """The indexed single-sweep hot path (one O(1) owner lookup per hash)."""
    rng = random.Random("core-query")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    for i in range(300):
        engine.observe(f"s{i}", synth.paragraph(4, 7))
    target = engine.segment_db.get("s42").fingerprint
    before = engine.registry.snapshot()
    result = benchmark(engine.disclosing_sources, fingerprint=target)
    assert "s42" in result.source_ids()
    # The indexed path must agree with the retained reference scan.
    assert result == engine.disclosing_sources_reference(fingerprint=target)
    stats = engine.stats()
    for key in ("candidates_swept", "auth_cache_hits", "ownership_changes"):
        benchmark.extra_info[key] = stats[key]
    delta = diff_snapshots(before, engine.registry.snapshot())
    report(
        format_snapshot(
            delta, title="Registry snapshot delta over the benchmarked queries:"
        )
    )
    # Every benchmarked call was counted, and each one ran (and timed)
    # the full sweep: standalone-fingerprint queries bypass the
    # per-segment query cache.
    assert delta["engine.paragraph.queries"] > 0
    algo = delta["engine.paragraph.algorithm1_seconds"]
    assert algo["count"] == delta["engine.paragraph.queries"]


def test_algorithm1_query_reference(benchmark):
    """The pre-index per-candidate scan, kept for before/after comparison."""
    rng = random.Random("core-query")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    for i in range(300):
        engine.observe(f"s{i}", synth.paragraph(4, 7))
    target = engine.segment_db.get("s42").fingerprint
    result = benchmark(engine.disclosing_sources_reference, fingerprint=target)
    assert "s42" in result.source_ids()


def test_incremental_observe(benchmark):
    rng = random.Random("core-observe")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    paragraph = synth.paragraph(5, 8)
    counter = iter(range(10**9))

    def observe_fresh():
        engine.observe(f"p{next(counter)}", paragraph)

    benchmark(observe_fresh)


def test_algorithm1_metrics_overhead(benchmark, report):
    """Metrics must be near-free on the hot path: enabled vs counters-off.

    Two engines over the same corpus — one with the default registry,
    one with ``NULL_REGISTRY`` (shared no-op instruments, so the sweep
    skips even the ``+=``) — answer the same fresh-fingerprint queries
    interleaved. The smoke gate: the metrics-enabled Algorithm-1 median
    regresses less than 10% against the counters-off path (best of
    several rounds, to reject scheduler noise rather than measure it).
    """
    rounds, iterations = 5, 20
    rng = random.Random("core-overhead")
    synth = TextSynthesizer("fiction", rng)
    corpus = [synth.paragraph(4, 7) for _ in range(300)]
    # Distinct probes per (round, iteration) so every timed call is a
    # full sweep — identical fingerprints would be sweeps too (the
    # standalone-fingerprint path has no query cache), but fresh text
    # keeps the workload honest if that ever changes.
    probes_text = [synth.paragraph(4, 7) for _ in range(rounds * iterations)]

    engine_on = DisclosureEngine(PAPER_CONFIG)
    engine_off = DisclosureEngine(PAPER_CONFIG, registry=NULL_REGISTRY)
    for i, paragraph in enumerate(corpus):
        engine_on.observe(f"s{i}", paragraph)
        engine_off.observe(f"s{i}", paragraph)
    probes = [engine_off.fingerprint(text) for text in probes_text]

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    def measure():
        ratios = []
        medians = []
        for r in range(rounds):
            on_times, off_times = [], []
            for k in range(iterations):
                probe = probes[r * iterations + k]
                # Alternate which engine sees the probe first: the first
                # query pays the cold-cache cost for that probe's hashes.
                first, second = (
                    (engine_on, engine_off) if k % 2 else (engine_off, engine_on)
                )
                pair = {}
                for engine in (first, second):
                    started = time.perf_counter()
                    engine.disclosing_sources(fingerprint=probe)
                    pair[engine is engine_on] = time.perf_counter() - started
                on_times.append(pair[True])
                off_times.append(pair[False])
            medians.append((median(on_times), median(off_times)))
            ratios.append(median(on_times) / median(off_times))
        return ratios, medians

    ratios, medians = benchmark.pedantic(measure, iterations=1, rounds=1)
    best = min(ratios)
    benchmark.extra_info["overhead_ratio_best"] = round(best, 4)
    lines = ["Metrics overhead: Algorithm-1 enabled vs NULL_REGISTRY"]
    for (on_med, off_med), ratio in zip(medians, ratios):
        lines.append(
            f"  enabled={on_med * 1000:.3f} ms  counters-off={off_med * 1000:.3f} ms"
            f"  ratio={ratio:.3f}"
        )
    lines.append(f"  best-of-{rounds} ratio = {best:.3f} (gate: < 1.10)")
    report("\n".join(lines))

    # Sanity: the off engine really is counters-off.
    assert engine_off.registry.snapshot() == {}
    assert engine_off.stats()["queries"] == 0
    assert engine_on.stats()["queries"] == rounds * iterations
    assert best < 1.10, f"metrics overhead {best:.3f} exceeds 10% budget"


def test_label_flow_check(benchmark):
    label = SegmentLabel.of(explicit=["ti", "tw"], implicit=["tn"])
    privilege = Label.of("ti", "tw", "tn", "tx")
    result = benchmark(label.flows_to, privilege)
    assert result
