"""Micro-benchmarks of the core operations behind every figure.

Not tied to a paper exhibit; these keep the cost model of the engine
visible: fingerprinting throughput, Algorithm 1 query latency, and
label flow checks.
"""

import random

from repro.datasets.synthesis import TextSynthesizer
from repro.disclosure import DisclosureEngine
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import PAPER_CONFIG
from repro.tdm.labels import Label, SegmentLabel


def test_fingerprint_throughput(benchmark):
    rng = random.Random("core-fp")
    synth = TextSynthesizer("fiction", rng)
    text = " ".join(synth.paragraph(5, 8) for _ in range(20))
    fp = Fingerprinter(PAPER_CONFIG)
    result = benchmark(fp.fingerprint, text)
    assert not result.is_empty()
    benchmark.extra_info["chars"] = len(text)


def test_algorithm1_query(benchmark):
    """The indexed single-sweep hot path (one O(1) owner lookup per hash)."""
    rng = random.Random("core-query")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    for i in range(300):
        engine.observe(f"s{i}", synth.paragraph(4, 7))
    target = engine.segment_db.get("s42").fingerprint
    result = benchmark(engine.disclosing_sources, fingerprint=target)
    assert "s42" in result.source_ids()
    # The indexed path must agree with the retained reference scan.
    assert result == engine.disclosing_sources_reference(fingerprint=target)
    stats = engine.stats()
    for key in ("candidates_swept", "auth_cache_hits", "ownership_changes"):
        benchmark.extra_info[key] = stats[key]


def test_algorithm1_query_reference(benchmark):
    """The pre-index per-candidate scan, kept for before/after comparison."""
    rng = random.Random("core-query")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    for i in range(300):
        engine.observe(f"s{i}", synth.paragraph(4, 7))
    target = engine.segment_db.get("s42").fingerprint
    result = benchmark(engine.disclosing_sources_reference, fingerprint=target)
    assert "s42" in result.source_ids()


def test_incremental_observe(benchmark):
    rng = random.Random("core-observe")
    synth = TextSynthesizer("fiction", rng)
    engine = DisclosureEngine(PAPER_CONFIG)
    paragraph = synth.paragraph(5, 8)
    counter = iter(range(10**9))

    def observe_fresh():
        engine.observe(f"p{next(counter)}", paragraph)

    benchmark(observe_fresh)


def test_label_flow_check(benchmark):
    label = SegmentLabel.of(explicit=["ti", "tw"], implicit=["tn"])
    privilege = Label.of("ti", "tw", "tn", "tx")
    result = benchmark(label.flows_to, privilege)
    assert result
