"""Ablation — the fingerprint-keyed decision cache (§6.2).

The paper attributes its lowest response times to reusing the previous
decision whenever a keystroke leaves the winnowed fingerprint
unchanged. This ablation types the same page through the lookup path
with the cache enabled and disabled and compares total decision time.
"""

import time

from repro.eval.experiments import DOCS_SERVICE, _library_lookup
from repro.eval.reporting import format_table
from repro.eval.timing import keystroke_states
from repro.fingerprint.config import PAPER_CONFIG
from repro.plugin.lookup import PolicyLookup


def _type_page(lookup, text):
    doc_id = f"{DOCS_SERVICE}|cache-ablation"
    started = time.perf_counter()
    for state in keystroke_states(text):
        lookup.lookup(DOCS_SERVICE, doc_id, [(f"{doc_id}#p0", state)])
    return time.perf_counter() - started


class _UncachedLookup(PolicyLookup):
    """Lookup variant that always recomputes the decision."""

    def lookup(self, service_id, doc_id, paragraphs, *, suppressions=None):
        return self.model.check_upload(
            service_id, doc_id, paragraphs, suppressions=suppressions
        )


def test_ablation_decision_cache(benchmark, report, ebook_corpus):
    lookup, model = _library_lookup(ebook_corpus, PAPER_CONFIG)
    uncached = _UncachedLookup(model)
    page_text = " ".join(ebook_corpus[0].page(0, 2))[:800]

    cached_time = benchmark.pedantic(
        _type_page, args=(lookup, page_text), iterations=1, rounds=1
    )
    uncached_time = _type_page(uncached, page_text)

    report(
        format_table(
            ["Variant", "Total decision time (s)", "Keystrokes", "Cache hit rate"],
            [
                ["with decision cache", cached_time, len(page_text),
                 f"{lookup.cache.hit_rate:.2f}"],
                ["without cache", uncached_time, len(page_text), "n/a"],
            ],
            title="Ablation: fingerprint-keyed decision cache",
        )
    )
    # The cache absorbs the keystrokes that do not change the
    # fingerprint; typing must be significantly cheaper with it.
    assert cached_time < uncached_time
    assert lookup.cache.hit_rate > 0.3
