"""Figure 8 — CDF of relative article-length change across revisions.

Paper shape: a CDF over articles with a cluster of barely-changing
articles and a long tail of heavily-grown ones (log x-axis 10..100%+).
"""

from repro.eval import figure8_length_change_cdf
from repro.eval.reporting import format_series


def test_figure8_length_change_cdf(benchmark, report, wikipedia_corpus):
    points = benchmark(figure8_length_change_cdf, wikipedia_corpus)
    report(
        format_series(
            {"article length change": points},
            title="Figure 8: Changes in article length (CDF)",
            x_label="relative change %",
            y_label="fraction of articles",
        )
    )
    xs = [x for x, _ in points]
    stable_cluster = sum(1 for x in xs if x < 10.0)
    tail = sum(1 for x in xs if x >= 10.0)
    # Both regimes are present: a low-change cluster and a heavy tail.
    assert stable_cluster > 0
    assert tail > 0
