"""Ablation — fingerprint parameters (n-gram size, window size).

The paper fixes 15-char n-grams and a 30-hash window (§6.1). This
ablation shows the trade-off those values sit on: smaller windows give
denser fingerprints (more storage, more sensitivity); larger n-grams
reduce spurious matches but miss shorter copied passages.
"""

import random

from repro.datasets.synthesis import EditModel, TextSynthesizer
from repro.eval.reporting import format_histograms, format_table
from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig
from repro.obs.registry import MetricsRegistry

CONFIGS = [
    FingerprintConfig(ngram_size=5, window_size=10),
    FingerprintConfig(ngram_size=10, window_size=20),
    FingerprintConfig(ngram_size=15, window_size=30),  # paper
    FingerprintConfig(ngram_size=20, window_size=40),
    FingerprintConfig(ngram_size=15, window_size=60),
]


def _evaluate(paragraphs, edited, config, registry=None):
    fp = Fingerprinter(config, registry=registry)
    density = 0
    chars = 0
    robustness = []
    for original, modified in zip(paragraphs, edited):
        f_orig = fp.fingerprint(original)
        f_mod = fp.fingerprint(modified)
        density += len(f_orig)
        chars += len(original)
        if not f_orig.is_empty():
            robustness.append(f_orig.containment_in(f_mod))
    return {
        "density_per_kchar": 1000.0 * density / chars,
        "robustness": sum(robustness) / len(robustness),
    }


def test_ablation_fingerprint_parameters(benchmark, report):
    rng = random.Random("ablation-fp")
    synth = TextSynthesizer("mysql", rng)
    editor = EditModel(synth, rng)
    paragraphs = [synth.paragraph(4, 7) for _ in range(60)]
    edited = [editor.substitute_words(p, 0.08) for p in paragraphs]

    rows = []
    for config in CONFIGS:
        stats = _evaluate(paragraphs, edited, config)
        rows.append(
            [
                f"n={config.ngram_size} w={config.window_size}",
                config.noise_threshold,
                stats["density_per_kchar"],
                stats["robustness"],
            ]
        )

    # Time the paper configuration's evaluation as the benchmark body,
    # collecting the per-ingest-stage histograms into a registry.
    registry = MetricsRegistry()
    benchmark(_evaluate, paragraphs, edited, CONFIGS[2], registry)
    snapshot = registry.snapshot()
    for stage in ("normalize", "hash", "winnow"):
        assert snapshot[f"fingerprint.{stage}"]["count"] > 0
    report(
        format_table(
            ["Config", "Guarantee (chars)", "Hashes/kchar", "Containment after 8% edit"],
            rows,
            title="Ablation: fingerprint parameters (paper uses n=15 w=30)",
        )
        + "\n"
        + format_histograms(
            snapshot, title="Per-stage ingest latency at the paper config:"
        )
    )

    by_name = {row[0]: row for row in rows}
    # Smaller windows -> denser fingerprints.
    assert by_name["n=5 w=10"][2] > by_name["n=15 w=30"][2]
    assert by_name["n=15 w=30"][2] > by_name["n=15 w=60"][2]
    # Light edits keep containment comfortably above the 0.5 threshold
    # at the paper configuration.
    assert by_name["n=15 w=30"][3] > 0.5
