"""Figure 10 — paragraph disclosure vs expert ground truth (Manuals).

Paper shape: BrowserFlow's bars track the human expert closely; both
iPhone chapters decay to near zero by iOS7, MySQL "New Features" drops
after 4.1, "What's MySQL" stays at ~100%. The residual gap is the
systematic false-negative class (rephrased paragraphs).
"""

from repro.eval import figure10_manuals_disclosure
from repro.eval.reporting import format_table
from repro.fingerprint.config import PAPER_CONFIG


def test_figure10_manuals_disclosure(benchmark, report, manuals_corpus):
    results = benchmark(
        figure10_manuals_disclosure,
        manuals_corpus,
        config=PAPER_CONFIG,
        threshold=0.5,
    )
    rows = []
    for chapter_id, points in results.items():
        for point in points:
            rows.append(
                [
                    chapter_id,
                    point.version,
                    point.ground_truth_pct,
                    point.browserflow_pct,
                ]
            )
    report(
        format_table(
            ["Chapter", "Version", "Ground truth %", "BrowserFlow %"],
            rows,
            title="Figure 10: Paragraph disclosure (Manuals dataset)",
        )
    )
    # Shape assertions per the paper.
    for chapter_id in ("iphone-camera", "iphone-message"):
        series = results[chapter_id]
        assert series[-1].browserflow_pct <= 25.0
        assert series[-1].browserflow_pct < series[0].browserflow_pct
    for point in results["mysql-whats-mysql"]:
        assert point.browserflow_pct >= 80.0
    nf = results["mysql-new-features"]
    assert nf[0].browserflow_pct > nf[-1].browserflow_pct
    # BrowserFlow never reports more than the expert plus noise.
    for points in results.values():
        for point in points:
            assert point.browserflow_pct <= point.ground_truth_pct + 10.0
