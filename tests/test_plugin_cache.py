"""Tests for the decision cache."""

import threading

import pytest

from repro.plugin.cache import DecisionCache


class TestDecisionCache:
    def test_miss_then_hit(self):
        cache = DecisionCache()
        key = cache.key("svc", "seg", frozenset({1, 2}), 0)
        assert cache.get(key) is None
        cache.put(key, "decision")
        assert cache.get(key) == "decision"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_key_includes_version(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({1}), 1)
        cache.put(k0, "old")
        assert cache.get(k1) is None

    def test_key_includes_fingerprint(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({2}), 0)
        cache.put(k0, "a")
        assert cache.get(k1) is None

    def test_lru_eviction(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_bound(self):
        cache = DecisionCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecisionCache(capacity=0)

    def test_clear(self):
        cache = DecisionCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = DecisionCache()
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == 0.5


class TestEvictions:
    def test_counts_capacity_drops_exactly(self):
        cache = DecisionCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert cache.evictions == 7

    def test_update_in_place_does_not_evict(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)  # overwrite, still 2 entries
        assert cache.evictions == 0
        assert cache.get("a") == 3

    def test_clear_does_not_count_as_eviction(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert cache.evictions == 0

    def test_version_miss_leaves_entry_until_lru_pressure(self):
        # A model-version bump orphans the old entry without evicting it;
        # only capacity pressure removes it (and counts it).
        cache = DecisionCache(capacity=2)
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({1}), 1)
        cache.put(k0, "old")
        cache.put(k1, "new")
        assert len(cache) == 2
        assert cache.evictions == 0
        cache.put("other", "x")  # now the stale k0 is LRU-dropped
        assert cache.evictions == 1
        assert cache.get(k1) == "new"


class TestThreadSafety:
    def test_concurrent_puts_stay_bounded_and_accounted(self):
        cache = DecisionCache(capacity=16)
        barrier = threading.Barrier(4, timeout=5)

        def hammer(tid):
            barrier.wait()
            for i in range(250):
                key = (tid, i)
                cache.put(key, i)
                cache.get(key)
                cache.get(("missing", tid, i))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        assert len(cache) == 16
        # Every counter is mutex-guarded, so totals are exact even under
        # contention: 1000 puts leave 16 entries -> 984 evictions, and
        # hits/misses partition the 2000 gets.
        assert cache.evictions == 4 * 250 - 16
        assert cache.hits + cache.misses == 4 * 250 * 2
        assert cache.misses >= 4 * 250  # every "missing" get missed
