"""Tests for the decision cache."""

import pytest

from repro.plugin.cache import DecisionCache


class TestDecisionCache:
    def test_miss_then_hit(self):
        cache = DecisionCache()
        key = cache.key("svc", "seg", frozenset({1, 2}), 0)
        assert cache.get(key) is None
        cache.put(key, "decision")
        assert cache.get(key) == "decision"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_key_includes_version(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({1}), 1)
        cache.put(k0, "old")
        assert cache.get(k1) is None

    def test_key_includes_fingerprint(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({2}), 0)
        cache.put(k0, "a")
        assert cache.get(k1) is None

    def test_lru_eviction(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_bound(self):
        cache = DecisionCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecisionCache(capacity=0)

    def test_clear(self):
        cache = DecisionCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = DecisionCache()
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == 0.5
