"""Tests for the decision cache."""

import threading

import pytest

from repro.plugin.cache import DecisionCache


class TestDecisionCache:
    def test_miss_then_hit(self):
        cache = DecisionCache()
        key = cache.key("svc", "seg", frozenset({1, 2}), 0)
        assert cache.get(key) is None
        cache.put(key, "decision")
        assert cache.get(key) == "decision"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_key_includes_version(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({1}), 1)
        cache.put(k0, "old")
        assert cache.get(k1) is None

    def test_key_includes_fingerprint(self):
        cache = DecisionCache()
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({2}), 0)
        cache.put(k0, "a")
        assert cache.get(k1) is None

    def test_lru_eviction(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_bound(self):
        cache = DecisionCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecisionCache(capacity=0)

    def test_clear(self):
        cache = DecisionCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = DecisionCache()
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == 0.5


class TestEvictions:
    def test_counts_capacity_drops_exactly(self):
        cache = DecisionCache(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert cache.evictions == 7

    def test_update_in_place_does_not_evict(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)  # overwrite, still 2 entries
        assert cache.evictions == 0
        assert cache.get("a") == 3

    def test_clear_does_not_count_as_eviction(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert cache.evictions == 0

    def test_version_miss_leaves_entry_until_lru_pressure(self):
        # A model-version bump orphans the old entry without evicting it;
        # only capacity pressure removes it (and counts it).
        cache = DecisionCache(capacity=2)
        k0 = cache.key("svc", "seg", frozenset({1}), 0)
        k1 = cache.key("svc", "seg", frozenset({1}), 1)
        cache.put(k0, "old")
        cache.put(k1, "new")
        assert len(cache) == 2
        assert cache.evictions == 0
        cache.put("other", "x")  # now the stale k0 is LRU-dropped
        assert cache.evictions == 1
        assert cache.get(k1) == "new"


class TestThreadSafety:
    def test_concurrent_puts_stay_bounded_and_accounted(self):
        cache = DecisionCache(capacity=16)
        barrier = threading.Barrier(4, timeout=5)

        def hammer(tid):
            barrier.wait()
            for i in range(250):
                key = (tid, i)
                cache.put(key, i)
                cache.get(key)
                cache.get(("missing", tid, i))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        assert len(cache) == 16
        # Every counter is mutex-guarded, so totals are exact even under
        # contention: 1000 puts leave 16 entries -> 984 evictions, and
        # hits/misses partition the 2000 gets.
        assert cache.evictions == 4 * 250 - 16
        assert cache.hits + cache.misses == 4 * 250 * 2
        assert cache.misses >= 4 * 250  # every "missing" get missed


class TestDigests:
    def test_text_digest_stable_and_distinct(self):
        from repro.plugin.cache import text_digest

        assert text_digest("alpha") == text_digest("alpha")
        assert text_digest("alpha") != text_digest("alpha ")
        assert len(text_digest("")) == 16

    def test_fingerprint_set_digest_order_and_boundaries(self):
        from repro.plugin.cache import fingerprint_set_digest

        # Set iteration order must not matter; sequence order must.
        assert fingerprint_set_digest([{1, 2, 3}]) == fingerprint_set_digest(
            [{3, 1, 2}]
        )
        assert fingerprint_set_digest([{1}, {2}]) != fingerprint_set_digest(
            [{2}, {1}]
        )
        # Grouping is part of the identity: [{a}, {b}] != [{a, b}].
        assert fingerprint_set_digest([{1}, {2}]) != fingerprint_set_digest(
            [{1, 2}]
        )
        assert fingerprint_set_digest([]) != fingerprint_set_digest([set()])


class TestFingerprintCache:
    def _fingerprinter(self):
        from repro.fingerprint import Fingerprinter
        from repro.fingerprint.config import TINY_CONFIG

        return Fingerprinter(TINY_CONFIG)

    def test_miss_computes_then_hit_shares_object(self):
        from repro.plugin.cache import FingerprintCache

        cache = FingerprintCache()
        fingerprinter = self._fingerprinter()
        text = "the quick brown fox jumps over the lazy dog"
        first = cache.fingerprint(fingerprinter, text)
        second = cache.fingerprint(fingerprinter, text)
        assert second is first  # immutable value, shared on hit
        assert cache.hits == 1 and cache.misses == 1
        assert first.hashes == fingerprinter.fingerprint(text).hashes

    def test_raw_text_key_distinguishes_span_lossy_aliases(self):
        """Texts with equal normalised form but different spans must not
        share an entry (the §13 raw-digest deviation rationale)."""
        from repro.fingerprint.normalize import normalize
        from repro.plugin.cache import FingerprintCache

        cache = FingerprintCache()
        fingerprinter = self._fingerprinter()
        a, b = "  ab cd ef gh", "ab cd ef gh  "
        assert normalize(a).text == normalize(b).text
        fp_a = cache.fingerprint(fingerprinter, a)
        fp_b = cache.fingerprint(fingerprinter, b)
        assert cache.misses == 2 and cache.hits == 0
        spans = lambda fp: [
            (s.orig_start, s.orig_end) for s in fp.selections
        ]
        assert fp_a.hashes == fp_b.hashes
        assert spans(fp_a) != spans(fp_b)

    def test_capacity_eviction_recomputes(self):
        from repro.plugin.cache import FingerprintCache

        cache = FingerprintCache(capacity=1)
        fingerprinter = self._fingerprinter()
        cache.fingerprint(fingerprinter, "alpha bravo charlie delta")
        cache.fingerprint(fingerprinter, "echo foxtrot golf hotel")
        assert cache.evictions == 1
        cache.fingerprint(fingerprinter, "alpha bravo charlie delta")
        assert cache.misses == 3  # the evicted entry was recomputed
