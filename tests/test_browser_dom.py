"""Tests for the DOM tree."""

import pytest

from repro.browser.dom import Document, Element, TextNode
from repro.errors import DOMError


@pytest.fixture
def document():
    return Document()


class TestTreeManipulation:
    def test_append_child(self, document):
        div = document.create_element("div")
        document.body.append_child(div)
        assert div.parent is document.body
        assert div in document.body.children

    def test_insert_before(self, document):
        a = document.create_element("a")
        b = document.create_element("b")
        document.body.append_child(b)
        document.body.insert_before(a, b)
        assert document.body.children == [a, b]

    def test_insert_before_unknown_reference(self, document):
        orphan = document.create_element("i")
        with pytest.raises(DOMError):
            document.body.insert_before(document.create_element("a"), orphan)

    def test_remove_child(self, document):
        div = document.create_element("div")
        document.body.append_child(div)
        document.body.remove_child(div)
        assert div.parent is None
        assert div not in document.body.children

    def test_remove_non_child_raises(self, document):
        with pytest.raises(DOMError):
            document.body.remove_child(document.create_element("div"))

    def test_reparenting_moves_node(self, document):
        a = document.create_element("div")
        b = document.create_element("div")
        child = document.create_element("span")
        document.body.append_child(a)
        document.body.append_child(b)
        a.append_child(child)
        b.append_child(child)
        assert child.parent is b
        assert child not in a.children

    def test_cycle_rejected(self, document):
        outer = document.create_element("div")
        inner = document.create_element("div")
        document.body.append_child(outer)
        outer.append_child(inner)
        with pytest.raises(DOMError):
            inner.append_child(outer)

    def test_replace_children(self, document):
        div = document.create_element("div")
        div.append_child(document.create_text_node("old"))
        div.replace_children(document.create_text_node("new"))
        assert div.text_content() == "new"


class TestTextContent:
    def test_recursive_text(self, document):
        div = document.create_element("div")
        p = document.create_element("p")
        p.append_child(document.create_text_node("hello "))
        div.append_child(p)
        div.append_child(document.create_text_node("world"))
        assert div.text_content() == "hello world"

    def test_script_content_excluded(self, document):
        div = document.create_element("div")
        script = document.create_element("script")
        script.append_child(document.create_text_node("var x = 1;"))
        div.append_child(script)
        div.append_child(document.create_text_node("visible"))
        assert div.text_content() == "visible"

    def test_set_text_reuses_text_node(self, document):
        div = document.create_element("div")
        div.set_text("first")
        node = div.children[0]
        div.set_text("second")
        assert div.children[0] is node
        assert div.text_content() == "second"

    def test_set_text_replaces_elements(self, document):
        div = document.create_element("div")
        div.append_child(document.create_element("span"))
        div.set_text("plain")
        assert len(div.children) == 1
        assert isinstance(div.children[0], TextNode)


class TestQueries:
    def test_get_element_by_id(self, document):
        target = document.create_element("div", {"id": "needle"})
        wrapper = document.create_element("div")
        wrapper.append_child(target)
        document.body.append_child(wrapper)
        assert document.get_element_by_id("needle") is target
        assert document.get_element_by_id("missing") is None

    def test_get_elements_by_tag(self, document):
        for _ in range(3):
            document.body.append_child(document.create_element("p"))
        document.body.append_child(document.create_element("div"))
        assert len(document.get_elements_by_tag("p")) == 3

    def test_tag_case_insensitive(self, document):
        document.body.append_child(document.create_element("DIV"))
        assert document.get_elements_by_tag("div")

    def test_find_all_predicate(self, document):
        a = document.create_element("div", {"class": "x y"})
        b = document.create_element("div", {"class": "z"})
        document.body.append_child(a)
        document.body.append_child(b)
        found = document.find_all(lambda el: "y" in el.class_list())
        assert found == [a]

    def test_iter_subtree_preorder(self, document):
        div = document.create_element("div")
        span = document.create_element("span")
        text = document.create_text_node("t")
        div.append_child(span)
        span.append_child(text)
        document.body.append_child(div)
        nodes = list(div.iter_subtree())
        assert nodes == [div, span, text]

    def test_contains(self, document):
        div = document.create_element("div")
        span = document.create_element("span")
        div.append_child(span)
        document.body.append_child(div)
        assert div.contains(span)
        assert document.contains(span)
        assert not span.contains(div)

    def test_ancestors(self, document):
        div = document.create_element("div")
        span = document.create_element("span")
        div.append_child(span)
        document.body.append_child(div)
        assert list(span.ancestors()) == [div, document.body, document]


class TestAttributes:
    def test_set_get(self, document):
        el = document.create_element("div")
        el.set_attribute("data-x", "1")
        assert el.get_attribute("data-x") == "1"

    def test_id_and_class_properties(self, document):
        el = document.create_element("div", {"id": "a", "class": "x y"})
        assert el.id == "a"
        assert el.class_list() == ["x", "y"]

    def test_missing_attribute_none(self, document):
        assert document.create_element("div").get_attribute("nope") is None


class TestNodeIds:
    def test_unique_node_ids(self, document):
        ids = {document.create_element("div").node_id for _ in range(10)}
        assert len(ids) == 10

    def test_adoption_assigns_id(self):
        document = Document()
        orphan = Element("div")
        assert orphan.node_id is None
        document.body.append_child(orphan)
        assert orphan.node_id is not None

    def test_subtree_adoption(self):
        document = Document()
        parent = Element("div")
        child = Element("span")
        parent.append_child(child)
        document.body.append_child(parent)
        assert child.owner_document is document
        assert child.node_id is not None
