"""Tests for editor adapters."""

import pytest

from repro.browser.dom import Document
from repro.plugin.adapters import (
    DEFAULT_ADAPTERS,
    DOCS_ADAPTER,
    NOTES_ADAPTER,
    EditorAdapter,
)


@pytest.fixture
def docs_page():
    document = Document()
    editor = document.create_element("div", {"id": "editor"})
    document.body.append_child(editor)
    for i in range(3):
        par = document.create_element(
            "div", {"class": "kix-paragraph", "data-par-id": f"p{i}"}
        )
        par.set_text(f"paragraph {i}")
        editor.append_child(par)
    return document, editor


class TestAdapterLookup:
    def test_find_container(self, docs_page):
        document, editor = docs_page
        assert DOCS_ADAPTER.find_container(document) is editor
        assert NOTES_ADAPTER.find_container(document) is None

    def test_paragraphs(self, docs_page):
        _document, editor = docs_page
        paragraphs = DOCS_ADAPTER.paragraphs(editor)
        assert [DOCS_ADAPTER.paragraph_id(p) for p in paragraphs] == [
            "p0", "p1", "p2",
        ]

    def test_paragraph_without_id(self, docs_page):
        document, editor = docs_page
        anon = document.create_element("div", {"class": "kix-paragraph"})
        editor.append_child(anon)
        assert DOCS_ADAPTER.paragraph_id(anon) is None

    def test_non_paragraph_elements_skipped(self, docs_page):
        document, editor = docs_page
        editor.append_child(document.create_element("div", {"class": "toolbar"}))
        assert len(DOCS_ADAPTER.paragraphs(editor)) == 3


class TestDocIdDerivation:
    def test_docs_path(self):
        assert DOCS_ADAPTER.doc_id_for_path("/d/docs-doc-0001") == "docs-doc-0001"

    def test_notes_path(self):
        assert NOTES_ADAPTER.doc_id_for_path("/nb/work") == "nb:work"

    def test_unexpected_path_falls_back(self):
        assert DOCS_ADAPTER.doc_id_for_path("/other/x") == "other/x"

    def test_custom_adapter(self):
        adapter = EditorAdapter(
            name="custom",
            container_id="app",
            paragraph_class="block",
            path_prefix="/w/",
            doc_id_template="wiki:{}",
        )
        assert adapter.doc_id_for_path("/w/Main_Page") == "wiki:Main_Page"


class TestDefaults:
    def test_default_adapters_cover_bundled_editors(self):
        names = {a.name for a in DEFAULT_ADAPTERS}
        assert names == {"docs", "notes"}

    def test_plugin_accepts_new_adapter(self):
        from repro.fingerprint.config import TINY_CONFIG
        from repro.plugin import BrowserFlowPlugin
        from repro.tdm import PolicyStore, TextDisclosureModel

        plugin = BrowserFlowPlugin(TextDisclosureModel(PolicyStore(), TINY_CONFIG))
        adapter = EditorAdapter(name="x", container_id="x", paragraph_class="x")
        plugin.register_adapter(adapter)
        assert adapter in plugin.adapters
