"""Tests for service backend storage."""

import pytest

from repro.errors import DocumentNotFound, ServiceError
from repro.services.base import Backend, CloudService, StoredDocument


class TestBackend:
    def test_create_and_get(self):
        backend = Backend("test")
        doc = backend.create(title="T")
        assert backend.get(doc.doc_id) is doc
        assert len(backend) == 1

    def test_explicit_doc_id(self):
        backend = Backend("test")
        doc = backend.create(doc_id="custom-1")
        assert doc.doc_id == "custom-1"
        assert "custom-1" in backend

    def test_duplicate_doc_id_rejected(self):
        backend = Backend("test")
        backend.create(doc_id="dup")
        with pytest.raises(ServiceError):
            backend.create(doc_id="dup")

    def test_get_missing_raises(self):
        with pytest.raises(DocumentNotFound):
            Backend("test").get("nope")

    def test_find_missing_none(self):
        assert Backend("test").find("nope") is None

    def test_delete(self):
        backend = Backend("test")
        doc = backend.create()
        backend.delete(doc.doc_id)
        assert doc.doc_id not in backend

    def test_delete_missing_raises(self):
        with pytest.raises(DocumentNotFound):
            Backend("test").delete("nope")

    def test_id_generators_prefixed(self):
        backend = Backend("svc")
        assert backend.new_doc_id().startswith("svc-doc-")
        assert backend.new_par_id().startswith("svc-par-")

    def test_all_documents(self):
        backend = Backend("test")
        a, b = backend.create(), backend.create()
        assert set(d.doc_id for d in backend.all_documents()) == {a.doc_id, b.doc_id}


class TestStoredDocument:
    def test_text_joins_paragraphs(self):
        doc = StoredDocument("d", paragraphs=[("p1", "one"), ("p2", "two")])
        assert doc.text() == "one\n\ntwo"

    def test_find_paragraph(self):
        doc = StoredDocument("d", paragraphs=[("p1", "one")])
        assert doc.find_paragraph("p1") == "one"
        assert doc.find_paragraph("p9") is None

    def test_set_paragraph(self):
        doc = StoredDocument("d", paragraphs=[("p1", "old")])
        doc.set_paragraph("p1", "new")
        assert doc.find_paragraph("p1") == "new"

    def test_set_unknown_paragraph_raises(self):
        with pytest.raises(ServiceError):
            StoredDocument("d").set_paragraph("ghost", "x")

    def test_paragraph_ids(self):
        doc = StoredDocument("d", paragraphs=[("a", "1"), ("b", "2")])
        assert doc.paragraph_ids() == ["a", "b"]


class TestCloudService:
    def test_origin_requires_scheme(self):
        with pytest.raises(ServiceError):
            CloudService("no-scheme.example.com", "X")

    def test_origin_trailing_slash_stripped(self):
        service = CloudService("https://x.example.com/", "X")
        assert service.origin == "https://x.example.com"

    def test_url_helper(self):
        service = CloudService("https://x.example.com", "X")
        assert service.url("path") == "https://x.example.com/path"
        assert service.url("/path") == "https://x.example.com/path"
