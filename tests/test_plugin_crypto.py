"""Tests for the upload cipher."""

import pytest

from repro.plugin.crypto import MARKER, UploadCipher


@pytest.fixture
def cipher():
    return UploadCipher("deployment-secret")


class TestUploadCipher:
    def test_roundtrip(self, cipher):
        plaintext = "Sensitive interview guidelines, round two."
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_ciphertext_hides_plaintext(self, cipher):
        plaintext = "the secret phrase"
        ciphertext = cipher.encrypt(plaintext)
        assert "secret" not in ciphertext

    def test_marker_prefix(self, cipher):
        assert cipher.encrypt("x").startswith(MARKER)

    def test_is_encrypted(self, cipher):
        assert UploadCipher.is_encrypted(cipher.encrypt("x"))
        assert not UploadCipher.is_encrypted("plain text")

    def test_deterministic(self, cipher):
        assert cipher.encrypt("same input") == cipher.encrypt("same input")

    def test_different_inputs_differ(self, cipher):
        assert cipher.encrypt("one") != cipher.encrypt("two")

    def test_different_keys_differ(self):
        a = UploadCipher("key-a").encrypt("payload")
        b = UploadCipher("key-b").encrypt("payload")
        assert a != b

    def test_wrong_key_garbles(self):
        ciphertext = UploadCipher("key-a").encrypt("payload")
        other = UploadCipher("key-b")
        try:
            result = other.decrypt(ciphertext)
        except UnicodeDecodeError:
            return  # garbage bytes are acceptable failure
        assert result != "payload"

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt("")) == ""

    def test_unicode_roundtrip(self, cipher):
        text = "café résumé — 机密"
        assert cipher.decrypt(cipher.encrypt(text)) == text

    def test_decrypt_plain_rejected(self, cipher):
        with pytest.raises(ValueError):
            cipher.decrypt("not encrypted")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            UploadCipher("")

    def test_long_payload(self, cipher):
        text = "paragraph content " * 500
        assert cipher.decrypt(cipher.encrypt(text)) == text
