"""Tests for the network-level DLP baselines."""

import pytest

from repro.browser.http import HttpRequest
from repro.dlp import (
    DlpMode,
    KeywordRule,
    NetworkDlpFirewall,
    RegexRule,
    RuleScanner,
    extract_wire_text,
)
from repro.errors import RequestBlocked
from repro.fingerprint.config import TINY_CONFIG

from conftest import OTHER_TEXT, SECRET_TEXT, EnterpriseFixture


class TestWireExtractor:
    def test_form_values_extracted(self):
        request = HttpRequest(
            "POST", "https://x.example/save",
            form_data={"page": "Home", "body": "the content"},
        )
        assert set(extract_wire_text(request)) == {"Home", "the content"}

    def test_json_strings_extracted_recursively(self):
        request = HttpRequest(
            "POST", "https://x.example/api",
            body='{"a": "one", "b": {"c": ["two", 3]}, "d": null}',
        )
        assert set(extract_wire_text(request)) == {"one", "two"}

    def test_non_json_body_taken_raw(self):
        request = HttpRequest("POST", "https://x.example/api", body="raw payload")
        assert extract_wire_text(request) == ["raw payload"]

    def test_empty_request(self):
        assert extract_wire_text(HttpRequest("GET", "https://x.example/")) == []

    def test_blank_fragments_dropped(self):
        request = HttpRequest(
            "POST", "https://x.example/", form_data={"a": "  ", "b": "text"}
        )
        assert extract_wire_text(request) == ["text"]


class TestRuleScanner:
    def test_keyword_rule(self):
        scanner = RuleScanner([KeywordRule("conf", "CONFIDENTIAL")])
        assert scanner.scan_text("this is Confidential material") == ["conf"]
        assert scanner.scan_text("public info") == []

    def test_regex_rule(self):
        scanner = RuleScanner([RegexRule("card", r"\b\d{4}-\d{4}-\d{4}-\d{4}\b")])
        assert scanner.scan_text("pay with 1234-5678-9012-3456 now") == ["card"]

    def test_scan_request(self):
        scanner = RuleScanner([KeywordRule("code", "nightingale")])
        request = HttpRequest(
            "POST", "https://x.example/", form_data={"m": "project Nightingale beta"}
        )
        assert scanner.scan_request(request) == ["code"]

    def test_interceptor_records_but_never_blocks(self):
        scanner = RuleScanner([KeywordRule("code", "secret")])
        request = HttpRequest("POST", "https://x.example/", body="the secret plan")
        scanner(request)  # must not raise
        assert scanner.matches == [("code", "https://x.example/")]


class TestFirewall:
    @pytest.fixture
    def firewall(self):
        fw = NetworkDlpFirewall(TINY_CONFIG, threshold=0.5)
        fw.register_sensitive("doc-1", SECRET_TEXT)
        return fw

    def test_detects_form_exfiltration(self, firewall):
        request = HttpRequest(
            "POST", "https://evil.example/post", form_data={"body": SECRET_TEXT}
        )
        detections = firewall.scan_request(request)
        assert detections
        assert detections[0].document_id == "doc-1"
        assert detections[0].score == 1.0

    def test_ignores_clean_traffic(self, firewall):
        request = HttpRequest(
            "POST", "https://ok.example/post", form_data={"body": OTHER_TEXT}
        )
        assert firewall.scan_request(request) == []

    def test_misses_single_char_deltas(self, firewall):
        """The structural blind spot: per-keystroke deltas never carry
        enough text to fingerprint."""
        for ch in SECRET_TEXT:
            request = HttpRequest(
                "POST",
                "https://docs.example/sync",
                body=f'{{"op": "insert", "chars": "{ch}", "index": 0}}',
            )
            assert firewall.scan_request(request) == []

    def test_block_mode_raises(self, firewall):
        firewall.mode = DlpMode.BLOCK
        request = HttpRequest(
            "POST", "https://evil.example/post", form_data={"body": SECRET_TEXT}
        )
        with pytest.raises(RequestBlocked):
            firewall(request)

    def test_monitor_mode_records(self, firewall):
        request = HttpRequest(
            "POST", "https://evil.example/post", form_data={"body": SECRET_TEXT}
        )
        firewall(request)  # no exception
        stats = firewall.stats()
        assert stats["requests_seen"] == 1
        assert stats["detections"] >= 1

    def test_legacy_stats_tuple_is_deprecated(self, firewall):
        request = HttpRequest(
            "POST", "https://evil.example/post", form_data={"body": SECRET_TEXT}
        )
        firewall(request)
        with pytest.warns(DeprecationWarning):
            seen, detected = firewall.stats_tuple()
        assert (seen, detected) == (
            firewall.stats()["requests_seen"],
            firewall.stats()["detections"],
        )


class TestFirewallOnNetwork:
    def test_firewall_catches_form_service_but_not_ajax_editor(self):
        """The head-to-head behind the paper's §2.2 argument."""
        e = EnterpriseFixture()
        # Detach BrowserFlow so only the wire-level baseline guards.
        e.browser.page_hooks.clear()

        firewall = NetworkDlpFirewall(TINY_CONFIG, threshold=0.5)
        firewall.register_sensitive("guidelines", SECRET_TEXT)
        e.network.add_interceptor(firewall)

        # Form-based exfiltration: the full text is on the wire.
        firewall.mode = DlpMode.BLOCK
        ok = e.wiki.edit(e.browser.new_tab(), "Leak", SECRET_TEXT)
        assert not ok
        assert e.wiki.page_text("Leak") == ""

        # AJAX-editor exfiltration via typing: only fragments on the
        # wire; the firewall is blind and the secret reaches the cloud.
        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        delivered = editor.type_text(par, SECRET_TEXT)
        assert delivered == len(SECRET_TEXT)
        stored = e.docs.backend.get(editor.doc_id).paragraphs[0][1]
        assert stored == SECRET_TEXT
