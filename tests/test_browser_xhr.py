"""Tests for XMLHttpRequest and prototype patching."""

import pytest

from repro.browser.dom import Document
from repro.browser.http import HttpRequest, HttpResponse
from repro.browser.page import Window
from repro.errors import BrowserError, RequestBlocked


class RecordingNetwork:
    def __init__(self, response=None):
        self.requests = []
        self.response = response or HttpResponse(status=200, body="ok")

    def deliver(self, request):
        self.requests.append(request)
        return self.response


@pytest.fixture
def window():
    return Window(Document(), "https://svc.example.com/page", RecordingNetwork())


class TestBasicXHR:
    def test_send_delivers_to_network(self, window):
        xhr = window.new_xhr()
        xhr.open("POST", "https://svc.example.com/api")
        response = xhr.send("payload")
        assert response.ok
        request = window.network.requests[0]
        assert request.method == "POST"
        assert request.body == "payload"

    def test_response_state_recorded(self, window):
        xhr = window.new_xhr()
        xhr.open("GET", "https://svc.example.com/api")
        xhr.send()
        assert xhr.status == 200
        assert xhr.response_text == "ok"
        assert xhr.ready_state == 4

    def test_headers_forwarded(self, window):
        xhr = window.new_xhr()
        xhr.open("POST", "https://svc.example.com/api")
        xhr.set_request_header("Content-Type", "application/json")
        xhr.send("{}")
        assert window.network.requests[0].headers["Content-Type"] == "application/json"

    def test_send_before_open_rejected(self, window):
        with pytest.raises(BrowserError):
            window.new_xhr().send("x")

    def test_header_before_open_rejected(self, window):
        with pytest.raises(BrowserError):
            window.new_xhr().set_request_header("A", "b")

    def test_double_send_rejected(self, window):
        xhr = window.new_xhr()
        xhr.open("GET", "https://svc.example.com/x")
        xhr.send()
        with pytest.raises(BrowserError):
            xhr.send()


class TestPrototypePatching:
    def test_patched_send_intercepts(self, window):
        original = window.xhr_prototype.send
        intercepted = []

        def patched(xhr, body):
            intercepted.append(body)
            return original(xhr, body)

        window.xhr_prototype.send = patched
        xhr = window.new_xhr()
        xhr.open("POST", "https://svc.example.com/api")
        xhr.send("secret")
        assert intercepted == ["secret"]
        assert len(window.network.requests) == 1

    def test_patched_send_can_block(self, window):
        def veto(xhr, body):
            raise RequestBlocked(xhr.url, "policy")

        window.xhr_prototype.send = veto
        xhr = window.new_xhr()
        xhr.open("POST", "https://svc.example.com/api")
        with pytest.raises(RequestBlocked):
            xhr.send("secret")
        assert xhr.blocked
        assert not window.network.requests

    def test_patch_applies_to_existing_instances(self, window):
        """Prototype dispatch happens at call time, like JavaScript."""
        xhr = window.new_xhr()
        xhr.open("POST", "https://svc.example.com/api")
        seen = []
        original = window.xhr_prototype.send
        window.xhr_prototype.send = lambda x, b: (seen.append(b), original(x, b))[1]
        xhr.send("late patch")
        assert seen == ["late patch"]

    def test_restore_unpatches(self, window):
        window.xhr_prototype.send = lambda x, b: HttpResponse(status=599)
        window.xhr_prototype.restore()
        xhr = window.new_xhr()
        xhr.open("GET", "https://svc.example.com/x")
        assert xhr.send().status == 200

    def test_original_send_reachable_after_patch(self, window):
        window.xhr_prototype.send = lambda x, b: HttpResponse(status=599)
        xhr = window.new_xhr()
        xhr.open("GET", "https://svc.example.com/x")
        response = window.xhr_prototype.original_send(xhr, None)
        assert response.status == 200


class TestHttpMessages:
    def test_origin_extraction(self):
        request = HttpRequest("GET", "https://host.example.com:8080/a/b?c=d")
        assert request.origin == "https://host.example.com:8080"
        assert request.path == "/a/b"

    def test_response_ok_range(self):
        assert HttpResponse(status=204).ok
        assert not HttpResponse(status=404).ok
        assert not HttpResponse(status=301).ok
