"""Tests for repro.util.text."""

from repro.util.text import (
    join_paragraphs,
    split_paragraphs,
    split_sentences,
    word_count,
)


class TestSplitParagraphs:
    def test_blank_line_separation(self):
        assert split_paragraphs("one\n\ntwo") == ["one", "two"]

    def test_multiple_blank_lines(self):
        assert split_paragraphs("a\n\n\n\nb") == ["a", "b"]

    def test_whitespace_only_separator(self):
        assert split_paragraphs("a\n   \nb") == ["a", "b"]

    def test_strips_whitespace(self):
        assert split_paragraphs("  a  \n\n  b  ") == ["a", "b"]

    def test_empty_input(self):
        assert split_paragraphs("") == []

    def test_whitespace_only_input(self):
        assert split_paragraphs("  \n \n ") == []

    def test_single_newline_does_not_split(self):
        assert split_paragraphs("line one\nline two") == ["line one\nline two"]

    def test_roundtrip_with_join(self):
        paragraphs = ["first paragraph", "second paragraph", "third"]
        assert split_paragraphs(join_paragraphs(paragraphs)) == paragraphs


class TestSplitSentences:
    def test_splits_on_terminal_punctuation(self):
        assert split_sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_no_terminal_punctuation(self):
        assert split_sentences("no punctuation here") == ["no punctuation here"]

    def test_empty(self):
        assert split_sentences("") == []

    def test_preserves_internal_punctuation(self):
        result = split_sentences("Hello, world. Bye.")
        assert result == ["Hello, world.", "Bye."]


class TestWordCount:
    def test_counts_words(self):
        assert word_count("the quick brown fox") == 4

    def test_empty(self):
        assert word_count("") == 0

    def test_punctuation_ignored(self):
        assert word_count("one, two; three.") == 3

    def test_apostrophes_stay_in_word(self):
        assert word_count("it's a test") == 3
