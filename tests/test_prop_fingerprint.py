"""Property-based tests for the fingerprinting pipeline (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Fingerprinter
from repro.fingerprint.config import FingerprintConfig
from repro.fingerprint.normalize import normalize
from repro.fingerprint.rolling_hash import KarpRabin
from repro.fingerprint.winnowing import winnow

# A small config keeps generated inputs short while preserving the
# structural properties under test.
CONFIG = FingerprintConfig(ngram_size=5, window_size=4)
FP = Fingerprinter(CONFIG)

prose = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!?-\n",
    min_size=0,
    max_size=300,
)
#: Full-Unicode prose: the lone lower-expanding code point (U+0130 İ,
#: whose lower() is 'i' + a non-alphanumeric combining dot), capital
#: sharp s (U+1E9E ẞ), ligatures (only casefold unfolds them), accented
#: Latin, Greek/Cyrillic (case-mapped), and CJK (caseless).
unicode_prose = st.text(
    alphabet=(
        string.ascii_letters + string.digits + " .,!?-\n"
        + "İıẞßﬁﬂÆæÇçÉéÑñÖöÜüΣσЖж北京"
    ),
    min_size=0,
    max_size=300,
)
words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10)


class TestNormalizeProperties:
    @given(prose)
    def test_idempotent(self, text):
        once = normalize(text).text
        assert normalize(once).text == once

    @given(prose)
    def test_output_alphanumeric_lowercase(self, text):
        result = normalize(text).text
        assert all(c.isalnum() and not c.isupper() for c in result)

    @given(prose)
    def test_offsets_within_original(self, text):
        result = normalize(text)
        assert len(result.offsets) == len(result.text)
        assert all(0 <= o < len(text) for o in result.offsets)

    @given(prose)
    def test_offsets_strictly_increasing(self, text):
        offsets = normalize(text).offsets
        assert all(b > a for a, b in zip(offsets, offsets[1:]))


class TestUnicodeNormalizeProperties:
    """The S1 invariants on a full-Unicode alphabet (İ, ẞ, ligatures).

    The lowercase-expansion regression: İ's lower() products must be
    filtered individually, or ``len(offsets) == len(text)`` breaks and
    the fingerprint pipeline crashes downstream.
    """

    @given(unicode_prose)
    def test_idempotent(self, text):
        once = normalize(text).text
        assert normalize(once).text == once

    @given(unicode_prose)
    def test_output_alphanumeric_lowercase(self, text):
        result = normalize(text).text
        assert all(c.isalnum() and not c.isupper() for c in result)

    @given(unicode_prose)
    def test_offset_invariant_holds(self, text):
        result = normalize(text)
        assert len(result.offsets) == len(result.text)
        assert all(0 <= o < len(text) for o in result.offsets)
        # Only İ expands, and its second product is dropped — so
        # offsets stay strictly increasing even on Unicode input.
        assert all(
            b > a for a, b in zip(result.offsets, result.offsets[1:])
        )

    @given(unicode_prose)
    def test_fingerprint_never_crashes_and_is_deterministic(self, text):
        assert FP.fingerprint(text).hashes == FP.fingerprint(text).hashes


class TestRollingHashProperties:
    @given(st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=80))
    def test_rolling_equals_direct(self, text):
        kr = KarpRabin(ngram_size=4)
        rolled = list(kr.hash_all(text))
        direct = [kr.hash_one(text[i:i + 4]) for i in range(max(0, len(text) - 3))]
        assert rolled == direct

    @given(st.text(alphabet=string.ascii_lowercase, min_size=4, max_size=40))
    def test_equal_ngrams_equal_hashes(self, text):
        kr = KarpRabin(ngram_size=4)
        hashes = list(kr.hash_all(text))
        ngrams = [text[i:i + 4] for i in range(len(text) - 3)]
        seen = {}
        for ngram, h in zip(ngrams, hashes):
            if ngram in seen:
                assert seen[ngram] == h
            seen[ngram] = h


class TestWinnowProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=120),
           st.integers(min_value=1, max_value=12))
    def test_every_full_window_covered(self, values, window):
        selected = set(winnow(values, window))
        if len(values) >= window:
            for start in range(len(values) - window + 1):
                assert any(start <= p < start + window for p in selected)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=120),
           st.integers(min_value=1, max_value=12))
    def test_positions_valid_and_monotone(self, values, window):
        positions = winnow(values, window)
        assert positions == sorted(set(positions))
        assert all(0 <= p < len(values) for p in positions)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=120),
           st.integers(min_value=1, max_value=12))
    def test_nonempty_for_nonempty_input(self, values, window):
        assert winnow(values, window)


class TestWinnowingGuarantee:
    @given(
        st.lists(words, min_size=0, max_size=10),
        st.lists(words, min_size=0, max_size=10),
        st.lists(words, min_size=12, max_size=20),
    )
    @settings(max_examples=60)
    def test_shared_long_passage_shares_a_hash(self, prefix_a, prefix_b, shared):
        """Texts sharing a normalised run >= noise_threshold share a hash."""
        shared_text = " ".join(shared)
        if len(normalize(shared_text).text) < CONFIG.noise_threshold:
            return
        text_a = " ".join(prefix_a + shared)
        text_b = " ".join(prefix_b + shared)
        fa, fb = FP.fingerprint(text_a), FP.fingerprint(text_b)
        assert fa.hashes & fb.hashes

    @given(prose)
    def test_fingerprint_deterministic(self, text):
        assert FP.fingerprint(text).hashes == FP.fingerprint(text).hashes

    @given(prose)
    def test_containment_in_unit_interval(self, text):
        f = FP.fingerprint(text)
        g = FP.fingerprint(text[::-1])
        assert 0.0 <= f.containment_in(g) <= 1.0

    @given(prose)
    def test_self_containment_one_when_nonempty(self, text):
        f = FP.fingerprint(text)
        if not f.is_empty():
            assert f.containment_in(f) == 1.0

    @given(prose, prose)
    def test_concatenation_mostly_contains_part(self, part, rest):
        """Appending text cannot erase more than boundary hashes."""
        f_part = FP.fingerprint(part)
        if len(f_part) < 5:
            return
        f_whole = FP.fingerprint(part + " " + rest)
        assert f_part.containment_in(f_whole) >= 0.5
