"""Tests for step S1 (normalisation) including the offset map."""

import pytest

from repro.fingerprint.normalize import normalize


class TestNormalize:
    def test_paper_example(self):
        assert normalize("Hello World!").text == "helloworld"

    def test_removes_whitespace(self):
        assert normalize("a b\tc\nd").text == "abcd"

    def test_removes_punctuation(self):
        assert normalize("a,b.c;d:e!f?g").text == "abcdefg"

    def test_lowercases(self):
        assert normalize("AbCdE").text == "abcde"

    def test_digits_kept(self):
        assert normalize("Version 4.1").text == "version41"

    def test_empty_input(self):
        result = normalize("")
        assert result.text == ""
        assert result.offsets == ()
        assert result.original_length == 0

    def test_punctuation_only(self):
        assert normalize("... !!! ???").text == ""

    def test_unicode_letters_kept(self):
        assert normalize("Café au lait").text == "caféaulait"

    def test_idempotent(self):
        once = normalize("Hello, World! 123")
        twice = normalize(once.text)
        assert twice.text == once.text

    def test_original_length_recorded(self):
        assert normalize("a b c").original_length == 5


class TestOffsetMap:
    def test_offsets_point_to_original_chars(self):
        source = "He said: Hello!"
        result = normalize(source)
        for norm_index, orig_index in enumerate(result.offsets):
            assert source[orig_index].lower() == result.text[norm_index]

    def test_original_span_roundtrip(self):
        source = "Hello World!"
        result = normalize(source)
        # "world" occupies normalised positions 5..10
        start, end = result.original_span(5, 10)
        assert source[start:end] == "World"

    def test_span_covers_skipped_characters(self):
        source = "a-b-c"
        result = normalize(source)
        start, end = result.original_span(0, 3)
        assert source[start:end] == "a-b-c"

    def test_invalid_span_raises(self):
        result = normalize("abcdef")
        with pytest.raises(IndexError):
            result.original_span(3, 3)
        with pytest.raises(IndexError):
            result.original_span(0, 99)
        with pytest.raises(IndexError):
            result.original_span(-1, 2)
