"""Tests for step S1 (normalisation) including the offset map."""

import pytest

from repro.fingerprint.normalize import normalize


class TestNormalize:
    def test_paper_example(self):
        assert normalize("Hello World!").text == "helloworld"

    def test_removes_whitespace(self):
        assert normalize("a b\tc\nd").text == "abcd"

    def test_removes_punctuation(self):
        assert normalize("a,b.c;d:e!f?g").text == "abcdefg"

    def test_lowercases(self):
        assert normalize("AbCdE").text == "abcde"

    def test_digits_kept(self):
        assert normalize("Version 4.1").text == "version41"

    def test_empty_input(self):
        result = normalize("")
        assert result.text == ""
        assert result.offsets == ()
        assert result.original_length == 0

    def test_punctuation_only(self):
        assert normalize("... !!! ???").text == ""

    def test_unicode_letters_kept(self):
        assert normalize("Café au lait").text == "caféaulait"

    def test_idempotent(self):
        once = normalize("Hello, World! 123")
        twice = normalize(once.text)
        assert twice.text == once.text

    def test_original_length_recorded(self):
        assert normalize("a b c").original_length == 5


class TestUnicodeExpansion:
    """Characters whose ``str.lower()`` expands or needs filtering.

    U+0130 (İ, Turkish dotted capital I) is the only code point whose
    ``lower()`` grows: ``'i'`` plus U+0307 combining dot above. The dot
    is not alphanumeric, so it must be filtered per *produced*
    character — keeping ``len(offsets) == len(text)`` and idempotence.
    """

    def test_dotted_capital_i_expands_then_filters(self):
        assert len("İ".lower()) == 2  # the expansion this class is about
        result = normalize("İ")
        assert result.text == "i"
        assert result.offsets == (0,)

    def test_istanbul(self):
        result = normalize("İstanbul")
        assert result.text == "istanbul"
        assert len(result.offsets) == len(result.text)

    def test_capital_sharp_s(self):
        # U+1E9E ẞ lowers to U+00DF ß without expansion; both survive.
        result = normalize("STRAẞE")
        assert result.text == "straße"
        assert len(result.offsets) == 6

    def test_ligatures_kept_verbatim(self):
        # ﬁ/ﬂ are alphanumeric and only unfold under casefold(), which
        # normalisation deliberately does not use.
        assert normalize("ﬁle ﬂow").text == "ﬁleﬂow"

    def test_idempotent_on_expanding_input(self):
        once = normalize("İİİ DIŞ BÜTÇE")
        twice = normalize(once.text)
        assert twice.text == once.text
        assert len(once.offsets) == len(once.text)

    def test_offsets_point_to_producing_original_char(self):
        source = "İzmir & İstanbul!"
        result = normalize(source)
        assert len(result.offsets) == len(result.text)
        for norm_index, orig_index in enumerate(result.offsets):
            produced = [c for c in source[orig_index].lower() if c.isalnum()]
            assert result.text[norm_index] in produced


class TestOffsetMap:
    def test_offsets_point_to_original_chars(self):
        source = "He said: Hello!"
        result = normalize(source)
        for norm_index, orig_index in enumerate(result.offsets):
            assert source[orig_index].lower() == result.text[norm_index]

    def test_original_span_roundtrip(self):
        source = "Hello World!"
        result = normalize(source)
        # "world" occupies normalised positions 5..10
        start, end = result.original_span(5, 10)
        assert source[start:end] == "World"

    def test_span_covers_skipped_characters(self):
        source = "a-b-c"
        result = normalize(source)
        start, end = result.original_span(0, 3)
        assert source[start:end] == "a-b-c"

    def test_invalid_span_raises(self):
        result = normalize("abcdef")
        with pytest.raises(IndexError):
            result.original_span(3, 3)
        with pytest.raises(IndexError):
            result.original_span(0, 99)
        with pytest.raises(IndexError):
            result.original_span(-1, 2)
