"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    diff_snapshots,
)
from repro.util.clock import LogicalClock


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_registry_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")


class TestGauge:
    def test_explicit_set(self):
        g = Gauge("g")
        g.set(42.0)
        assert g.value == 42.0

    def test_callback_backed(self):
        items = [1, 2, 3]
        g = Gauge("g", fn=lambda: len(items))
        assert g.value == 3
        items.append(4)
        assert g.value == 4

    def test_set_on_callback_gauge_rejected(self):
        g = Gauge("g", fn=lambda: 0)
        with pytest.raises(ValueError, match="callback-backed"):
            g.set(1.0)

    def test_registering_callback_over_plain_gauge_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("size")
        with pytest.raises(ValueError, match="without a callback"):
            reg.gauge("size", fn=lambda: 0)


class TestHistogram:
    def test_buckets_must_be_ascending(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.2, 0.1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_observations_land_deterministically(self):
        h = Histogram("h", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.001, 0.05, 5.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.0515)
        # A value equal to a bound lands in that bound's bucket.
        assert snap["buckets"] == {
            "le_0.001": 2,
            "le_0.01": 0,
            "le_0.1": 1,
            "le_inf": 1,
        }

    def test_default_buckets_span_paper_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0001  # index sweeps
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 0.2  # Figure-12 tail


class TestTimerAndClock:
    def test_timer_uses_registry_clock(self):
        # LogicalClock ticks once per read: each timed block covers
        # exactly (end_tick - start_tick) = 1 + ticks consumed inside.
        reg = MetricsRegistry(clock=LogicalClock())
        with reg.timer("op_seconds"):
            pass
        with reg.timer("op_seconds"):
            reg.clock.now()  # one extra tick inside the block
        snap = reg.snapshot()["op_seconds"]
        assert snap["count"] == 2
        assert snap["sum"] == 3.0  # 1.0 + 2.0, bit-identical every run

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry(clock=LogicalClock())
        with pytest.raises(RuntimeError):
            with reg.timer("op_seconds"):
                raise RuntimeError("boom")
        assert reg.snapshot()["op_seconds"]["count"] == 1


class TestScope:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scope = reg.scope("engine.paragraph.")
        scope.counter("queries").inc()
        assert reg.snapshot()["engine.paragraph.queries"] == 1

    def test_scope_snapshot_strips_prefix(self):
        reg = MetricsRegistry()
        reg.scope("a.").counter("hits").inc(2)
        reg.scope("b.").counter("hits").inc(7)
        assert reg.scope("a.").snapshot() == {"hits": 2}
        assert reg.scope("b.").snapshot() == {"hits": 7}

    def test_two_scopes_same_prefix_share_instruments(self):
        reg = MetricsRegistry()
        reg.scope("lock.").counter("reads").inc()
        reg.scope("lock.").counter("reads").inc()
        assert reg.snapshot()["lock.reads"] == 2


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry(clock=LogicalClock())
        reg.counter("b").inc()
        reg.gauge("a").set(1.5)
        with reg.timer("c_seconds"):
            pass
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_diff_snapshots_numeric_and_histogram(self):
        reg = MetricsRegistry(clock=LogicalClock())
        c = reg.counter("hits")
        c.inc(3)
        with reg.timer("op_seconds"):
            pass
        before = reg.snapshot()
        c.inc(4)
        with reg.timer("op_seconds"):
            pass
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["hits"] == 4
        assert delta["op_seconds"]["count"] == 1
        assert sum(delta["op_seconds"]["buckets"].values()) == 1

    def test_diff_snapshots_new_names_pass_through(self):
        assert diff_snapshots({}, {"fresh": 5}) == {"fresh": 5}


class TestNullRegistry:
    def test_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("anything")
        assert c is reg.counter("other")
        c.inc(100)
        assert c.value == 0
        g = reg.gauge("g")
        g.set(9)
        assert g.value == 0
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.snapshot()["count"] == 0

    def test_snapshot_empty_and_timer_noop(self):
        with NULL_REGISTRY.timer("op"):
            pass
        assert NULL_REGISTRY.snapshot() == {}


class TestThreadSafety:
    def test_concurrent_get_or_create_returns_one_instrument(self):
        reg = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(reg.counter("shared"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, results))) == 1

    def test_concurrent_histogram_observations_exact(self):
        h = Histogram("h")
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for _ in range(1000):
                h.observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.snapshot()["count"] == 4000
