"""Tests for the exact-match short-secret tracker (§4.4)."""

import pytest

from repro.disclosure.exactmatch import MIN_SECRET_LENGTH, ShortSecretTracker
from repro.errors import DisclosureError

from conftest import SECRET_TEXT, EnterpriseFixture


@pytest.fixture
def tracker():
    t = ShortSecretTracker()
    t.register("db-password", "hunter2rocks")
    t.register("api-key", "sk-live-0042-alpha")
    return t


class TestRegistration:
    def test_register_and_len(self, tracker):
        assert len(tracker) == 2

    def test_duplicate_id_rejected(self, tracker):
        with pytest.raises(DisclosureError):
            tracker.register("db-password", "another")

    def test_too_short_rejected(self):
        tracker = ShortSecretTracker()
        with pytest.raises(DisclosureError):
            tracker.register("pin", "12 3")  # 3 normalised chars

    def test_min_length_boundary(self):
        tracker = ShortSecretTracker()
        tracker.register("ok", "a" * MIN_SECRET_LENGTH)
        assert len(tracker) == 1


class TestScanning:
    def test_exact_occurrence_found(self, tracker):
        matches = tracker.scan("the password is hunter2rocks, keep it safe")
        assert [m.secret_id for m in matches] == ["db-password"]

    def test_span_points_into_original(self, tracker):
        text = "use Hunter2Rocks now"
        match = tracker.scan(text)[0]
        assert text[match.start:match.end] == "Hunter2Rocks"

    def test_normalisation_insensitive(self, tracker):
        # Case and punctuation differences don't hide the secret.
        assert tracker.contains_secret("HUNTER2ROCKS")
        assert tracker.contains_secret("h-u-n-t-e-r-2 rocks")

    def test_near_miss_not_matched(self, tracker):
        assert not tracker.contains_secret("hunter3rocks")
        assert not tracker.contains_secret("hunter2rock")

    def test_multiple_secrets_in_one_text(self, tracker):
        text = "creds: hunter2rocks / sk-live-0042-alpha"
        found = {m.secret_id for m in tracker.scan(text)}
        assert found == {"db-password", "api-key"}

    def test_empty_text(self, tracker):
        assert tracker.scan("") == []

    def test_matches_sorted_by_position(self, tracker):
        text = "sk-live-0042-alpha then hunter2rocks"
        matches = tracker.scan(text)
        assert [m.secret_id for m in matches] == ["api-key", "db-password"]


class TestPluginIntegration:
    def test_password_paste_blocked_despite_short_length(self):
        """A password is far below the fingerprinting floor; only the
        equality tracker can stop it."""
        e = EnterpriseFixture()
        tracker = ShortSecretTracker()
        tracker.register("db-password", "hunter2rocks")
        e.plugin.secret_tracker = tracker

        editor = e.docs.open_editor(e.browser.new_tab())
        par = editor.new_paragraph()
        assert not editor.paste(par, "my login is hunter2rocks")
        assert e.docs.backend.get(editor.doc_id).paragraphs == []
        assert any(
            "db-password" in w.offending for w in e.plugin.warnings
        )

    def test_privileged_service_may_receive_secret(self):
        """A service whose Lp carries the secret's tag is allowed."""
        e = EnterpriseFixture()
        tracker = ShortSecretTracker()
        tracker.register("db-password", "hunter2rocks")
        e.plugin.secret_tracker = tracker
        # Grant the wiki the right to hold this secret.
        e.policies.register(
            e.policies.get(e.wiki.origin).with_privilege_tag("db-password")
        )
        ok = e.wiki.edit(
            e.browser.new_tab(), "Vault", "rotation note: hunter2rocks"
        )
        assert ok

    def test_normal_text_unaffected(self):
        e = EnterpriseFixture()
        tracker = ShortSecretTracker()
        tracker.register("db-password", "hunter2rocks")
        e.plugin.secret_tracker = tracker
        editor = e.docs.open_editor(e.browser.new_tab())
        assert editor.paste(editor.new_paragraph(), SECRET_TEXT[:80])
