"""Tests for Readability-style main-text extraction."""

import pytest

from repro.browser.dom import Document
from repro.browser.readability import extract_main_text, find_main_element, score_element


def build_article_page():
    document = Document()

    nav = document.create_element("div", {"class": "nav menu"})
    for label in ("Home", "About"):
        link = document.create_element("a", {"href": "#"})
        link.set_text(label)
        nav.append_child(link)
    document.body.append_child(nav)

    article = document.create_element("div", {"id": "article", "class": "content"})
    for text in (
        "The first paragraph discusses the main topic, with commas, and detail.",
        "A second paragraph continues the discussion, adding nuance, and depth.",
    ):
        p = document.create_element("p")
        p.set_text(text)
        article.append_child(p)
    document.body.append_child(article)

    footer = document.create_element("div", {"class": "footer"})
    footer.set_text("Copyright and legal text")
    document.body.append_child(footer)
    return document, article


class TestScoring:
    def test_article_outscores_footer(self):
        document, article = build_article_page()
        footer = document.find_all(lambda el: "footer" in el.class_list())[0]
        assert score_element(article) > score_element(footer)

    def test_positive_id_hint_rewarded(self):
        document = Document()
        a = document.create_element("div", {"id": "article"})
        a.set_text("Some prose, with commas, in it.")
        b = document.create_element("div")
        b.set_text("Some prose, with commas, in it.")
        document.body.append_child(a)
        document.body.append_child(b)
        assert score_element(a) > score_element(b)

    def test_link_density_penalised(self):
        document = Document()
        linky = document.create_element("div")
        link = document.create_element("a", {"href": "#"})
        link.set_text("all of this text is a link, every word of it")
        linky.append_child(link)
        prose = document.create_element("div")
        prose.set_text("all of this text is prose, every word of it")
        document.body.append_child(linky)
        document.body.append_child(prose)
        assert score_element(prose) > score_element(linky)

    def test_empty_element_scores_minus_infinity(self):
        document = Document()
        empty = document.create_element("div")
        document.body.append_child(empty)
        assert score_element(empty) == float("-inf")


class TestExtraction:
    def test_finds_article_container(self):
        document, article = build_article_page()
        assert find_main_element(document) is article

    def test_extracts_paragraph_structure(self):
        document, _article = build_article_page()
        text = extract_main_text(document)
        paragraphs = text.split("\n\n")
        assert len(paragraphs) == 2
        assert paragraphs[0].startswith("The first paragraph")

    def test_excludes_boilerplate(self):
        document, _article = build_article_page()
        text = extract_main_text(document)
        assert "Copyright" not in text
        assert "Home" not in text

    def test_empty_page(self):
        assert extract_main_text(Document()) == ""

    def test_container_without_p_tags(self):
        document = Document()
        main = document.create_element("div", {"id": "content"})
        main.set_text("Flat prose directly in the container, with commas, here.")
        document.body.append_child(main)
        assert "Flat prose" in extract_main_text(document)
