"""Tests for event dispatch (capture/target/bubble, cancellation)."""

import pytest

from repro.browser.dom import Document
from repro.browser.events import AT_TARGET, BUBBLE_PHASE, CAPTURE_PHASE, Event


@pytest.fixture
def tree():
    document = Document()
    outer = document.create_element("div", {"id": "outer"})
    inner = document.create_element("div", {"id": "inner"})
    document.body.append_child(outer)
    outer.append_child(inner)
    return document, outer, inner


class TestDispatch:
    def test_listener_invoked_at_target(self, tree):
        _doc, _outer, inner = tree
        seen = []
        inner.add_event_listener("ping", lambda e: seen.append(e))
        inner.dispatch_event(Event("ping"))
        assert len(seen) == 1
        assert seen[0].target is inner

    def test_bubbling_order(self, tree):
        document, outer, inner = tree
        order = []
        document.add_event_listener("ping", lambda e: order.append("document"))
        outer.add_event_listener("ping", lambda e: order.append("outer"))
        inner.add_event_listener("ping", lambda e: order.append("inner"))
        inner.dispatch_event(Event("ping"))
        assert order == ["inner", "outer", "document"]

    def test_capture_runs_before_target(self, tree):
        _doc, outer, inner = tree
        order = []
        outer.add_event_listener("ping", lambda e: order.append("capture"), capture=True)
        inner.add_event_listener("ping", lambda e: order.append("target"))
        inner.dispatch_event(Event("ping"))
        assert order == ["capture", "target"]

    def test_event_phase_values(self, tree):
        _doc, outer, inner = tree
        phases = {}
        outer.add_event_listener(
            "ping", lambda e: phases.setdefault("capture", e.event_phase), capture=True
        )
        inner.add_event_listener(
            "ping", lambda e: phases.setdefault("target", e.event_phase)
        )
        outer.add_event_listener(
            "ping", lambda e: phases.setdefault("bubble", e.event_phase)
        )
        inner.dispatch_event(Event("ping"))
        assert phases == {
            "capture": CAPTURE_PHASE,
            "target": AT_TARGET,
            "bubble": BUBBLE_PHASE,
        }

    def test_wrong_type_not_invoked(self, tree):
        _doc, _outer, inner = tree
        seen = []
        inner.add_event_listener("other", lambda e: seen.append(e))
        inner.dispatch_event(Event("ping"))
        assert not seen

    def test_duplicate_listener_registered_once(self, tree):
        _doc, _outer, inner = tree
        seen = []

        def listener(e):
            seen.append(e)

        inner.add_event_listener("ping", listener)
        inner.add_event_listener("ping", listener)
        inner.dispatch_event(Event("ping"))
        assert len(seen) == 1

    def test_remove_listener(self, tree):
        _doc, _outer, inner = tree
        seen = []

        def listener(e):
            seen.append(e)

        inner.add_event_listener("ping", listener)
        inner.remove_event_listener("ping", listener)
        inner.dispatch_event(Event("ping"))
        assert not seen


class TestCancellation:
    def test_prevent_default_returns_false(self, tree):
        _doc, _outer, inner = tree
        inner.add_event_listener("submit", lambda e: e.prevent_default())
        assert inner.dispatch_event(Event("submit", cancelable=True)) is False

    def test_prevent_default_ignored_when_not_cancelable(self, tree):
        _doc, _outer, inner = tree
        inner.add_event_listener("submit", lambda e: e.prevent_default())
        assert inner.dispatch_event(Event("submit", cancelable=False)) is True

    def test_stop_propagation_halts_bubble(self, tree):
        _doc, outer, inner = tree
        order = []
        inner.add_event_listener(
            "ping", lambda e: (order.append("inner"), e.stop_propagation())
        )
        outer.add_event_listener("ping", lambda e: order.append("outer"))
        inner.dispatch_event(Event("ping"))
        assert order == ["inner"]

    def test_stop_propagation_in_capture_skips_target(self, tree):
        _doc, outer, inner = tree
        order = []
        outer.add_event_listener(
            "ping",
            lambda e: (order.append("capture"), e.stop_propagation()),
            capture=True,
        )
        inner.add_event_listener("ping", lambda e: order.append("target"))
        inner.dispatch_event(Event("ping"))
        assert order == ["capture"]

    def test_current_target_tracks_node(self, tree):
        _doc, outer, inner = tree
        current = []
        outer.add_event_listener("ping", lambda e: current.append(e.current_target))
        inner.dispatch_event(Event("ping"))
        assert current == [outer]
