"""Tests for form interception semantics."""

import pytest

from repro.browser.dom import Document
from repro.browser.forms import collect_form_data, input_value, submit_form
from repro.browser.http import HttpResponse
from repro.browser.page import Window
from repro.errors import BrowserError


class RecordingNetwork:
    def __init__(self):
        self.requests = []

    def deliver(self, request):
        self.requests.append(request)
        return HttpResponse(status=200, body="ok")


@pytest.fixture
def page():
    document = Document()
    window = Window(document, "https://svc.example.com/compose", RecordingNetwork())
    form = document.create_element(
        "form", {"action": "/post", "method": "post", "id": "f"}
    )
    form.append_child(
        document.create_element(
            "input", {"type": "hidden", "name": "token", "value": "abc"}
        )
    )
    form.append_child(
        document.create_element(
            "input", {"type": "text", "name": "title", "value": "Hello"}
        )
    )
    textarea = document.create_element("textarea", {"name": "body"})
    textarea.set_text("Message content")
    form.append_child(textarea)
    document.body.append_child(form)
    return document, window, form


class TestCollectFormData:
    def test_collects_all_fields(self, page):
        _doc, _window, form = page
        data = collect_form_data(form)
        assert data == {"token": "abc", "title": "Hello", "body": "Message content"}

    def test_excludes_hidden_when_asked(self, page):
        _doc, _window, form = page
        data = collect_form_data(form, include_hidden=False)
        assert "token" not in data
        assert data["title"] == "Hello"

    def test_unnamed_inputs_skipped(self, page):
        doc, _window, form = page
        form.append_child(doc.create_element("input", {"value": "anon"}))
        assert "anon" not in collect_form_data(form).values()

    def test_textarea_value_attribute_overrides(self, page):
        doc, _window, form = page
        textarea = form.get_elements_by_tag("textarea")[0]
        textarea.set_attribute("value", "override")
        assert input_value(textarea) == "override"


class TestSubmitForm:
    def test_default_action_posts(self, page):
        _doc, window, form = page
        response = submit_form(form, window)
        assert response is not None and response.ok
        request = window.network.requests[0]
        assert request.method == "POST"
        assert request.url == "https://svc.example.com/post"
        assert request.form_data["body"] == "Message content"

    def test_listener_can_cancel(self, page):
        _doc, window, form = page
        form.add_event_listener("submit", lambda e: e.prevent_default())
        assert submit_form(form, window) is None
        assert not window.network.requests

    def test_listener_can_rewrite_values_before_send(self, page):
        _doc, window, form = page

        def rewrite(event):
            field = form.get_elements_by_tag("textarea")[0]
            field.set_attribute("value", "encrypted!")

        form.add_event_listener("submit", rewrite)
        submit_form(form, window)
        assert window.network.requests[0].form_data["body"] == "encrypted!"

    def test_non_form_rejected(self, page):
        doc, window, _form = page
        with pytest.raises(BrowserError):
            submit_form(doc.create_element("div"), window)

    def test_relative_action_resolved_against_location(self, page):
        _doc, window, form = page
        form.set_attribute("action", "save")
        submit_form(form, window)
        assert window.network.requests[0].url == "https://svc.example.com/save"

    def test_window_submit_helper(self, page):
        _doc, window, form = page
        response = window.submit(form)
        assert response is not None and response.ok
