"""Differential tests: sharded engine ≡ unsharded engine (ISSUE 7).

Three layers of evidence, strongest last:

* a deterministic serial op sequence (observes, Figure-6 edits,
  removals, queries) replayed on a :class:`ShardedDisclosureEngine` at
  shard counts 1/2/4/8 × authoritative on/off, asserting field-identical
  reports against the plain engine;
* the barrier-scheduled 8-thread concurrency harness from
  :mod:`test_conc_differential`, re-run with the shared engine sharded —
  concurrent writers/readers over per-shard locks must still linearise
  to the serial plain-engine replay;
* a hypothesis property over random observation/withdrawal histories:
  per-owner counts merged across shards equal the unsharded sweep's,
  for both authoritative modes (the Figure-6 migration case arises
  naturally from withdrawals).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disclosure import DisclosureEngine, HashDatabase, ShardedHashDatabase
from repro.disclosure.sharding import ShardedDisclosureEngine
from repro.fingerprint.config import FingerprintConfig

from test_conc_differential import (
    N_THREADS,
    SEGMENT_POOL,
    _apply,
    _assert_reports_identical,
    _build_plan,
)
from test_disc_sharding import canon, unsharded_sweep

CONFIG = FingerprintConfig(ngram_size=4, window_size=3)

#: Serial op sequence covering creates, no-op re-observes, Figure-6
#: edits (ownership migration via withdrawal), and removals.
SERIAL_OPS = [
    ("observe", "wiki", "the acquisition target list is confidential until friday"),
    ("observe", "tool", "the acquisition target list is confidential until friday"),
    ("observe", "memo", "quarterly revenue numbers look strong across all regions"),
    ("query", "the acquisition target list is confidential until monday"),
    # Figure 6: the first observer edits the text away; authority over
    # the shared hashes must migrate to the second observer.
    ("observe", "wiki", "we now discuss gardening schedules and tulip beds"),
    ("query", "the acquisition target list is confidential until friday"),
    ("observe", "memo", "quarterly revenue numbers look strong across all regions"),
    ("remove", "tool"),
    ("query", "the acquisition target list is confidential until friday"),
    ("query", "quarterly revenue numbers look strong across most regions"),
    ("observe", "note", "quarterly revenue numbers look strong across all regions"),
    ("query", "quarterly revenue numbers look strong across all regions"),
]


def _run_serial(engine, ops):
    reports = []
    for op in ops:
        if op[0] == "observe":
            engine.observe(op[1], op[2], threshold=0.5)
        elif op[0] == "remove":
            engine.remove(op[1])
        else:
            fp = engine.fingerprint(op[1])
            reports.append(engine.disclosing_sources(fingerprint=fp))
    return reports


class TestSerialDifferential:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("authoritative", [True, False])
    def test_field_identical_reports(self, n_shards, authoritative):
        plain = DisclosureEngine(CONFIG, authoritative=authoritative)
        sharded = ShardedDisclosureEngine(
            CONFIG, authoritative=authoritative, n_shards=n_shards
        )
        expected = _run_serial(plain, SERIAL_OPS)
        actual = _run_serial(sharded, SERIAL_OPS)
        assert len(actual) == len(expected)
        for i, (got, want) in enumerate(zip(actual, expected)):
            _assert_reports_identical(
                got, want, f"n_shards={n_shards} auth={authoritative} query={i}"
            )
        # The migration actually happened (the scenario is not vacuous):
        # after wiki's edit, tool owned the shared hashes until removed.
        assert expected[0].disclosing
        sharded.hash_db.check_invariants()
        for h in plain.hash_db.hashes():
            assert sharded.hash_db.oldest_owner(h) == plain.hash_db.oldest_owner(h)

    def test_sharded_indexed_matches_sharded_reference(self):
        sharded = ShardedDisclosureEngine(CONFIG, n_shards=4)
        _run_serial(sharded, SERIAL_OPS)
        for _op, *rest in [op for op in SERIAL_OPS if op[0] == "query"]:
            fp = sharded.fingerprint(rest[0])
            _assert_reports_identical(
                sharded.disclosing_sources(fingerprint=fp),
                sharded.disclosing_sources_reference(fingerprint=fp),
                rest[0],
            )


class TestConcurrentDifferential:
    """The 8-thread barrier harness, with the shared engine sharded."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_concurrent_sharded_matches_serial_plain_replay(self, n_shards):
        seed = 2016 + n_shards
        plan = _build_plan(seed)
        shared = ShardedDisclosureEngine(CONFIG, n_shards=n_shards)
        outputs = {}
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def worker(tid: int) -> None:
            try:
                for r, actions in enumerate(plan):
                    barrier.wait(timeout=30)
                    action = actions[tid]
                    report = _apply(shared, action)
                    if action[0] in ("query_fp", "query_target"):
                        outputs[(r, tid)] = report
                    elif action[0] == "noise" and report is not None:
                        assert set(report.source_ids()) <= set(SEGMENT_POOL)
                        for source in report.sources:
                            assert 0.0 < source.score <= 1.0
                    barrier.wait(timeout=30)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((tid, exc))
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert not any(t.is_alive() for t in threads), "worker deadlocked"

        shared.hash_db.check_invariants()

        # Replay the linearised op log on a serial *plain* engine: the
        # sharded engine under contention must match the unsharded one.
        serial = DisclosureEngine(CONFIG)
        for r, actions in enumerate(plan):
            kinds = {a[0] for a in actions.values()}
            if "observe" in kinds or "remove" in kinds:
                for action in actions.values():
                    if action[0] in ("observe", "remove"):
                        _apply(serial, action)
            else:
                for tid in range(N_THREADS):
                    expected = _apply(serial, actions[tid])
                    _assert_reports_identical(
                        outputs[(r, tid)],
                        expected,
                        f"n_shards={n_shards} round={r} tid={tid}",
                    )

        assert sorted(shared.segment_db.ids()) == sorted(serial.segment_db.ids())
        assert set(shared.hash_db.hashes()) == set(serial.hash_db.hashes())
        for h in serial.hash_db.hashes():
            assert shared.hash_db.oldest_owner(h) == serial.hash_db.oldest_owner(h)
        for seg in serial.segment_db.ids():
            _assert_reports_identical(
                shared.disclosing_sources(seg),
                serial.disclosing_sources(seg),
                f"n_shards={n_shards} final segment={seg}",
            )


SEGMENTS = [f"s{i}" for i in range(5)]
HASH_BITS = 16  # small space so hypothesis finds collisions and migrations


@st.composite
def histories(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["record", "withdraw"]),
                st.integers(0, (1 << HASH_BITS) - 1),
                st.sampled_from(SEGMENTS),
                st.integers(0, 6),
            ),
            max_size=80,
        )
    )
    query = draw(st.lists(st.integers(0, (1 << HASH_BITS) - 1), max_size=40))
    n_shards = draw(st.sampled_from([1, 2, 3, 4, 8]))
    authoritative = draw(st.booleans())
    return ops, query, n_shards, authoritative


class TestScatterGatherProperty:
    @settings(max_examples=120, deadline=None)
    @given(histories())
    def test_merged_counts_equal_unsharded_sweep(self, history):
        ops, query, n_shards, authoritative = history
        plain = HashDatabase()
        sharded = ShardedHashDatabase(n_shards, hash_bits=HASH_BITS)
        for kind, h, seg, ts in ops:
            if kind == "record":
                plain.record(h, seg, float(ts))
                sharded.record(h, seg, float(ts))
            else:
                # Withdrawals are what drive Figure-6 ownership
                # migrations (authority falls to the next-earliest
                # observer on the hash's home shard).
                plain.remove_observation(h, seg)
                sharded.remove_observation(h, seg)
        target = frozenset(query)
        expected = unsharded_sweep(plain, target, authoritative)
        got = sharded.sweep(target, authoritative=authoritative)
        assert canon(got) == canon(expected)
        for h in target:
            assert sharded.oldest_owner(h) == plain.oldest_owner(h)
        sharded.check_invariants()
